#!/bin/bash
# Offline CI gate: formatting, lints, and the tier-1 verify
# (`cargo build --release && cargo test -q`). Sourced by
# run_all_experiments.sh before any harness runs, and runnable standalone.
set -e
cd "$(dirname "${BASH_SOURCE[0]}")"

echo "== ci: cargo fmt --check =="
cargo fmt --all -- --check

echo "== ci: cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== ci: workspace audit (lint rules + call graph + protocol model) =="
cargo run --release --offline -p benchtemp-audit

echo "== ci: audit report schema (benchtemp-audit/v2, zero unwaivered) =="
python3 - <<'EOF'
import json
r = json.load(open('AUDIT_report.json'))
assert r.get('schema') == 'benchtemp-audit/v2', f"bad schema: {r.get('schema')!r}"
assert r.get('ok') is True, "AUDIT_report.json not ok"
unwaivered = [v for v in r['violations'] if not v.get('waived')]
assert not unwaivered, f"{len(unwaivered)} unwaivered finding(s) in AUDIT_report.json"
g = r['call_graph']
assert g['functions'] > 0 and g['edges'] > 0 and 0.0 < g['resolved_call_ratio'] <= 1.0
print(f"schema ok: {len(r['violations'])} finding(s) all waived; "
      f"{g['functions']} fns, {g['edges']} edges, "
      f"resolved ratio {g['resolved_call_ratio']:.2f}")
EOF

echo "== ci: audit negative self-test (seeded fixture + seeded race) =="
cargo run --release --offline -p benchtemp-bench --bin audit_check

echo "== ci: tier-1 verify =="
cargo build --release --offline
cargo test -q --offline --workspace

echo "== ci: kernel smoke bench =="
cargo run --release --offline -p benchtemp-bench --bin bench_kernels -- --smoke

echo "== ci: paged store smoke (paged == resident, bounded cache, evictions) =="
cargo run --release --offline -p benchtemp-bench --bin store_smoke | grep -q STORE_SMOKE_OK \
    || { echo "store smoke failed"; exit 1; }

echo "== ci: sanitize-mode smoke (slot claims + tape checks armed) =="
BENCHTEMP_SANITIZE=1 \
    cargo run --release --offline -p benchtemp-bench --bin bench_kernels -- --smoke

echo "== ci: ranking smoke (diagnostics zoo + filtered-negative MRR) =="
RANK_OUT=$(mktemp -d /tmp/benchtemp-ci-rank.XXXXXX)
cargo run --release --offline -p benchtemp-bench --bin diagnostics -- \
    --quick --epochs 2 --models TGN,TGAT --rank-negs 10 --out "$RANK_OUT"
test -s "$RANK_OUT/diagnostics.json" || { echo "diagnostics.json missing"; exit 1; }
rm -rf "$RANK_OUT"

echo "== ci: traced smoke run (JSONL schema + span pairing) =="
TRACE_FILE=$(mktemp /tmp/benchtemp-ci-trace.XXXXXX.jsonl)
BENCHTEMP_TRACE="$TRACE_FILE" \
    cargo run --release --offline -p benchtemp-bench --bin trace_check
rm -f "$TRACE_FILE"

echo "CI_OK"
