#!/bin/bash
# Offline CI gate: formatting, lints, and the tier-1 verify
# (`cargo build --release && cargo test -q`). Sourced by
# run_all_experiments.sh before any harness runs, and runnable standalone.
set -e
cd "$(dirname "${BASH_SOURCE[0]}")"

echo "== ci: cargo fmt --check =="
cargo fmt --all -- --check

echo "== ci: cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== ci: workspace audit (lint rules + protocol model) =="
cargo run --release --offline -p benchtemp-audit

echo "== ci: audit negative self-test (seeded fixture + seeded race) =="
cargo run --release --offline -p benchtemp-bench --bin audit_check

echo "== ci: tier-1 verify =="
cargo build --release --offline
cargo test -q --offline --workspace

echo "== ci: kernel smoke bench =="
cargo run --release --offline -p benchtemp-bench --bin bench_kernels -- --smoke

echo "== ci: sanitize-mode smoke (slot claims + tape checks armed) =="
BENCHTEMP_SANITIZE=1 \
    cargo run --release --offline -p benchtemp-bench --bin bench_kernels -- --smoke

echo "== ci: ranking smoke (diagnostics zoo + filtered-negative MRR) =="
RANK_OUT=$(mktemp -d /tmp/benchtemp-ci-rank.XXXXXX)
cargo run --release --offline -p benchtemp-bench --bin diagnostics -- \
    --quick --epochs 2 --models TGN,TGAT --rank-negs 10 --out "$RANK_OUT"
test -s "$RANK_OUT/diagnostics.json" || { echo "diagnostics.json missing"; exit 1; }
rm -rf "$RANK_OUT"

echo "== ci: traced smoke run (JSONL schema + span pairing) =="
TRACE_FILE=$(mktemp /tmp/benchtemp-ci-trace.XXXXXX.jsonl)
BENCHTEMP_TRACE="$TRACE_FILE" \
    cargo run --release --offline -p benchtemp-bench --bin trace_check
rm -f "$TRACE_FILE"

echo "CI_OK"
