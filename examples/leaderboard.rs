//! The Leaderboard module end-to-end: run a few models over a few datasets,
//! aggregate over seeds, persist to JSON, reload, and print rankings with
//! the Average-Rank metric (Table 17 style).
//!
//! ```bash
//! cargo run --release --example leaderboard
//! ```

use std::path::Path;
use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::leaderboard::Leaderboard;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;

fn main() {
    let datasets = [BenchDataset::Uci, BenchDataset::Enron];
    let models = ["TGN", "NAT", "EdgeBank"];
    let path = Path::new("results/example_leaderboard.json");
    let mut lb = Leaderboard::load(path).expect("load leaderboard");

    for dataset in datasets {
        for model_name in models {
            let mut values = Vec::new();
            for seed in 0..2u64 {
                let graph = dataset.config(0.003, seed ^ 0xda7a).generate();
                let split = LinkPredSplit::new(&graph, seed);
                let mut model = zoo::build(
                    model_name,
                    ModelConfig {
                        seed,
                        ..Default::default()
                    },
                    &graph,
                );
                let cfg = TrainConfig {
                    batch_size: 100,
                    max_epochs: 6,
                    timeout: Duration::from_secs(120),
                    seed,
                    ..Default::default()
                };
                let run = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
                values.push(run.transductive.auc);
            }
            lb.push_runs(
                model_name,
                dataset.name(),
                "link_prediction",
                "Transductive",
                "AUC",
                &values,
            );
            println!(
                "{model_name:>9} on {:<8}: pushed {values:.4?}",
                dataset.name()
            );
        }
    }

    lb.save(path).expect("save leaderboard");
    let reloaded = Leaderboard::load(path).expect("reload");
    for dataset in datasets {
        println!("\n--- leaderboard: {} ---", dataset.name());
        print!(
            "{}",
            reloaded.render_group(dataset.name(), "link_prediction", "Transductive", "AUC")
        );
    }
    let names: Vec<&str> = datasets.iter().map(|d| d.name()).collect();
    println!(
        "\nAverage rank across {:?}: {:?}",
        names,
        reloaded.average_rank(&names, "link_prediction", "Transductive", "AUC")
    );
}
