//! Node classification (§3.2.2) on a labelled dataset: self-supervised LP
//! pre-training, then the frozen-embedding decoder — including the
//! Appendix-G multi-class path on the DGraphFin-style dataset.
//!
//! ```bash
//! cargo run --release --example node_classification -- Wikipedia
//! cargo run --release --example node_classification -- DGraphFin   # 4-class
//! ```

use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, train_node_classification, TrainConfig};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::TgnFamily;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Wikipedia".into());
    let dataset = BenchDataset::labelled()
        .into_iter()
        .find(|d| d.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            panic!(
                "{name} has no node labels; labelled datasets: {:?}",
                BenchDataset::labelled()
                    .iter()
                    .map(|d| d.name())
                    .collect::<Vec<_>>()
            )
        });

    let graph = dataset.config(0.003, 7).generate();
    let labels = graph.labels.as_ref().unwrap();
    println!(
        "dataset {}: {} events, {} classes, class rates {:?}",
        graph.name,
        graph.num_events(),
        labels.num_classes,
        labels
            .class_rates()
            .iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
    );

    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 8,
        timeout: Duration::from_secs(180),
        seed: 7,
        ..Default::default()
    };
    let mut model = TgnFamily::tgn(
        ModelConfig {
            seed: 7,
            ..Default::default()
        },
        &graph,
    );

    // Phase 1: self-supervised pre-training on link prediction.
    let split = LinkPredSplit::new(&graph, 7);
    let lp = train_link_prediction(&mut model, &graph, &split, &cfg);
    println!(
        "pre-training: transductive LP AUC {:.4}",
        lp.transductive.auc
    );

    // Phase 2: node-classification decoder on frozen dynamic embeddings.
    let nc = train_node_classification(&mut model, &graph, &cfg);
    match nc.multiclass {
        None => println!("node classification: test ROC AUC {:.4}", nc.auc),
        Some(m) => println!(
            "multi-class node classification: accuracy {:.4}, weighted P {:.4} / R {:.4} / F1 {:.4}",
            m.accuracy, m.precision_weighted, m.recall_weighted, m.f1_weighted
        ),
    }
    println!(
        "decoder converged in {} epochs ({:.2}s/epoch incl. embedding pass)",
        nc.decoder_epochs, nc.efficiency.runtime_per_epoch_secs
    );
}
