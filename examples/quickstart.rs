//! Quickstart: the whole BenchTemp pipeline in one page.
//!
//! Generates the Wikipedia benchmark dataset (scaled), splits it with the
//! standard DataLoader, trains TGN on link prediction, and prints the four
//! evaluation settings plus efficiency metrics.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use benchtemp_core::dataloader::{LinkPredSplit, Setting};
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::TgnFamily;

fn main() {
    // 1. Dataset: a scaled-down Wikipedia (bipartite editor–page stream).
    let graph = BenchDataset::Wikipedia.config(0.005, 42).generate();
    println!(
        "dataset {}: {} nodes, {} events, edge dim {}",
        graph.name,
        graph.num_nodes,
        graph.num_events(),
        graph.edge_dim()
    );

    // 2. DataLoader: chronological 70/15/15 + 10% unseen-node masking.
    let split = LinkPredSplit::new(&graph, 0);
    println!(
        "split: {} train / {} val / {} test edges, {} unseen nodes",
        split.train.len(),
        split.val.len(),
        split.test.len(),
        split.unseen.iter().filter(|&&u| u).count()
    );

    // 3. Model + protocol (§4.1: Adam, BCE, patience-3 early stopping).
    let mut model = TgnFamily::tgn(
        ModelConfig {
            seed: 0,
            ..Default::default()
        },
        &graph,
    );
    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 10,
        timeout: Duration::from_secs(120),
        seed: 0,
        ..Default::default()
    };

    // 4. Train + evaluate all four settings in one call.
    let run = train_link_prediction(&mut model, &graph, &split, &cfg);
    for setting in Setting::all() {
        let m = run.metrics_for(setting);
        println!(
            "{:<20} AUC {:.4}  AP {:.4}  ({} test edges)",
            setting.name(),
            m.auc,
            m.ap,
            m.n_edges
        );
    }
    println!(
        "efficiency: {:.2}s/epoch, {} epochs to converge, state {:.1} MB",
        run.efficiency.runtime_per_epoch_secs,
        run.efficiency.epochs_to_converge,
        run.efficiency.model_state_bytes as f64 / 1e6
    );
}
