//! Bring your own data: build a benchmark dataset from a raw interaction
//! log exactly as §3.1 prescribes — node reindexing (Fig. 3) + standardized
//! node-feature initialization — then run it through the pipeline.
//!
//! ```bash
//! cargo run --release --example custom_dataset
//! ```

use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::features::FeatureInit;
use benchtemp_graph::reindex::{reindex_heterogeneous, shrink_factor, RawInteraction};
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_models::common::ModelConfig;
use benchtemp_models::Nat;
use benchtemp_tensor::Matrix;

fn main() {
    // --- a raw log as it might come out of an application database:
    // sparse 64-bit user/item ids, not time-sorted, no features.
    let mut raw: Vec<RawInteraction> = (0..4000u64)
        .map(|i| RawInteraction {
            user: 1_000_003 * (i % 97),         // sparse user ids
            item: 9_999_999_999 - 7 * (i % 53), // huge sparse item ids
            t: ((i * 37) % 4000) as f64,        // unsorted timestamps
        })
        .collect();

    // --- §3.1 step 1: sort chronologically (interaction-stream invariant).
    raw.sort_by(|a, b| a.t.partial_cmp(&b.t).unwrap());

    // --- §3.1 step 2: node reindexing (users first, then items).
    let rx = reindex_heterogeneous(&raw);
    println!(
        "reindexed {} raw ids → {} contiguous nodes (shrink {:.0}×)",
        raw.len() * 2,
        rx.num_nodes,
        shrink_factor(&raw, &rx)
    );

    // --- §3.1 step 3: standardized node features (172-dim default).
    let node_features = FeatureInit::default_random().build(rx.num_nodes, 172);

    // --- assemble the TemporalGraph; a 4-dim behaviour one-hot as edge
    // features (Taobao-style).
    let mut edge_features = Matrix::zeros(raw.len(), 4);
    let events: Vec<Interaction> = raw
        .iter()
        .zip(&rx.edges)
        .enumerate()
        .map(|(r, (ri, &(src, dst)))| {
            edge_features.set(r, (ri.user % 4) as usize, 1.0);
            Interaction {
                src,
                dst,
                t: ri.t,
                feat_idx: r,
            }
        })
        .collect();
    let graph = TemporalGraph {
        name: "my-custom-dataset".into(),
        bipartite: true,
        num_nodes: rx.num_nodes,
        num_users: rx.num_users,
        events,
        edge_features,
        node_features,
        labels: None,
    };
    graph.validate().expect("benchmark dataset invariants");
    println!("custom dataset validated: {} events", graph.num_events());

    // --- the standard pipeline runs on it like on any preset.
    let split = LinkPredSplit::new(&graph, 0);
    let mut model = Nat::new(
        ModelConfig {
            seed: 0,
            ..Default::default()
        },
        &graph,
    );
    let cfg = TrainConfig {
        batch_size: 100,
        max_epochs: 6,
        timeout: Duration::from_secs(120),
        seed: 0,
        ..Default::default()
    };
    let run = train_link_prediction(&mut model, &graph, &split, &cfg);
    println!(
        "NAT on custom dataset: transductive AUC {:.4}, inductive AUC {:.4}",
        run.transductive.auc, run.inductive.auc
    );
}
