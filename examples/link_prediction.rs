//! Compare several TGNN models on one dataset across all four
//! link-prediction settings — a miniature of the paper's Table 3 workflow,
//! with results pushed to a Leaderboard.
//!
//! ```bash
//! cargo run --release --example link_prediction -- MOOC TGN CAWN NAT
//! ```
//! (arguments: dataset name, then model names; defaults shown above)

use std::time::Duration;

use benchtemp_core::dataloader::{LinkPredSplit, Setting};
use benchtemp_core::leaderboard::Leaderboard;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset_name = args.first().map(String::as_str).unwrap_or("MOOC");
    let models: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        vec!["TGN", "CAWN", "NAT"]
    };
    let dataset = BenchDataset::all15()
        .into_iter()
        .chain(BenchDataset::new6())
        .find(|d| d.name().eq_ignore_ascii_case(dataset_name))
        .unwrap_or_else(|| panic!("unknown dataset {dataset_name}"));

    let seeds = 2u64;
    let mut leaderboard = Leaderboard::new();
    for model_name in &models {
        let mut per_setting: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for seed in 0..seeds {
            let graph = dataset.config(0.003, seed ^ 0xda7a).generate();
            let split = LinkPredSplit::new(&graph, seed);
            let mut model = zoo::build(
                model_name,
                ModelConfig {
                    seed,
                    ..Default::default()
                },
                &graph,
            );
            let cfg = TrainConfig {
                batch_size: 100,
                max_epochs: 8,
                timeout: Duration::from_secs(120),
                seed,
                ..Default::default()
            };
            let run = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
            for (i, setting) in Setting::all().iter().enumerate() {
                per_setting[i].push(run.metrics_for(*setting).auc);
            }
            println!(
                "{model_name} seed {seed}: transductive AUC {:.4}, new-new AUC {:.4}",
                run.transductive.auc, run.new_new.auc
            );
        }
        for (i, setting) in Setting::all().iter().enumerate() {
            leaderboard.push_runs(
                model_name,
                dataset.name(),
                "link_prediction",
                setting.name(),
                "AUC",
                &per_setting[i],
            );
        }
    }

    for setting in Setting::all() {
        println!(
            "\n--- {} on {} (best **bold**, runner-up _underlined_) ---",
            setting.name(),
            dataset.name()
        );
        print!(
            "{}",
            leaderboard.render_group(dataset.name(), "link_prediction", setting.name(), "AUC")
        );
    }
}
