//! Property-based tests on the graph substrate: generator invariants over
//! random configurations, neighbor-finder correctness vs a naive scan,
//! reindexing bijectivity, histogram conservation.

use proptest::prelude::*;

use benchtemp_graph::features::FeatureInit;
use benchtemp_graph::generators::{GeneratorConfig, LabelGenConfig};
use benchtemp_graph::neighbors::{NeighborFinder, SamplingStrategy};
use benchtemp_graph::reindex::{reindex_heterogeneous, reindex_homogeneous, RawInteraction};
use benchtemp_graph::stats::temporal_histogram;
use benchtemp_tensor::init;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..40,      // users
        2usize..40,      // items
        50usize..800,    // edges
        any::<bool>(),   // bipartite
        0.0f64..0.95,    // recurrence
        0.0f64..1.0,     // affinity
        0.0f64..0.8,     // burstiness
        1usize..6,       // communities
        0u64..1000,      // seed
        prop::option::of(1usize..20), // granularity levels
    )
        .prop_map(
            |(users, items, edges, bipartite, recurrence, affinity, burstiness, comms, seed, gran)| {
                GeneratorConfig {
                    name: "prop".into(),
                    bipartite,
                    num_users: users.max(2),
                    num_items: items.max(2),
                    num_edges: edges,
                    edge_dim: 4,
                    time_span: 500.0,
                    granularity_levels: gran,
                    recurrence,
                    recency_bias: 0.5,
                    recency_window: 500,
                    zipf_exponent: 0.8,
                    communities: comms,
                    affinity,
                    burstiness,
                    feature_noise: 0.1,
                    label: None,
                    node_feature_init: FeatureInit::Zeros,
                    node_dim: 4,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated graph satisfies the structural invariants.
    #[test]
    fn generated_graphs_are_always_valid(cfg in arb_config()) {
        let g = cfg.generate();
        prop_assert_eq!(g.validate(), Ok(()));
        prop_assert_eq!(g.num_events(), cfg.num_edges);
        prop_assert_eq!(g.num_nodes, cfg.total_nodes());
    }

    /// Generation is a pure function of the config.
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(a.events, b.events);
    }

    /// `NeighborFinder::before` matches a naive scan for arbitrary queries.
    #[test]
    fn neighbor_finder_matches_naive(cfg in arb_config(), t in 0.0f64..600.0, node_sel in 0usize..1000) {
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let node = node_sel % g.num_nodes;
        let naive: Vec<usize> = g.events.iter().enumerate()
            .filter(|(_, e)| e.t < t && (e.src == node || e.dst == node))
            .map(|(i, _)| i)
            .collect();
        let fast: Vec<usize> = nf.before(node, t).iter().map(|e| e.event_idx).collect();
        prop_assert_eq!(naive, fast);
    }

    /// Sampled neighbors always come strictly before the query time.
    #[test]
    fn sampling_never_leaks_future(cfg in arb_config(), t in 1.0f64..600.0, seed in 0u64..100) {
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let mut rng = init::rng(seed);
        for strategy in [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalSafe,
            SamplingStrategy::TemporalExp { alpha: 0.1 },
        ] {
            for node in 0..g.num_nodes.min(5) {
                let s = nf.sample_before(node, t, 4, strategy, &mut rng);
                prop_assert!(s.iter().all(|e| e.t < t));
            }
        }
    }

    /// Histogram bins conserve the event count.
    #[test]
    fn histogram_conserves_events(cfg in arb_config(), bins in 1usize..100) {
        let g = cfg.generate();
        let h = temporal_histogram(&g, bins);
        prop_assert_eq!(h.iter().sum::<usize>(), g.num_events());
    }

    /// Heterogeneous reindexing: injective, contiguous, users below items.
    #[test]
    fn hetero_reindex_bijective(pairs in prop::collection::vec((0u64..10_000, 0u64..10_000), 1..200)) {
        let raw: Vec<RawInteraction> = pairs.iter().enumerate()
            .map(|(i, &(user, item))| RawInteraction { user, item, t: i as f64 })
            .collect();
        let rx = reindex_heterogeneous(&raw);
        let mut seen = vec![false; rx.num_nodes];
        for &v in rx.user_map.values().chain(rx.item_map.values()) {
            prop_assert!(!seen[v], "duplicate id {}", v);
            seen[v] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert!(rx.user_map.values().all(|&v| v < rx.num_users));
        prop_assert!(rx.item_map.values().all(|&v| v >= rx.num_users));
        // Round trip: every edge maps back to its raw pair.
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            prop_assert_eq!(rx.user_map[&r.user], src);
            prop_assert_eq!(rx.item_map[&r.item], dst);
        }
    }

    /// Homogeneous reindexing: one shared id space, order-preserving lookups.
    #[test]
    fn homo_reindex_consistent(pairs in prop::collection::vec((0u64..500, 0u64..500), 1..200)) {
        let raw: Vec<RawInteraction> = pairs.iter().enumerate()
            .map(|(i, &(user, item))| RawInteraction { user, item, t: i as f64 })
            .collect();
        let rx = reindex_homogeneous(&raw);
        prop_assert_eq!(rx.num_users, rx.num_nodes);
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            prop_assert_eq!(rx.user_map[&r.user], src);
            prop_assert_eq!(rx.user_map[&r.item], dst);
        }
    }

    /// Label streams hit their configured class count and rough rate.
    #[test]
    fn labels_rate_and_classes(seed in 0u64..50) {
        let mut cfg = GeneratorConfig::small("prop-l", seed);
        cfg.num_edges = 2000;
        cfg.label = Some(LabelGenConfig::binary(0.2));
        let g = cfg.generate();
        let labels = g.labels.unwrap();
        prop_assert_eq!(labels.num_classes, 2);
        let rate = labels.class_rates()[1];
        prop_assert!((rate - 0.2).abs() < 0.1, "positive rate {}", rate);
    }
}
