//! Property-style tests on the graph substrate: generator invariants over
//! randomized configurations, neighbor-finder correctness vs a naive scan,
//! reindexing bijectivity, histogram conservation.
//!
//! Configurations are drawn from a seeded in-repo [`Pcg32`] stream rather
//! than an external property-testing framework, so the suite is fully
//! deterministic and builds offline. Each case is tagged with its draw index
//! in assertion messages for replayability.

use benchtemp_graph::features::FeatureInit;
use benchtemp_graph::generators::{GeneratorConfig, LabelGenConfig};
use benchtemp_graph::neighbors::{NeighborFinder, SamplingStrategy};
use benchtemp_graph::reindex::{reindex_heterogeneous, reindex_homogeneous, RawInteraction};
use benchtemp_graph::stats::temporal_histogram;
use benchtemp_tensor::{init, Pcg32};

const CASES: usize = 48;

/// Draw a random-but-valid generator configuration.
fn random_config(rng: &mut Pcg32) -> GeneratorConfig {
    GeneratorConfig {
        name: "prop".into(),
        bipartite: rng.gen_bool(0.5),
        num_users: rng.gen_range(2usize..40),
        num_items: rng.gen_range(2usize..40),
        num_edges: rng.gen_range(50usize..800),
        edge_dim: 4,
        time_span: 500.0,
        granularity_levels: if rng.gen_bool(0.5) {
            Some(rng.gen_range(1usize..20))
        } else {
            None
        },
        recurrence: rng.gen_range(0.0f64..0.95),
        recency_bias: 0.5,
        recency_window: 500,
        zipf_exponent: 0.8,
        communities: rng.gen_range(1usize..6),
        affinity: rng.gen_range(0.0f64..1.0),
        burstiness: rng.gen_range(0.0f64..0.8),
        feature_noise: 0.1,
        label: None,
        node_feature_init: FeatureInit::Zeros,
        node_dim: 4,
        seed: rng.gen_range(0u64..1000),
    }
}

/// Random (user, item) pairs for the reindexing tests.
fn random_pairs(rng: &mut Pcg32, max_id: u64) -> Vec<(u64, u64)> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| (rng.gen_range(0..max_id), rng.gen_range(0..max_id)))
        .collect()
}

/// Every generated graph satisfies the structural invariants.
#[test]
fn generated_graphs_are_always_valid() {
    let mut rng = Pcg32::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let g = cfg.generate();
        assert_eq!(g.validate(), Ok(()), "case {case}");
        assert_eq!(g.num_events(), cfg.num_edges, "case {case}");
        assert_eq!(g.num_nodes, cfg.total_nodes(), "case {case}");
    }
}

/// Generation is a pure function of the config.
#[test]
fn generation_is_deterministic() {
    let mut rng = Pcg32::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.events, b.events, "case {case}");
    }
}

/// `NeighborFinder::before` matches a naive scan for arbitrary queries.
#[test]
fn neighbor_finder_matches_naive() {
    let mut rng = Pcg32::seed_from_u64(0xCAFE);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let t = rng.gen_range(0.0f64..600.0);
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let node = rng.gen_range(0usize..g.num_nodes);
        let naive: Vec<usize> = g
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.t < t && (e.src == node || e.dst == node))
            .map(|(i, _)| i)
            .collect();
        let fast: Vec<usize> = nf.before(node, t).iter().map(|e| e.event_idx).collect();
        assert_eq!(naive, fast, "case {case} node {node} t {t}");
    }
}

/// Sampled neighbors always come strictly before the query time.
#[test]
fn sampling_never_leaks_future() {
    let mut rng = Pcg32::seed_from_u64(0xD00D);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let t = rng.gen_range(1.0f64..600.0);
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let mut sample_rng = init::rng(rng.gen_range(0u64..100));
        for strategy in [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalSafe,
            SamplingStrategy::TemporalExp { alpha: 0.1 },
        ] {
            for node in 0..g.num_nodes.min(5) {
                let s = nf.sample_before(node, t, 4, strategy, &mut sample_rng);
                assert!(s.iter().all(|e| e.t < t), "case {case} node {node} t {t}");
            }
        }
    }
}

/// Histogram bins conserve the event count.
#[test]
fn histogram_conserves_events() {
    let mut rng = Pcg32::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let bins = rng.gen_range(1usize..100);
        let g = cfg.generate();
        let h = temporal_histogram(&g, bins);
        assert_eq!(
            h.iter().sum::<usize>(),
            g.num_events(),
            "case {case} bins {bins}"
        );
    }
}

/// Heterogeneous reindexing: injective, contiguous, users below items.
#[test]
fn hetero_reindex_bijective() {
    let mut rng = Pcg32::seed_from_u64(0x8E7);
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 10_000);
        let raw: Vec<RawInteraction> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(user, item))| RawInteraction {
                user,
                item,
                t: i as f64,
            })
            .collect();
        let rx = reindex_heterogeneous(&raw);
        let mut seen = vec![false; rx.num_nodes];
        for &v in rx.user_map.values().chain(rx.item_map.values()) {
            assert!(!seen[v], "case {case}: duplicate id {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: ids not contiguous");
        assert!(
            rx.user_map.values().all(|&v| v < rx.num_users),
            "case {case}"
        );
        assert!(
            rx.item_map.values().all(|&v| v >= rx.num_users),
            "case {case}"
        );
        // Round trip: every edge maps back to its raw pair.
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            assert_eq!(rx.user_map[&r.user], src, "case {case}");
            assert_eq!(rx.item_map[&r.item], dst, "case {case}");
        }
    }
}

/// Homogeneous reindexing: one shared id space, order-preserving lookups.
#[test]
fn homo_reindex_consistent() {
    let mut rng = Pcg32::seed_from_u64(0x9090);
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 500);
        let raw: Vec<RawInteraction> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(user, item))| RawInteraction {
                user,
                item,
                t: i as f64,
            })
            .collect();
        let rx = reindex_homogeneous(&raw);
        assert_eq!(rx.num_users, rx.num_nodes, "case {case}");
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            assert_eq!(rx.user_map[&r.user], src, "case {case}");
            assert_eq!(rx.user_map[&r.item], dst, "case {case}");
        }
    }
}

/// Label streams hit their configured class count and rough rate.
#[test]
fn labels_rate_and_classes() {
    for seed in 0u64..50 {
        let mut cfg = GeneratorConfig::small("prop-l", seed);
        cfg.num_edges = 2000;
        cfg.label = Some(LabelGenConfig::binary(0.2));
        let g = cfg.generate();
        let labels = g.labels.unwrap();
        assert_eq!(labels.num_classes, 2, "seed {seed}");
        let rate = labels.class_rates()[1];
        assert!(
            (rate - 0.2).abs() < 0.1,
            "seed {seed}: positive rate {rate}"
        );
    }
}
