//! Property-style tests on the graph substrate: generator invariants over
//! randomized configurations, neighbor-finder correctness vs a naive scan,
//! reindexing bijectivity, histogram conservation.
//!
//! Configurations are drawn from a seeded in-repo [`Pcg32`] stream rather
//! than an external property-testing framework, so the suite is fully
//! deterministic and builds offline. Each case is tagged with its draw index
//! in assertion messages for replayability.

use benchtemp_graph::features::FeatureInit;
use benchtemp_graph::generators::{GeneratorConfig, LabelGenConfig};
use benchtemp_graph::neighbors::{NeighborFinder, SamplingStrategy};
use benchtemp_graph::reindex::{reindex_heterogeneous, reindex_homogeneous, RawInteraction};
use benchtemp_graph::stats::temporal_histogram;
use benchtemp_tensor::{init, Pcg32};

const CASES: usize = 48;

/// Draw a random-but-valid generator configuration.
fn random_config(rng: &mut Pcg32) -> GeneratorConfig {
    GeneratorConfig {
        name: "prop".into(),
        bipartite: rng.gen_bool(0.5),
        num_users: rng.gen_range(2usize..40),
        num_items: rng.gen_range(2usize..40),
        num_edges: rng.gen_range(50usize..800),
        edge_dim: 4,
        time_span: 500.0,
        granularity_levels: if rng.gen_bool(0.5) {
            Some(rng.gen_range(1usize..20))
        } else {
            None
        },
        recurrence: rng.gen_range(0.0f64..0.95),
        recency_bias: 0.5,
        recency_window: 500,
        zipf_exponent: 0.8,
        communities: rng.gen_range(1usize..6),
        affinity: rng.gen_range(0.0f64..1.0),
        burstiness: rng.gen_range(0.0f64..0.8),
        feature_noise: 0.1,
        label: None,
        node_feature_init: FeatureInit::Zeros,
        node_dim: 4,
        seed: rng.gen_range(0u64..1000),
    }
}

/// Random (user, item) pairs for the reindexing tests.
fn random_pairs(rng: &mut Pcg32, max_id: u64) -> Vec<(u64, u64)> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| (rng.gen_range(0..max_id), rng.gen_range(0..max_id)))
        .collect()
}

/// Every generated graph satisfies the structural invariants.
#[test]
fn generated_graphs_are_always_valid() {
    let mut rng = Pcg32::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let g = cfg.generate();
        assert_eq!(g.validate(), Ok(()), "case {case}");
        assert_eq!(g.num_events(), cfg.num_edges, "case {case}");
        assert_eq!(g.num_nodes, cfg.total_nodes(), "case {case}");
    }
}

/// Generation is a pure function of the config.
#[test]
fn generation_is_deterministic() {
    let mut rng = Pcg32::seed_from_u64(0xB0B);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.events, b.events, "case {case}");
    }
}

/// `NeighborFinder::before` matches a naive scan for arbitrary queries.
#[test]
fn neighbor_finder_matches_naive() {
    let mut rng = Pcg32::seed_from_u64(0xCAFE);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let t = rng.gen_range(0.0f64..600.0);
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let node = rng.gen_range(0usize..g.num_nodes);
        let naive: Vec<usize> = g
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.t < t && (e.src == node || e.dst == node))
            .map(|(i, _)| i)
            .collect();
        let fast: Vec<usize> = nf.before(node, t).iter().map(|e| e.event_idx).collect();
        assert_eq!(naive, fast, "case {case} node {node} t {t}");
    }
}

/// Sampled neighbors always come strictly before the query time.
#[test]
fn sampling_never_leaks_future() {
    let mut rng = Pcg32::seed_from_u64(0xD00D);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let t = rng.gen_range(1.0f64..600.0);
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let mut sample_rng = init::rng(rng.gen_range(0u64..100));
        for strategy in [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalSafe,
            SamplingStrategy::TemporalExp { alpha: 0.1 },
        ] {
            for node in 0..g.num_nodes.min(5) {
                let s = nf.sample_before(node, t, 4, strategy, &mut sample_rng);
                assert!(s.iter().all(|e| e.t < t), "case {case} node {node} t {t}");
            }
        }
    }
}

/// Histogram bins conserve the event count.
#[test]
fn histogram_conserves_events() {
    let mut rng = Pcg32::seed_from_u64(0xF00D);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let bins = rng.gen_range(1usize..100);
        let g = cfg.generate();
        let h = temporal_histogram(&g, bins);
        assert_eq!(
            h.iter().sum::<usize>(),
            g.num_events(),
            "case {case} bins {bins}"
        );
    }
}

/// Heterogeneous reindexing: injective, contiguous, users below items.
#[test]
fn hetero_reindex_bijective() {
    let mut rng = Pcg32::seed_from_u64(0x8E7);
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 10_000);
        let raw: Vec<RawInteraction> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(user, item))| RawInteraction {
                user,
                item,
                t: i as f64,
            })
            .collect();
        let rx = reindex_heterogeneous(&raw);
        let mut seen = vec![false; rx.num_nodes];
        for &v in rx.user_map.values().chain(rx.item_map.values()) {
            assert!(!seen[v], "case {case}: duplicate id {v}");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "case {case}: ids not contiguous");
        assert!(
            rx.user_map.values().all(|&v| v < rx.num_users),
            "case {case}"
        );
        assert!(
            rx.item_map.values().all(|&v| v >= rx.num_users),
            "case {case}"
        );
        // Round trip: every edge maps back to its raw pair.
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            assert_eq!(rx.user_map[&r.user], src, "case {case}");
            assert_eq!(rx.item_map[&r.item], dst, "case {case}");
        }
    }
}

/// Homogeneous reindexing: one shared id space, order-preserving lookups.
#[test]
fn homo_reindex_consistent() {
    let mut rng = Pcg32::seed_from_u64(0x9090);
    for case in 0..CASES {
        let pairs = random_pairs(&mut rng, 500);
        let raw: Vec<RawInteraction> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(user, item))| RawInteraction {
                user,
                item,
                t: i as f64,
            })
            .collect();
        let rx = reindex_homogeneous(&raw);
        assert_eq!(rx.num_users, rx.num_nodes, "case {case}");
        for (r, &(src, dst)) in raw.iter().zip(&rx.edges) {
            assert_eq!(rx.user_map[&r.user], src, "case {case}");
            assert_eq!(rx.user_map[&r.item], dst, "case {case}");
        }
    }
}

/// Behavior-exact reproduction of the pre-CSR `Vec<Vec<_>>` sampler, kept
/// as the equivalence oracle for the CSR engine: same adjacency indexing,
/// same per-query weight accumulation, same RNG consumption.
mod seed_reference {
    use benchtemp_graph::neighbors::{NeighborEvent, SamplingStrategy};
    use benchtemp_graph::Interaction;
    use benchtemp_tensor::init::SeededRng;

    pub struct SeedNeighborFinder {
        adj: Vec<Vec<NeighborEvent>>,
    }

    impl SeedNeighborFinder {
        pub fn from_events(num_nodes: usize, events: &[Interaction]) -> Self {
            let mut adj: Vec<Vec<NeighborEvent>> = vec![Vec::new(); num_nodes];
            for (idx, ev) in events.iter().enumerate() {
                adj[ev.src].push(NeighborEvent {
                    neighbor: ev.dst,
                    t: ev.t,
                    event_idx: idx,
                });
                adj[ev.dst].push(NeighborEvent {
                    neighbor: ev.src,
                    t: ev.t,
                    event_idx: idx,
                });
            }
            SeedNeighborFinder { adj }
        }

        fn before(&self, node: usize, t: f64) -> &[NeighborEvent] {
            let list = &self.adj[node];
            let cut = list.partition_point(|e| e.t < t);
            &list[..cut]
        }

        pub fn sample_before(
            &self,
            node: usize,
            t: f64,
            k: usize,
            strategy: SamplingStrategy,
            rng: &mut SeededRng,
        ) -> Vec<NeighborEvent> {
            let hist = self.before(node, t);
            if hist.is_empty() || k == 0 {
                return Vec::new();
            }
            match strategy {
                SamplingStrategy::MostRecent => hist[hist.len().saturating_sub(k)..].to_vec(),
                SamplingStrategy::Uniform => {
                    (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect()
                }
                SamplingStrategy::TemporalExp { alpha } => {
                    let weights: Vec<f64> =
                        hist.iter().map(|e| (alpha * (e.t - t)).exp()).collect();
                    weighted_sample(hist, &weights, k, rng)
                }
                SamplingStrategy::TemporalSafe => {
                    let weights: Vec<f64> = hist
                        .iter()
                        .map(|e| {
                            let d = t - e.t;
                            if d <= 0.0 {
                                1.0
                            } else {
                                1.0 / d
                            }
                        })
                        .collect();
                    weighted_sample(hist, &weights, k, rng)
                }
            }
        }
    }

    fn weighted_sample(
        hist: &[NeighborEvent],
        weights: &[f64],
        k: usize,
        rng: &mut SeededRng,
    ) -> Vec<NeighborEvent> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += if w.is_finite() { w } else { 0.0 };
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect();
        }
        (0..k)
            .map(|_| {
                let x = rng.gen_range(0.0..acc);
                let idx = cumulative.partition_point(|&c| c <= x);
                hist[idx.min(hist.len() - 1)]
            })
            .collect()
    }
}

/// The CSR engine, driven by the same RNG seed stream, produces
/// byte-identical samples to the pre-refactor `Vec<Vec<_>>` implementation
/// for all four strategies. Each strategy runs many queries against one
/// shared RNG pair, so any divergence in RNG *consumption* (not just in
/// returned values) also fails the later queries.
#[test]
fn csr_sampler_bit_matches_seed_layout() {
    let mut rng = Pcg32::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let cfg = random_config(&mut rng);
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let oracle = seed_reference::SeedNeighborFinder::from_events(g.num_nodes, &g.events);
        for strategy in [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalExp { alpha: 0.2 },
            SamplingStrategy::TemporalSafe,
        ] {
            let s = rng.gen_range(0u64..1_000_000);
            let mut r_old = init::rng(s);
            let mut r_new = init::rng(s);
            for q in 0..20 {
                let node = rng.gen_range(0usize..g.num_nodes);
                let t = rng.gen_range(0.0f64..600.0);
                let k = rng.gen_range(1usize..8);
                let a = oracle.sample_before(node, t, k, strategy, &mut r_old);
                let b = nf.sample_before(node, t, k, strategy, &mut r_new);
                assert_eq!(a.len(), b.len(), "case {case} q {q} {strategy:?}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.neighbor, y.neighbor, "case {case} q {q} {strategy:?}");
                    assert_eq!(x.event_idx, y.event_idx, "case {case} q {q} {strategy:?}");
                    assert_eq!(
                        x.t.to_bits(),
                        y.t.to_bits(),
                        "case {case} q {q} {strategy:?}"
                    );
                }
            }
        }
    }
}

/// `TemporalSafe` empirical frequencies match the naive weighted reference:
/// P(event i) = w_i / Σw with w = 1/(t − t_i).
#[test]
fn temporal_safe_matches_reference_frequencies() {
    use benchtemp_graph::Interaction;
    let ts = [0.0, 50.0, 90.0, 99.0];
    let t = 100.0;
    let events: Vec<Interaction> = ts
        .iter()
        .enumerate()
        .map(|(i, &et)| Interaction {
            src: 0,
            dst: i + 1,
            t: et,
            feat_idx: i,
        })
        .collect();
    let nf = NeighborFinder::from_events(ts.len() + 1, &events);
    // Naive reference distribution.
    let weights: Vec<f64> = ts.iter().map(|&et| 1.0 / (t - et)).collect();
    let total: f64 = weights.iter().sum();
    let expected: Vec<f64> = weights.iter().map(|w| w / total).collect();
    let n = 200_000usize;
    let mut r = init::rng(0xFE11);
    let samples = nf.sample_before(0, t, n, SamplingStrategy::TemporalSafe, &mut r);
    assert_eq!(samples.len(), n);
    let mut counts = vec![0usize; ts.len()];
    for s in &samples {
        counts[s.event_idx] += 1;
    }
    for (i, (&c, &e)) in counts.iter().zip(&expected).enumerate() {
        let emp = c as f64 / n as f64;
        assert!(
            (emp - e).abs() < 0.01,
            "event {i}: empirical {emp:.4} vs expected {e:.4}"
        );
    }
}

/// Label streams hit their configured class count and rough rate.
#[test]
fn labels_rate_and_classes() {
    for seed in 0u64..50 {
        let mut cfg = GeneratorConfig::small("prop-l", seed);
        cfg.num_edges = 2000;
        cfg.label = Some(LabelGenConfig::binary(0.2));
        let g = cfg.generate();
        let labels = g.labels.unwrap();
        assert_eq!(labels.num_classes, 2, "seed {seed}");
        let rate = labels.class_rates()[1];
        assert!(
            (rate - 0.2).abs() < 0.1,
            "seed {seed}: positive rate {rate}"
        );
    }
}
