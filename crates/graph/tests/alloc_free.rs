//! Zero-allocation contract of the CSR sampling fast paths: after warm-up
//! (scratch and output buffers grown to the largest history / `k` seen),
//! `sample_into` and `sample_one` must perform no heap allocations at all.
//!
//! Verified with a counting global allocator. This file holds exactly one
//! test so no sibling test thread can allocate concurrently and pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::{NeighborFinder, SampleScratch, SamplingStrategy};
use benchtemp_tensor::init;

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`, which upholds every GlobalAlloc
// contract; the only addition is an atomic counter bump, which allocates
// nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's layout preconditions; delegated
    // verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior alloc on this same allocator
    // (we always delegate to `System`), so forwarding to `System.realloc`
    // preserves its contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same delegation argument as `realloc` — every pointer we are
    // handed was produced by `System`, so `System.dealloc` may free it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const STRATEGIES: [SamplingStrategy; 4] = [
    SamplingStrategy::MostRecent,
    SamplingStrategy::Uniform,
    SamplingStrategy::TemporalExp { alpha: 0.1 },
    SamplingStrategy::TemporalSafe,
];

#[test]
fn sample_paths_are_allocation_free_after_warmup() {
    let mut cfg = GeneratorConfig::small("alloc", 7);
    cfg.num_edges = 4000;
    let g = cfg.generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let queries: Vec<(usize, f64)> = (0..200)
        .map(|i| (i % g.num_nodes, 10.0 + 7.0 * i as f64))
        .collect();
    let k = 8;

    let mut rng = init::rng(3);
    let mut scratch = SampleScratch::new();
    let mut out = Vec::new();
    let sweep = |rng: &mut benchtemp_tensor::init::SeededRng,
                 scratch: &mut SampleScratch,
                 out: &mut Vec<_>| {
        let mut picked = 0usize;
        for &(node, t) in &queries {
            for strategy in STRATEGIES {
                nf.sample_into(node, t, k, strategy, rng, scratch, out);
                picked += out.len();
                if nf.sample_one(node, t, strategy, rng, scratch).is_some() {
                    picked += 1;
                }
            }
        }
        picked
    };

    // Warm-up pass grows the scratch/output buffers to their steady state.
    let warm = sweep(&mut rng, &mut scratch, &mut out);
    assert!(warm > 0, "warm-up sampled nothing; workload is degenerate");

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    let measured = sweep(&mut rng, &mut scratch, &mut out);
    let after = ALLOC_CALLS.load(Ordering::SeqCst);
    assert!(measured > 0);
    assert_eq!(
        after - before,
        0,
        "sample_into/sample_one allocated {} times after warm-up",
        after - before
    );
}
