//! Dataset statistics (Table 2 / Table 16) and the temporal edge
//! distributions of Fig. 5 / Fig. 8 / Fig. 9.

use benchtemp_util::{json, Json, ToJson};

use crate::temporal_graph::TemporalGraph;

/// Computed statistics for one dataset, mirroring Table 2's columns plus a
/// few the generators are tuned against.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    pub name: String,
    pub num_nodes: usize,
    pub num_edges: usize,
    /// `#edges / #nodes` (Table 2's "Avg. Degree").
    pub avg_degree: f64,
    /// Distinct (src,dst) pairs over all possible pairs.
    pub edge_density: f64,
    pub distinct_edges: usize,
    /// Fraction of events repeating an earlier (src,dst) pair — the signal
    /// EdgeBank-style memorization exploits.
    pub recurrence_ratio: f64,
    pub time_span: f64,
    pub distinct_timestamps: usize,
    pub bipartite: bool,
}

impl DatasetStats {
    pub fn compute(g: &TemporalGraph) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for ev in &g.events {
            if !seen.insert((ev.src, ev.dst)) {
                repeats += 1;
            }
        }
        let mut ts: Vec<f64> = g.events.iter().map(|e| e.t).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup();
        let possible_pairs = if g.bipartite {
            g.num_users as f64 * (g.num_nodes - g.num_users) as f64
        } else {
            let n = g.num_nodes as f64;
            n * (n - 1.0)
        };
        let (lo, hi) = g.time_span();
        DatasetStats {
            name: g.name.clone(),
            num_nodes: g.num_nodes,
            num_edges: g.num_events(),
            avg_degree: g.num_events() as f64 / g.num_nodes.max(1) as f64,
            edge_density: seen.len() as f64 / possible_pairs.max(1.0),
            distinct_edges: seen.len(),
            recurrence_ratio: repeats as f64 / g.num_events().max(1) as f64,
            time_span: hi - lo,
            distinct_timestamps: ts.len(),
            bipartite: g.bipartite,
        }
    }
}

impl ToJson for DatasetStats {
    fn to_json(&self) -> Json {
        json!({
            "name": self.name.as_str(),
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "edge_density": self.edge_density,
            "distinct_edges": self.distinct_edges,
            "recurrence_ratio": self.recurrence_ratio,
            "time_span": self.time_span,
            "distinct_timestamps": self.distinct_timestamps,
            "bipartite": self.bipartite,
        })
    }
}

/// Temporal edge-count histogram (Fig. 5/8/9): number of events per
/// equal-width time bin across the full span.
pub fn temporal_histogram(g: &TemporalGraph, bins: usize) -> Vec<usize> {
    assert!(bins > 0);
    let (lo, hi) = g.time_span();
    let width = (hi - lo).max(f64::MIN_POSITIVE);
    let mut hist = vec![0usize; bins];
    for ev in &g.events {
        let b = (((ev.t - lo) / width) * bins as f64) as usize;
        hist[b.min(bins - 1)] += 1;
    }
    hist
}

/// Render a histogram as a compact ASCII sparkbar (for harness output).
pub fn sparkline(hist: &[usize]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = hist.iter().copied().max().unwrap_or(0).max(1);
    hist.iter()
        .map(|&h| BARS[(h * (BARS.len() - 1) + max / 2) / max])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;

    #[test]
    fn stats_count_correctly() {
        let g = GeneratorConfig::small("s", 2).generate();
        let s = DatasetStats::compute(&g);
        assert_eq!(s.num_edges, g.num_events());
        assert_eq!(s.num_nodes, g.num_nodes);
        assert!(s.avg_degree > 0.0);
        assert!(s.recurrence_ratio > 0.0 && s.recurrence_ratio < 1.0);
        assert!(s.edge_density > 0.0 && s.edge_density <= 1.0);
        assert_eq!(
            s.distinct_edges + (s.recurrence_ratio * s.num_edges as f64).round() as usize,
            s.num_edges
        );
    }

    #[test]
    fn histogram_partitions_all_events() {
        let g = GeneratorConfig::small("s", 3).generate();
        let h = temporal_histogram(&g, 20);
        assert_eq!(h.len(), 20);
        assert_eq!(h.iter().sum::<usize>(), g.num_events());
    }

    #[test]
    fn histogram_handles_single_bin() {
        let g = GeneratorConfig::small("s", 3).generate();
        let h = temporal_histogram(&g, 1);
        assert_eq!(h, vec![g.num_events()]);
    }

    #[test]
    fn sparkline_length_matches() {
        let s = sparkline(&[0, 1, 2, 3, 4]);
        assert_eq!(s.chars().count(), 5);
    }

    #[test]
    fn burstiness_shows_in_histogram_variance() {
        let mut bursty = GeneratorConfig::small("b", 5);
        bursty.burstiness = 0.7;
        let mut smooth = bursty.clone();
        smooth.burstiness = 0.0;
        let var = |g: &crate::temporal_graph::TemporalGraph| {
            let h = temporal_histogram(g, 40);
            let mean = h.iter().sum::<usize>() as f64 / h.len() as f64;
            h.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / h.len() as f64
        };
        assert!(var(&bursty.generate()) > var(&smooth.generate()));
    }
}
