//! The temporal-graph abstraction of §3.1: an ordered sequence of temporal
//! interactions `I_r = (u_r, i_r, t_r, e_r)`.

use benchtemp_tensor::Matrix;

/// One temporal interaction (edge event). `feat_idx` indexes the graph's
/// edge-feature matrix so repeated edges can share or differ in features.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interaction {
    /// Source node (user side for bipartite graphs).
    pub src: usize,
    /// Destination node (item side for bipartite graphs).
    pub dst: usize,
    /// Event timestamp; the stream is sorted ascending.
    pub t: f64,
    /// Row into [`TemporalGraph::edge_features`].
    pub feat_idx: usize,
}

/// Per-interaction labels for the node-classification task. In the JODIE
/// datasets the label marks a *state change of the source node at event
/// time* (user banned / student drops out), which is why labels attach to
/// interactions, not static nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct EventLabels {
    /// `labels[r]` is the class of the source node of interaction `r`.
    pub labels: Vec<u32>,
    pub num_classes: usize,
}

impl EventLabels {
    /// Fraction of events carrying each class.
    pub fn class_rates(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        let n = self.labels.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// A temporal graph: interaction stream plus node/edge features and
/// optional event labels.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    pub name: String,
    /// Heterogeneous (bipartite user–item) vs homogeneous (Table 2).
    pub bipartite: bool,
    /// Total node count after §3.1 reindexing; ids are `0..num_nodes`.
    pub num_nodes: usize,
    /// For bipartite graphs, users occupy ids `0..num_users` and items
    /// `num_users..num_nodes`; for homogeneous graphs this equals `num_nodes`.
    pub num_users: usize,
    /// Events sorted ascending by `t` (ties keep generation order).
    pub events: Vec<Interaction>,
    /// `num_events × edge_dim` feature matrix.
    pub edge_features: Matrix,
    /// `num_nodes × node_dim` feature matrix (§3.1 initialization).
    pub node_features: Matrix,
    pub labels: Option<EventLabels>,
}

impl TemporalGraph {
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    pub fn edge_dim(&self) -> usize {
        self.edge_features.cols()
    }

    pub fn node_dim(&self) -> usize {
        self.node_features.cols()
    }

    /// Earliest and latest timestamps, or `(0,0)` if empty.
    pub fn time_span(&self) -> (f64, f64) {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => (a.t, b.t),
            _ => (0.0, 0.0),
        }
    }

    /// Check the structural invariants the pipeline relies on. Returns a
    /// description of the first violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_users > self.num_nodes {
            return Err(format!(
                "num_users {} exceeds num_nodes {}",
                self.num_users, self.num_nodes
            ));
        }
        if self.node_features.rows() != self.num_nodes {
            return Err(format!(
                "node_features has {} rows for {} nodes",
                self.node_features.rows(),
                self.num_nodes
            ));
        }
        let mut last_t = f64::NEG_INFINITY;
        for (r, ev) in self.events.iter().enumerate() {
            if ev.src >= self.num_nodes || ev.dst >= self.num_nodes {
                return Err(format!("event {r}: node id out of range"));
            }
            if self.bipartite && (ev.src >= self.num_users || ev.dst < self.num_users) {
                return Err(format!(
                    "event {r}: bipartite violation (src {} dst {} with {} users)",
                    ev.src, ev.dst, self.num_users
                ));
            }
            if ev.t < last_t {
                return Err(format!("event {r}: timestamps not sorted"));
            }
            last_t = ev.t;
            if ev.feat_idx >= self.edge_features.rows() {
                return Err(format!("event {r}: feat_idx out of range"));
            }
        }
        if let Some(l) = &self.labels {
            if l.labels.len() != self.events.len() {
                return Err("label count != event count".into());
            }
            if l.labels.iter().any(|&c| c as usize >= l.num_classes) {
                return Err("label class out of range".into());
            }
        }
        Ok(())
    }

    /// Distinct nodes that actually appear in the given event range.
    pub fn active_nodes(&self, events: &[Interaction]) -> Vec<usize> {
        let mut seen = vec![false; self.num_nodes];
        for ev in events {
            seen[ev.src] = true;
            seen[ev.dst] = true;
        }
        (0..self.num_nodes).filter(|&n| seen[n]).collect()
    }

    /// Heap footprint of the stored data (efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<Interaction>()
            + self.edge_features.heap_bytes()
            + self.node_features.heap_bytes()
            + self
                .labels
                .as_ref()
                .map(|l| l.labels.capacity() * std::mem::size_of::<u32>())
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tiny_graph() -> TemporalGraph {
        TemporalGraph {
            name: "tiny".into(),
            bipartite: true,
            num_nodes: 4,
            num_users: 2,
            events: vec![
                Interaction {
                    src: 0,
                    dst: 2,
                    t: 1.0,
                    feat_idx: 0,
                },
                Interaction {
                    src: 1,
                    dst: 3,
                    t: 2.0,
                    feat_idx: 1,
                },
                Interaction {
                    src: 0,
                    dst: 3,
                    t: 3.0,
                    feat_idx: 2,
                },
            ],
            edge_features: Matrix::zeros(3, 2),
            node_features: Matrix::zeros(4, 3),
            labels: None,
        }
    }

    #[test]
    fn valid_graph_passes_validation() {
        assert_eq!(tiny_graph().validate(), Ok(()));
    }

    #[test]
    fn unsorted_timestamps_fail_validation() {
        let mut g = tiny_graph();
        g.events[2].t = 0.5;
        assert!(g.validate().unwrap_err().contains("sorted"));
    }

    #[test]
    fn bipartite_violation_fails_validation() {
        let mut g = tiny_graph();
        g.events[0].dst = 1; // user→user edge in a bipartite graph
        assert!(g.validate().unwrap_err().contains("bipartite"));
    }

    #[test]
    fn out_of_range_node_fails_validation() {
        let mut g = tiny_graph();
        g.events[0].src = 99;
        assert!(g.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn active_nodes_reports_touched_nodes_only() {
        let g = tiny_graph();
        assert_eq!(g.active_nodes(&g.events[..1]), vec![0, 2]);
        assert_eq!(g.active_nodes(&g.events), vec![0, 1, 2, 3]);
    }

    #[test]
    fn label_rates_sum_to_one() {
        let l = EventLabels {
            labels: vec![0, 0, 1, 0],
            num_classes: 2,
        };
        let rates = l.class_rates();
        assert!((rates[0] - 0.75).abs() < 1e-9);
        assert!((rates.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_span_and_counts() {
        let g = tiny_graph();
        assert_eq!(g.time_span(), (1.0, 3.0));
        assert_eq!(g.num_events(), 3);
        assert_eq!(g.edge_dim(), 2);
        assert_eq!(g.node_dim(), 3);
    }
}
