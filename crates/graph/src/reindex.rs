//! §3.1 node reindexing (Fig. 3).
//!
//! Raw interaction logs carry sparse, non-contiguous node identifiers whose
//! maximum can vastly exceed the node count (the paper's Taobao example
//! shrinks the feature matrix 62.5× after reindexing). BenchTemp maps:
//!
//! * **heterogeneous** graphs: users → a contiguous range first, then items
//!   → the range starting after the last user index (Fig. 3a);
//! * **homogeneous** graphs: the concatenated user+item id set → one
//!   contiguous range (Fig. 3b).
//!
//! The paper numbers from 1; this crate numbers from 0 (ids are array
//! indices downstream), which is a pure shift of the same mapping.

use std::collections::HashMap;

/// A raw interaction prior to reindexing: original ids, timestamp.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawInteraction {
    pub user: u64,
    pub item: u64,
    pub t: f64,
}

/// Outcome of reindexing: remapped endpoint ids plus the id tables.
#[derive(Clone, Debug)]
pub struct Reindexed {
    /// `(src, dst)` per raw interaction, in input order.
    pub edges: Vec<(usize, usize)>,
    /// Total node count after the mapping.
    pub num_nodes: usize,
    /// Users occupy `0..num_users` (equals `num_nodes` for homogeneous).
    pub num_users: usize,
    /// original user id → new id (first-appearance order).
    pub user_map: HashMap<u64, usize>,
    /// original item id → new id. For homogeneous graphs this is the same
    /// table as `user_map`.
    pub item_map: HashMap<u64, usize>,
}

/// Reindex a heterogeneous (bipartite) interaction log per Fig. 3a.
pub fn reindex_heterogeneous(raw: &[RawInteraction]) -> Reindexed {
    let mut user_map: HashMap<u64, usize> = HashMap::new();
    let mut item_map: HashMap<u64, usize> = HashMap::new();
    for r in raw {
        let next = user_map.len();
        user_map.entry(r.user).or_insert(next);
    }
    let num_users = user_map.len();
    for r in raw {
        let next = num_users + item_map.len();
        item_map.entry(r.item).or_insert(next);
    }
    let edges = raw
        .iter()
        .map(|r| (user_map[&r.user], item_map[&r.item]))
        .collect();
    Reindexed {
        edges,
        num_nodes: num_users + item_map.len(),
        num_users,
        user_map,
        item_map,
    }
}

/// Reindex a homogeneous interaction log per Fig. 3b: user and item columns
/// are concatenated and share one id space.
pub fn reindex_homogeneous(raw: &[RawInteraction]) -> Reindexed {
    let mut map: HashMap<u64, usize> = HashMap::new();
    for r in raw {
        let next = map.len();
        map.entry(r.user).or_insert(next);
        let next = map.len();
        map.entry(r.item).or_insert(next);
    }
    let edges = raw.iter().map(|r| (map[&r.user], map[&r.item])).collect();
    let num_nodes = map.len();
    Reindexed {
        edges,
        num_nodes,
        num_users: num_nodes,
        user_map: map.clone(),
        item_map: map,
    }
}

/// The feature-matrix shrink factor reindexing buys: `max_raw_id / num_nodes`
/// (the paper reports 62.53× for Taobao).
pub fn shrink_factor(raw: &[RawInteraction], reindexed: &Reindexed) -> f64 {
    let max_raw = raw
        .iter()
        .flat_map(|r| [r.user, r.item])
        .max()
        .unwrap_or(0)
        .saturating_add(1);
    max_raw as f64 / reindexed.num_nodes.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(log: &[(u64, u64)]) -> Vec<RawInteraction> {
        log.iter()
            .enumerate()
            .map(|(i, &(user, item))| RawInteraction {
                user,
                item,
                t: i as f64,
            })
            .collect()
    }

    #[test]
    fn heterogeneous_users_then_items() {
        // Users {100, 7}, items {9000, 100} — item ids may collide with user
        // ids in the raw log; they map to disjoint ranges.
        let raw = raw(&[(100, 9000), (7, 100), (100, 100)]);
        let rx = reindex_heterogeneous(&raw);
        assert_eq!(rx.num_users, 2);
        assert_eq!(rx.num_nodes, 4);
        assert_eq!(rx.edges, vec![(0, 2), (1, 3), (0, 3)]);
        // All users below all items.
        assert!(rx
            .edges
            .iter()
            .all(|&(u, i)| u < rx.num_users && i >= rx.num_users));
    }

    #[test]
    fn homogeneous_shares_one_id_space() {
        let raw = raw(&[(100, 9000), (9000, 7), (7, 100)]);
        let rx = reindex_homogeneous(&raw);
        assert_eq!(rx.num_nodes, 3);
        assert_eq!(rx.num_users, rx.num_nodes);
        // Same raw id always maps to the same new id across both columns.
        assert_eq!(rx.edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn mapping_is_injective_and_contiguous() {
        let raw = raw(&[(5, 50), (6, 60), (5, 60), (8, 80)]);
        let rx = reindex_heterogeneous(&raw);
        let mut seen = vec![false; rx.num_nodes];
        // audit-allow(no-hashmap-iteration-in-numeric-path): injectivity check; the visited-flag result is order-independent
        for (&_, &v) in rx.user_map.iter().chain(rx.item_map.iter()) {
            assert!(!seen[v], "id {v} assigned twice");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "ids not contiguous");
    }

    #[test]
    fn shrink_factor_matches_taobao_style_compression() {
        // Raw ids up to 5_162_992 but only 4 distinct nodes (2 users, 2 items).
        let raw = raw(&[(5_162_992, 10), (3, 10), (3, 42)]);
        let rx = reindex_heterogeneous(&raw);
        assert_eq!(rx.num_nodes, 4);
        let f = shrink_factor(&raw, &rx);
        assert!((f - 5_162_993.0 / 4.0).abs() < 1.0);
    }

    #[test]
    fn empty_log_is_fine() {
        let rx = reindex_homogeneous(&[]);
        assert_eq!(rx.num_nodes, 0);
        assert!(rx.edges.is_empty());
    }
}
