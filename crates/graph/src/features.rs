//! §3.1 node-feature initialization.
//!
//! The paper standardizes the initial node-feature dimension to **172** for
//! every dataset (the most common choice in prior work) after showing that
//! ROC AUC grows with the dimension (Fig. 2). The reference BenchTemp uses
//! zero vectors; models then rely on memory/attention state keyed by node
//! identity. We support that plus a fixed-random scheme that gives each node
//! a stable pseudo-identity vector (useful for models without memory).

use benchtemp_tensor::init::{self};
use benchtemp_tensor::Matrix;

/// The paper's standardized node-feature dimension (§3.1).
pub const STANDARD_NODE_DIM: usize = 172;

/// Node-feature initialization scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FeatureInit {
    /// All-zero features (the reference BenchTemp default).
    Zeros,
    /// Per-node fixed random vectors drawn once from the given seed; acts as
    /// a frozen identity embedding.
    RandomFixed { seed: u64, std: f32 },
}

impl FeatureInit {
    /// Default: fixed random identity features, the variant our from-scratch
    /// models learn fastest from.
    pub fn default_random() -> Self {
        FeatureInit::RandomFixed {
            seed: 0x5eed,
            std: 0.1,
        }
    }

    /// Materialize a `num_nodes × dim` feature matrix.
    pub fn build(&self, num_nodes: usize, dim: usize) -> Matrix {
        match *self {
            FeatureInit::Zeros => Matrix::zeros(num_nodes, dim),
            FeatureInit::RandomFixed { seed, std } => {
                let mut rng = init::rng(seed);
                init::randn(num_nodes, dim, std, &mut rng)
            }
        }
    }
}

/// The Fig. 2 sweep grid of node-feature dimensions.
pub fn figure2_dims() -> Vec<usize> {
    vec![4, 8, 16, 32, 64, 128, STANDARD_NODE_DIM]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_builds_zero_matrix() {
        let m = FeatureInit::Zeros.build(5, 7);
        assert_eq!(m.shape(), (5, 7));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn random_fixed_is_deterministic_per_seed() {
        let a = FeatureInit::RandomFixed { seed: 3, std: 0.1 }.build(4, 6);
        let b = FeatureInit::RandomFixed { seed: 3, std: 0.1 }.build(4, 6);
        let c = FeatureInit::RandomFixed { seed: 4, std: 0.1 }.build(4, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn standard_dim_is_172() {
        assert_eq!(STANDARD_NODE_DIM, 172);
        assert_eq!(*figure2_dims().last().unwrap(), 172);
    }
}
