//! Synthetic temporal-interaction-stream generator.
//!
//! The paper evaluates on proprietary-or-large real datasets we cannot ship
//! (see DESIGN.md §1). This generator produces interaction streams with the
//! *structural signals the TGNN families exploit*, so the benchmark exercises
//! the same code paths and the model-family orderings have a chance to hold:
//!
//! * **recurrence** — edges repeat (LastFM/Contact style); memory-based
//!   models and EdgeBank benefit;
//! * **preferential attachment** — Zipf-skewed node activity, matching the
//!   heavy-tailed degree distributions of Table 2;
//! * **community affinity** — same-community pairs share neighbors, which is
//!   exactly the joint-neighborhood/motif signal CAWN, NeurTW and NAT read;
//! * **temporal burstiness & granularity** — session-like gap mixtures and
//!   coarse timestamp quantization (CanParl's yearly granularity) that the
//!   time encoders / NODE components respond to;
//! * **label process** — event labels driven by a hidden decayed risk state
//!   of the source node (ban/dropout style) for the node-classification task.

use benchtemp_tensor::init::{self, SeededRng};
use benchtemp_tensor::Matrix;

use crate::features::FeatureInit;
use crate::temporal_graph::{EventLabels, Interaction, TemporalGraph};

/// Label-process configuration for node-classification datasets.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelGenConfig {
    pub num_classes: usize,
    /// Target fraction of events in each non-majority class (binary: the
    /// positive rate; multi-class: per-class rate for classes `1..`).
    pub rare_rate: f64,
    /// Exponential decay applied to the hidden risk state per unit time.
    pub decay: f64,
}

impl LabelGenConfig {
    /// Binary labels (ban/dropout events) at the given positive rate.
    pub fn binary(rate: f64) -> Self {
        LabelGenConfig {
            num_classes: 2,
            rare_rate: rate,
            decay: 0.05,
        }
    }
}

/// Full generator configuration. Dataset presets (Table 2 / Table 16) live
/// in [`crate::datasets`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    pub name: String,
    pub bipartite: bool,
    pub num_users: usize,
    /// Item count for bipartite graphs; ignored when homogeneous.
    pub num_items: usize,
    pub num_edges: usize,
    pub edge_dim: usize,
    /// Total simulated time span.
    pub time_span: f64,
    /// Quantize timestamps to this many distinct values (e.g. 14 for a
    /// yearly parliament network); `None` keeps continuous time.
    pub granularity_levels: Option<usize>,
    /// Probability a new event repeats a previously seen edge.
    pub recurrence: f64,
    /// When repeating, probability of drawing from the recent window rather
    /// than uniformly over all history.
    pub recency_bias: f64,
    /// Size (in events) of the "recent" window recurrence draws from; small
    /// windows make edge repetition strongly freshness-dependent (the
    /// temporal signal time-aware models exploit).
    pub recency_window: usize,
    /// Zipf exponent for node-activity skew (0 = uniform).
    pub zipf_exponent: f64,
    /// Number of planted communities.
    pub communities: usize,
    /// Probability a fresh edge stays within the source's community.
    pub affinity: f64,
    /// 0 = homogeneous-rate Poisson gaps; towards 1 = heavy session bursts.
    pub burstiness: f64,
    /// Std-dev of per-event feature noise around the community-pair pattern.
    pub feature_noise: f32,
    pub label: Option<LabelGenConfig>,
    pub node_feature_init: FeatureInit,
    pub node_dim: usize,
    pub seed: u64,
}

impl GeneratorConfig {
    /// A small, fast default used by tests and examples.
    pub fn small(name: &str, seed: u64) -> Self {
        GeneratorConfig {
            name: name.into(),
            bipartite: true,
            num_users: 60,
            num_items: 40,
            num_edges: 1500,
            edge_dim: 8,
            time_span: 1000.0,
            granularity_levels: None,
            recurrence: 0.5,
            recency_bias: 0.5,
            recency_window: 500,
            zipf_exponent: 0.8,
            communities: 4,
            affinity: 0.9,
            burstiness: 0.3,
            feature_noise: 0.2,
            label: None,
            node_feature_init: FeatureInit::default_random(),
            node_dim: 16,
            seed,
        }
    }

    pub fn total_nodes(&self) -> usize {
        if self.bipartite {
            self.num_users + self.num_items
        } else {
            self.num_users
        }
    }

    /// Generate the temporal graph.
    pub fn generate(&self) -> TemporalGraph {
        assert!(self.num_users >= 2, "need at least 2 users");
        assert!(
            !self.bipartite || self.num_items >= 2,
            "need at least 2 items"
        );
        assert!(self.num_edges >= 1);
        let mut rng = init::rng(self.seed);
        let n = self.total_nodes();

        // --- per-node community + activity weights (Zipf with shuffled rank)
        let communities = assign_communities(n, self.communities.max(1), &mut rng);
        let user_range = 0..self.num_users;
        let item_range = if self.bipartite {
            self.num_users..n
        } else {
            0..n
        };
        let user_sampler = WeightedNodeSampler::new(
            user_range.clone(),
            &communities,
            self.zipf_exponent,
            &mut rng,
        );
        let item_sampler = WeightedNodeSampler::new(
            item_range.clone(),
            &communities,
            self.zipf_exponent,
            &mut rng,
        );

        // --- timestamps
        let times = self.generate_times(&mut rng);

        // --- events
        let mut history: Vec<(usize, usize)> = Vec::with_capacity(self.num_edges);
        let mut events = Vec::with_capacity(self.num_edges);
        for (r, &t) in times.iter().enumerate() {
            let (src, dst) = if !history.is_empty() && rng.gen_bool(self.recurrence) {
                // Repeat an existing edge (recency-biased or uniform).
                let idx = if rng.gen_bool(self.recency_bias) {
                    let window = history.len().min(self.recency_window.max(1));
                    history.len() - 1 - rng.gen_range(0..window)
                } else {
                    rng.gen_range(0..history.len())
                };
                history[idx]
            } else {
                let src = user_sampler.sample_any(&mut rng);
                let dst = if rng.gen_bool(self.affinity) {
                    item_sampler
                        .sample_in_community(communities[src], &mut rng)
                        .unwrap_or_else(|| item_sampler.sample_any(&mut rng))
                } else {
                    item_sampler.sample_any(&mut rng)
                };
                (src, dst)
            };
            let (src, dst) = if !self.bipartite && src == dst {
                // No self-loops in homogeneous graphs: nudge deterministically.
                (src, (dst + 1) % n)
            } else {
                (src, dst)
            };
            history.push((src, dst));
            events.push(Interaction {
                src,
                dst,
                t,
                feat_idx: r,
            });
        }

        // --- edge features: community-pair pattern + periodic time component
        let edge_features = self.generate_edge_features(&events, &communities, &mut rng);

        // --- labels
        let labels = self
            .label
            .as_ref()
            .map(|cfg| self.generate_labels(cfg, &events, &edge_features, &mut rng));

        let graph = TemporalGraph {
            name: self.name.clone(),
            bipartite: self.bipartite,
            num_nodes: n,
            num_users: if self.bipartite { self.num_users } else { n },
            events,
            edge_features,
            node_features: self.node_feature_init.build(n, self.node_dim),
            labels,
        };
        debug_assert_eq!(graph.validate(), Ok(()));
        graph
    }

    fn generate_times(&self, rng: &mut SeededRng) -> Vec<f64> {
        let mut gaps = Vec::with_capacity(self.num_edges);
        for _ in 0..self.num_edges {
            // Exponential gap, modulated by burst state.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let mut gap = -u.ln();
            if self.burstiness > 0.0 {
                if rng.gen_bool(self.burstiness) {
                    gap *= 0.05; // inside a session burst
                } else if rng.gen_bool((self.burstiness * 0.3).min(1.0)) {
                    gap *= 10.0; // long lull between sessions
                }
            }
            gaps.push(gap);
        }
        // Normalize cumulative sum onto [0, time_span].
        let total: f64 = gaps.iter().sum();
        let scale = if total > 0.0 {
            self.time_span / total
        } else {
            0.0
        };
        let mut t = 0.0;
        let mut times: Vec<f64> = gaps
            .into_iter()
            .map(|g| {
                t += g * scale;
                t
            })
            .collect();
        if let Some(levels) = self.granularity_levels {
            let levels = levels.max(1) as f64;
            for t in &mut times {
                // Snap to one of `levels` coarse ticks (yearly granularity).
                *t = (*t / self.time_span * levels).floor().min(levels - 1.0)
                    * (self.time_span / levels);
            }
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        times
    }

    fn generate_edge_features(
        &self,
        events: &[Interaction],
        communities: &[usize],
        rng: &mut SeededRng,
    ) -> Matrix {
        let c = self.communities.max(1);
        // One pattern vector per (src community, dst community) pair.
        let patterns = init::randn(c * c, self.edge_dim, 1.0, rng);
        let mut feats = Matrix::zeros(events.len(), self.edge_dim);
        let period = self.time_span / 8.0;
        for (r, ev) in events.iter().enumerate() {
            let pair = communities[ev.src] * c + communities[ev.dst];
            let phase = if period > 0.0 {
                ((ev.t / period) * std::f64::consts::TAU).sin() as f32
            } else {
                0.0
            };
            let row = feats.row_mut(r);
            for (d, val) in row.iter_mut().enumerate() {
                let noise = self.feature_noise * init::standard_normal(rng);
                let periodic = if d % 3 == 0 { 0.3 * phase } else { 0.0 };
                *val = patterns.get(pair, d) + periodic + noise;
            }
        }
        feats
    }

    /// Hidden-state label process: each source node carries a decayed risk
    /// accumulated from a secret projection of its edge features; the rarest
    /// quantiles become the rare classes (bans / dropouts / fraud tiers).
    fn generate_labels(
        &self,
        cfg: &LabelGenConfig,
        events: &[Interaction],
        edge_features: &Matrix,
        rng: &mut SeededRng,
    ) -> EventLabels {
        assert!(cfg.num_classes >= 2, "need at least 2 classes");
        let secret = init::randn(1, self.edge_dim, 1.0, rng);
        let mut risk = vec![0.0f64; self.total_nodes()];
        let mut last_t = vec![0.0f64; self.total_nodes()];
        let mut scores = Vec::with_capacity(events.len());
        for ev in events {
            let dt = (ev.t - last_t[ev.src]).max(0.0);
            risk[ev.src] *= (-cfg.decay * dt).exp();
            let contrib: f32 = edge_features
                .row(ev.feat_idx)
                .iter()
                .zip(secret.row(0))
                .map(|(&e, &w)| e * w)
                .sum();
            risk[ev.src] += contrib as f64;
            last_t[ev.src] = ev.t;
            scores.push(risk[ev.src]);
        }
        // Thresholds from score quantiles to hit the target class rates.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rare = cfg.num_classes - 1;
        let mut thresholds = Vec::with_capacity(rare);
        for k in 0..rare {
            let frac = 1.0 - cfg.rare_rate * (rare - k) as f64;
            let idx = ((sorted.len() as f64 * frac) as usize).min(sorted.len() - 1);
            thresholds.push(sorted[idx]);
        }
        let labels = scores
            .iter()
            .map(|&s| {
                let mut class = 0u32;
                for (k, &th) in thresholds.iter().enumerate() {
                    if s >= th {
                        class = (k + 1) as u32;
                    }
                }
                class
            })
            .collect();
        EventLabels {
            labels,
            num_classes: cfg.num_classes,
        }
    }
}

// ---------------------------------------------------------------------------
// Diagnostic workloads (T-GRAB style)
// ---------------------------------------------------------------------------

/// Which isolated temporal-reasoning skill a diagnostic stream probes.
///
/// Unlike the organic [`GeneratorConfig`] streams, each diagnostic stream is
/// built around exactly ONE deterministic temporal rule, so a model's
/// filtered-negative ranking on it measures that skill in isolation
/// (the T-GRAB methodology): a model that has the skill can rank the true
/// destination above every negative; one that lacks it cannot beat the
/// distractor pool no matter how well it fits static structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagnosticSkill {
    /// **Periodicity**: time is divided into equal steps and each user's
    /// destination is a fixed per-phase partner, `partner[u][step % cycle]`.
    /// Predicting the next edge requires decoding the phase from the
    /// timestamp — pure recurrence (EdgeBank) sees `cycle` equally-frequent
    /// partners and cannot tell which one is due *now*.
    Periodicity { cycle: usize },
    /// **Delayed cause–effect**: a cause edge `(u, trigger_i)` schedules the
    /// effect edge `(u, effect_i)` exactly `lag` events later. Predicting
    /// effects requires holding the pending cause in memory across the lag
    /// window; models whose receptive field is shorter than `lag` reduce to
    /// guessing.
    DelayedEffect { lag: usize },
    /// **Long-range memory**: each user meets its `home` item in a short
    /// prologue, then a long distractor phase buries that edge, and the
    /// final segment (the chronological test window) replays exactly the
    /// home edges. Ranking home above the recently-seen distractors requires
    /// memory over the whole stream; recency-biased models fail.
    LongRangeMemory,
}

impl DiagnosticSkill {
    pub fn name(&self) -> &'static str {
        match self {
            DiagnosticSkill::Periodicity { .. } => "periodicity",
            DiagnosticSkill::DelayedEffect { .. } => "delayed-effect",
            DiagnosticSkill::LongRangeMemory => "long-range-memory",
        }
    }
}

/// Configuration of one diagnostic stream.
#[derive(Clone, Debug)]
pub struct DiagnosticConfig {
    pub name: String,
    pub skill: DiagnosticSkill,
    pub num_users: usize,
    pub num_items: usize,
    pub num_edges: usize,
    pub node_dim: usize,
    pub edge_dim: usize,
    pub time_span: f64,
    /// Std-dev of the (uninformative) edge-feature noise. The features carry
    /// no signal by construction — the temporal rule is the only signal.
    pub feature_noise: f32,
    pub seed: u64,
}

impl DiagnosticConfig {
    /// Sized preset: `scale` maps the same way as the dataset presets
    /// (events ≈ 200k·scale, clamped to a tractable diagnostic range).
    pub fn preset(skill: DiagnosticSkill, scale: f64, seed: u64) -> Self {
        let num_edges = ((200_000.0 * scale) as usize).clamp(1_200, 20_000);
        DiagnosticConfig {
            name: format!("diag-{}", skill.name()),
            skill,
            num_users: 40,
            num_items: 60,
            num_edges,
            node_dim: 16,
            edge_dim: 8,
            time_span: 1000.0,
            feature_noise: 0.1,
            seed,
        }
    }

    /// The three-skill suite at one scale (periodicity cycle 4, lag 40).
    pub fn suite(scale: f64, seed: u64) -> Vec<DiagnosticConfig> {
        vec![
            Self::preset(DiagnosticSkill::Periodicity { cycle: 4 }, scale, seed),
            Self::preset(DiagnosticSkill::DelayedEffect { lag: 40 }, scale, seed),
            Self::preset(DiagnosticSkill::LongRangeMemory, scale, seed),
        ]
    }

    /// Generate the diagnostic stream.
    pub fn generate(&self) -> TemporalGraph {
        assert!(self.num_users >= 2 && self.num_items >= 4);
        assert!(self.num_edges >= 16);
        let mut rng = init::rng(self.seed ^ 0xd1a6);
        let n = self.num_users + self.num_items;
        let item = |i: usize| self.num_users + i; // global id of item i

        let pairs: Vec<(usize, usize)> = match self.skill {
            DiagnosticSkill::Periodicity { cycle } => {
                let cycle = cycle.max(2);
                // Fixed per-(user, phase) partner table; partners within one
                // user's row are distinct so the phases are distinguishable.
                let partners: Vec<Vec<usize>> = (0..self.num_users)
                    .map(|_| {
                        let mut row = Vec::with_capacity(cycle);
                        while row.len() < cycle {
                            let cand = item(rng.gen_range(0..self.num_items));
                            if !row.contains(&cand) {
                                row.push(cand);
                            }
                        }
                        row
                    })
                    .collect();
                // One phase step per `num_users` events: every timestamp
                // region maps to one phase, so time alone determines the
                // active partner set.
                let step_len = self.num_users.max(1);
                (0..self.num_edges)
                    .map(|e| {
                        let phase = (e / step_len) % cycle;
                        let u = rng.gen_range(0..self.num_users);
                        (u, partners[u][phase])
                    })
                    .collect()
            }
            DiagnosticSkill::DelayedEffect { lag } => {
                let lag = lag.max(1);
                // Triggers are the first half of the item range, effects the
                // second half, paired index-to-index: trigger i → effect i.
                let half = self.num_items / 2;
                let mut pending: std::collections::VecDeque<(usize, usize, usize)> =
                    std::collections::VecDeque::new(); // (due_idx, user, effect)
                (0..self.num_edges)
                    .map(|e| {
                        if let Some(&(due, u, eff)) = pending.front() {
                            if due <= e {
                                pending.pop_front();
                                return (u, eff);
                            }
                        }
                        let u = rng.gen_range(0..self.num_users);
                        let trig = rng.gen_range(0..half);
                        pending.push_back((e + lag, u, item(half + trig)));
                        (u, item(trig))
                    })
                    .collect()
            }
            DiagnosticSkill::LongRangeMemory => {
                // Home items are a reserved prefix of the item range; the
                // distractor phase only touches the remaining items, so the
                // final replay cannot be answered from recent history.
                let homes: Vec<usize> = (0..self.num_users)
                    .map(|_| item(rng.gen_range(0..self.num_items / 4)))
                    .collect();
                let prologue = self.num_edges / 10;
                assert!(prologue >= self.num_users, "prologue must cover all users");
                let replay = self.num_edges * 85 / 100; // start of final 15%
                (0..self.num_edges)
                    .map(|e| {
                        if e < prologue {
                            // Round-robin so every user's home is established
                            // before the distractor phase buries it.
                            let u = e % self.num_users;
                            return (u, homes[u]);
                        }
                        let u = rng.gen_range(0..self.num_users);
                        if e >= replay {
                            (u, homes[u])
                        } else {
                            let d = rng.gen_range(self.num_items / 4..self.num_items);
                            (u, item(d))
                        }
                    })
                    .collect()
            }
        };

        // Evenly spaced strictly-increasing timestamps: the temporal rule is
        // a function of time, and no quantile boundary can degenerate.
        let dt = self.time_span / self.num_edges as f64;
        let events: Vec<Interaction> = pairs
            .iter()
            .enumerate()
            .map(|(r, &(src, dst))| Interaction {
                src,
                dst,
                t: (r + 1) as f64 * dt,
                feat_idx: r,
            })
            .collect();

        // Pure-noise edge features: the only signal is the temporal rule.
        let edge_features = init::randn(events.len(), self.edge_dim, self.feature_noise, &mut rng);

        let graph = TemporalGraph {
            name: self.name.clone(),
            bipartite: true,
            num_nodes: n,
            num_users: self.num_users,
            events,
            edge_features,
            node_features: FeatureInit::default_random().build(n, self.node_dim),
            labels: None,
        };
        debug_assert_eq!(graph.validate(), Ok(()));
        graph
    }
}

/// Round-robin community assignment shuffled by the RNG so communities are
/// size-balanced but node ids uninformative.
fn assign_communities(n: usize, c: usize, rng: &mut SeededRng) -> Vec<usize> {
    let mut comm: Vec<usize> = (0..n).map(|i| i % c).collect();
    // Fisher–Yates
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        comm.swap(i, j);
    }
    comm
}

/// Zipf-weighted node sampler with per-community sub-samplers.
struct WeightedNodeSampler {
    nodes: Vec<usize>,
    cumulative: Vec<f64>,
    by_community: Vec<(Vec<usize>, Vec<f64>)>,
}

impl WeightedNodeSampler {
    fn new(
        range: std::ops::Range<usize>,
        communities: &[usize],
        zipf: f64,
        rng: &mut SeededRng,
    ) -> Self {
        let nodes: Vec<usize> = range.collect();
        // Random rank per node so "popular" nodes are seed-dependent.
        let mut ranks: Vec<usize> = (0..nodes.len()).collect();
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }
        let weights: Vec<f64> = ranks
            .iter()
            .map(|&r| 1.0 / ((r + 1) as f64).powf(zipf))
            .collect();
        let ncomm = communities.iter().copied().max().unwrap_or(0) + 1;
        let mut by_community: Vec<(Vec<usize>, Vec<f64>)> = vec![(vec![], vec![]); ncomm];
        for (k, &node) in nodes.iter().enumerate() {
            let (ns, ws) = &mut by_community[communities[node]];
            ns.push(node);
            let prev = ws.last().copied().unwrap_or(0.0);
            ws.push(prev + weights[k]);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        WeightedNodeSampler {
            nodes,
            cumulative,
            by_community,
        }
    }

    fn sample_any(&self, rng: &mut SeededRng) -> usize {
        let total = *self.cumulative.last().expect("empty sampler");
        let x = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        self.nodes[idx.min(self.nodes.len() - 1)]
    }

    fn sample_in_community(&self, community: usize, rng: &mut SeededRng) -> Option<usize> {
        let (ns, ws) = self.by_community.get(community)?;
        let total = *ws.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = rng.gen_range(0.0..total);
        let idx = ws.partition_point(|&c| c <= x);
        Some(ns[idx.min(ns.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graph_is_valid_and_sized() {
        let g = GeneratorConfig::small("t", 1).generate();
        assert_eq!(g.validate(), Ok(()));
        assert_eq!(g.num_events(), 1500);
        assert_eq!(g.num_nodes, 100);
        assert_eq!(g.num_users, 60);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GeneratorConfig::small("t", 7).generate();
        let b = GeneratorConfig::small("t", 7).generate();
        assert_eq!(a.events, b.events);
        assert_eq!(a.edge_features, b.edge_features);
        let c = GeneratorConfig::small("t", 8).generate();
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn recurrence_produces_repeated_edges() {
        let mut cfg = GeneratorConfig::small("t", 3);
        cfg.recurrence = 0.8;
        let g = cfg.generate();
        let mut set = std::collections::HashSet::new();
        for ev in &g.events {
            set.insert((ev.src, ev.dst));
        }
        // With 80% recurrence, distinct edges ≪ events.
        assert!(set.len() < g.num_events() / 2, "{} distinct", set.len());
    }

    #[test]
    fn zero_recurrence_spreads_edges() {
        let distinct = |recurrence: f64| {
            let mut cfg = GeneratorConfig::small("t", 3);
            cfg.recurrence = recurrence;
            let g = cfg.generate();
            g.events
                .iter()
                .map(|ev| (ev.src, ev.dst))
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        // A recurrence-free stream covers far more distinct pairs than a
        // heavily recurrent one drawn from the same config.
        let (zero, heavy) = (distinct(0.0), distinct(0.8));
        assert!(zero > 2 * heavy, "{zero} distinct at 0.0 vs {heavy} at 0.8");
    }

    #[test]
    fn granularity_quantizes_timestamps() {
        let mut cfg = GeneratorConfig::small("t", 5);
        cfg.granularity_levels = Some(14); // CanParl: yearly ticks
        let g = cfg.generate();
        let mut distinct: Vec<f64> = g.events.iter().map(|e| e.t).collect();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        assert!(
            distinct.len() <= 14,
            "{} distinct timestamps",
            distinct.len()
        );
    }

    #[test]
    fn homogeneous_graph_has_no_self_loops() {
        let mut cfg = GeneratorConfig::small("t", 9);
        cfg.bipartite = false;
        cfg.num_users = 50;
        let g = cfg.generate();
        assert_eq!(g.validate(), Ok(()));
        assert!(g.events.iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn binary_labels_hit_target_rate() {
        let mut cfg = GeneratorConfig::small("t", 11);
        cfg.num_edges = 5000;
        cfg.label = Some(LabelGenConfig::binary(0.1));
        let g = cfg.generate();
        let rates = g.labels.unwrap().class_rates();
        assert!((rates[1] - 0.1).abs() < 0.03, "positive rate {}", rates[1]);
    }

    #[test]
    fn multiclass_labels_cover_all_classes() {
        let mut cfg = GeneratorConfig::small("t", 13);
        cfg.num_edges = 4000;
        cfg.label = Some(LabelGenConfig {
            num_classes: 4,
            rare_rate: 0.08,
            decay: 0.05,
        });
        let g = cfg.generate();
        let labels = g.labels.unwrap();
        let rates = labels.class_rates();
        assert_eq!(rates.len(), 4);
        assert!(rates.iter().all(|&r| r > 0.0), "empty class: {rates:?}");
    }

    #[test]
    fn community_affinity_concentrates_edges() {
        // High-affinity config: most fresh edges stay in-community. We can't
        // observe communities directly, but affinity + recurrence means the
        // bipartite graph is far from a random bipartite graph: measure via
        // repeat-neighbor concentration per user.
        let mut hi = GeneratorConfig::small("t", 17);
        hi.affinity = 0.95;
        hi.recurrence = 0.0;
        let mut lo = hi.clone();
        lo.affinity = 0.0;
        let conc = |g: &TemporalGraph| {
            let mut per_user: Vec<std::collections::HashSet<usize>> =
                vec![Default::default(); g.num_users];
            for ev in &g.events {
                per_user[ev.src].insert(ev.dst);
            }
            let used: Vec<_> = per_user.iter().filter(|s| !s.is_empty()).collect();
            used.iter().map(|s| s.len()).sum::<usize>() as f64 / used.len() as f64
        };
        // In-community edges restrict the candidate item pool → fewer
        // distinct partners per user.
        assert!(conc(&hi.generate()) < conc(&lo.generate()));
    }

    #[test]
    fn timestamps_span_the_configured_range() {
        let g = GeneratorConfig::small("t", 19).generate();
        let (lo, hi) = g.time_span();
        assert!(lo >= 0.0);
        assert!(hi <= 1000.0 + 1e-6);
        assert!(hi > 500.0, "stream should fill most of the span, got {hi}");
    }

    // --- diagnostic workloads ------------------------------------------------

    #[test]
    fn diagnostic_streams_are_valid_and_deterministic() {
        for skill in [
            DiagnosticSkill::Periodicity { cycle: 4 },
            DiagnosticSkill::DelayedEffect { lag: 40 },
            DiagnosticSkill::LongRangeMemory,
        ] {
            let cfg = DiagnosticConfig::preset(skill, 0.01, 5);
            let a = cfg.generate();
            let b = cfg.generate();
            assert_eq!(a.validate(), Ok(()), "{} invalid", skill.name());
            assert_eq!(a.events, b.events, "{} nondeterministic", skill.name());
            assert_eq!(a.edge_features, b.edge_features);
            let other = DiagnosticConfig {
                seed: 6,
                ..cfg.clone()
            }
            .generate();
            assert_ne!(a.events, other.events, "{} ignores seed", skill.name());
        }
    }

    #[test]
    fn periodicity_destination_is_a_function_of_user_and_phase() {
        let cycle = 4;
        let cfg = DiagnosticConfig::preset(DiagnosticSkill::Periodicity { cycle }, 0.01, 9);
        let g = cfg.generate();
        // Recover the partner table from the stream: within one (user, phase)
        // cell every destination must be identical, and each user's partners
        // must differ across phases (otherwise the phase carries no signal).
        let step_len = cfg.num_users;
        let mut table: std::collections::HashMap<(usize, usize), usize> = Default::default();
        for (e, ev) in g.events.iter().enumerate() {
            let phase = (e / step_len) % cycle;
            let prev = table.insert((ev.src, phase), ev.dst);
            if let Some(p) = prev {
                assert_eq!(p, ev.dst, "user {} phase {phase} not periodic", ev.src);
            }
        }
        let multi_phase_users = (0..cfg.num_users)
            .filter(|&u| {
                let partners: std::collections::HashSet<_> =
                    (0..cycle).filter_map(|p| table.get(&(u, p))).collect();
                partners.len() > 1
            })
            .count();
        assert!(
            multi_phase_users > cfg.num_users / 2,
            "only {multi_phase_users} users have phase-dependent partners"
        );
    }

    #[test]
    fn delayed_effect_follows_every_cause_after_the_lag() {
        let lag = 40;
        let cfg = DiagnosticConfig::preset(DiagnosticSkill::DelayedEffect { lag }, 0.01, 21);
        let g = cfg.generate();
        let half = cfg.num_items / 2;
        let is_cause = |d: usize| d < cfg.num_users + half;
        let effect_of = |d: usize| d + half;
        let mut effects = 0usize;
        for (e, ev) in g.events.iter().enumerate() {
            if !is_cause(ev.dst) {
                continue;
            }
            // The scheduled effect fires at e+lag, or slightly later when
            // several effects queue up; it must appear within 2×lag.
            let want = (ev.src, effect_of(ev.dst));
            let fired = g.events[(e + lag).min(g.events.len())..(e + 2 * lag).min(g.events.len())]
                .iter()
                .any(|f| (f.src, f.dst) == want);
            if e + 2 * lag <= g.events.len() {
                assert!(fired, "cause at {e} ({want:?}) never took effect");
                effects += 1;
            }
        }
        assert!(effects > 100, "only {effects} cause edges checked");
    }

    #[test]
    fn long_range_memory_replays_the_prologue_homes() {
        let cfg = DiagnosticConfig::preset(DiagnosticSkill::LongRangeMemory, 0.01, 33);
        let g = cfg.generate();
        let n = g.events.len();
        let (prologue, replay) = (n / 10, n * 85 / 100);
        // Home table from the prologue…
        let mut home: std::collections::BTreeMap<usize, usize> = Default::default();
        for ev in &g.events[..prologue] {
            let prev = home.insert(ev.src, ev.dst);
            if let Some(p) = prev {
                assert_eq!(p, ev.dst, "user {} has two homes", ev.src);
            }
        }
        // …the distractor phase never touches a home item…
        let home_items: std::collections::BTreeSet<_> = home.values().copied().collect();
        for ev in &g.events[prologue..replay] {
            assert!(
                !home_items.contains(&ev.dst),
                "distractor phase leaked home item {}",
                ev.dst
            );
        }
        // …and the replay tail is exactly the home edges again.
        for ev in &g.events[replay..] {
            assert_eq!(
                home.get(&ev.src),
                Some(&ev.dst),
                "replay of user {} is not its home",
                ev.src
            );
        }
        // The replay tail lands inside the chronological test split (last
        // 15% of time = last 15% of evenly spaced events).
        assert!(n - replay > 100, "replay tail too small: {}", n - replay);
    }

    #[test]
    fn diagnostic_suite_covers_all_three_skills() {
        let suite = DiagnosticConfig::suite(0.01, 1);
        let names: Vec<_> = suite.iter().map(|c| c.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "diag-periodicity",
                "diag-delayed-effect",
                "diag-long-range-memory"
            ]
        );
        for cfg in &suite {
            assert_eq!(cfg.generate().validate(), Ok(()));
        }
    }
}
