//! Snapshot discretization: the early-works view of temporal graphs the
//! paper contrasts against (§5: "treat the temporal graph as a sequence of
//! snapshots, encode the snapshots utilizing static GNNs").
//!
//! A [`SnapshotSequence`] slices the interaction stream into equal-width
//! time windows and exposes, per snapshot, a normalized adjacency suitable
//! for mean-aggregation GNN message passing.

use crate::temporal_graph::{Interaction, TemporalGraph};

/// One discrete snapshot: the edges of a time window.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub t_start: f64,
    pub t_end: f64,
    /// Event indices (into the original stream) inside the window.
    pub event_idx: Vec<usize>,
    /// Undirected adjacency as (node, neighbor) pairs, deduplicated.
    pub edges: Vec<(usize, usize)>,
}

impl Snapshot {
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Per-node neighbor lists of this snapshot.
    pub fn adjacency(&self, num_nodes: usize) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); num_nodes];
        for &(u, v) in &self.edges {
            adj[u].push(v);
        }
        adj
    }
}

/// A stream sliced into `k` equal-width snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotSequence {
    pub snapshots: Vec<Snapshot>,
}

impl SnapshotSequence {
    /// Slice a full graph (or a prefix) into `k` windows over its time span.
    pub fn build(graph: &TemporalGraph, events: &[Interaction], k: usize) -> Self {
        assert!(k > 0, "need at least one snapshot");
        let (lo, hi) = match (events.first(), events.last()) {
            (Some(a), Some(b)) => (a.t, b.t),
            _ => (0.0, 0.0),
        };
        let width = ((hi - lo) / k as f64).max(f64::MIN_POSITIVE);
        let mut snapshots: Vec<Snapshot> = (0..k)
            .map(|i| Snapshot {
                t_start: lo + i as f64 * width,
                t_end: lo + (i + 1) as f64 * width,
                event_idx: Vec::new(),
                edges: Vec::new(),
            })
            .collect();
        let mut seen: Vec<std::collections::HashSet<(usize, usize)>> = vec![Default::default(); k];
        // Find the position of `events` inside the full stream so event
        // indices refer to the original graph.
        let base = graph
            .events
            .iter()
            .position(|e| std::ptr::eq(e, &events[0]))
            .unwrap_or(0);
        for (offset, ev) in events.iter().enumerate() {
            let bin = (((ev.t - lo) / width) as usize).min(k - 1);
            let snap = &mut snapshots[bin];
            snap.event_idx.push(base + offset);
            if seen[bin].insert((ev.src, ev.dst)) {
                snap.edges.push((ev.src, ev.dst));
                snap.edges.push((ev.dst, ev.src));
            }
        }
        SnapshotSequence { snapshots }
    }

    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshot index covering time `t` (clamped to the range).
    pub fn snapshot_at(&self, t: f64) -> usize {
        let idx = self.snapshots.partition_point(|s| s.t_end <= t);
        idx.min(self.snapshots.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GeneratorConfig;

    #[test]
    fn snapshots_partition_the_stream() {
        let g = GeneratorConfig::small("snap", 601).generate();
        let seq = SnapshotSequence::build(&g, &g.events, 8);
        assert_eq!(seq.len(), 8);
        let total: usize = seq.snapshots.iter().map(|s| s.event_idx.len()).sum();
        assert_eq!(total, g.num_events());
        // Windows are ordered and contiguous.
        for w in seq.snapshots.windows(2) {
            assert!((w[0].t_end - w[1].t_start).abs() < 1e-9);
        }
    }

    #[test]
    fn edges_are_deduplicated_and_symmetric() {
        let g = GeneratorConfig::small("snap2", 602).generate();
        let seq = SnapshotSequence::build(&g, &g.events, 4);
        for s in &seq.snapshots {
            let set: std::collections::HashSet<_> = s.edges.iter().collect();
            assert_eq!(set.len(), s.edges.len(), "duplicated adjacency entries");
            for &(u, v) in &s.edges {
                assert!(set.contains(&(v, u)), "missing reverse edge");
            }
        }
    }

    #[test]
    fn snapshot_at_maps_times_to_windows() {
        let g = GeneratorConfig::small("snap3", 603).generate();
        let seq = SnapshotSequence::build(&g, &g.events, 10);
        let (lo, hi) = g.time_span();
        assert_eq!(seq.snapshot_at(lo), 0);
        assert_eq!(seq.snapshot_at(hi + 1.0), 9);
        let mid = (lo + hi) / 2.0;
        let m = seq.snapshot_at(mid);
        assert!(seq.snapshots[m].t_start <= mid && mid < seq.snapshots[m].t_end + 1e-9);
    }

    #[test]
    fn single_snapshot_holds_everything() {
        let g = GeneratorConfig::small("snap4", 604).generate();
        let seq = SnapshotSequence::build(&g, &g.events, 1);
        assert_eq!(seq.snapshots[0].event_idx.len(), g.num_events());
    }

    #[test]
    fn adjacency_lists_match_edges() {
        let g = GeneratorConfig::small("snap5", 605).generate();
        let seq = SnapshotSequence::build(&g, &g.events, 4);
        let s = &seq.snapshots[0];
        let adj = s.adjacency(g.num_nodes);
        let listed: usize = adj.iter().map(|l| l.len()).sum();
        assert_eq!(listed, s.edges.len());
    }
}
