//! Time-indexed adjacency: the temporal neighbor finder every sampling-based
//! model (TGN, TGAT, CAWN, NeurTW, NAT, TeMP) queries.
//!
//! Interactions are stored per node sorted by time, so "neighbors strictly
//! before `t`" is a binary search. Three sampling strategies are provided:
//! most-recent (TGN default), uniform (TGAT default), and the
//! temporal-biased sampling of NeurTW with the Appendix-C overflow-safe
//! weighting (Eq. 2–3) for large-granularity datasets.

use benchtemp_tensor::init::SeededRng;

use crate::temporal_graph::Interaction;

/// One entry in a node's temporal adjacency list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborEvent {
    pub neighbor: usize,
    pub t: f64,
    /// Index of the originating interaction in the event stream.
    pub event_idx: usize,
}

/// How to pick `k` temporal neighbors from the history before `t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplingStrategy {
    /// The `k` most recent interactions (TGN).
    MostRecent,
    /// Uniform over all prior interactions, with replacement (TGAT).
    Uniform,
    /// Probability ∝ exp(α·(t′−t)) — recency-biased (NeurTW default).
    /// Overflows for large |t′−t|; see [`SamplingStrategy::TemporalSafe`].
    TemporalExp { alpha: f64 },
    /// The overflow-safe piecewise weighting of Appendix C Eq. 2–3:
    /// `W = 1` when t′ = t, else `W = 1/(t−t′)` for history (t′ < t).
    TemporalSafe,
}

/// Sorted temporal adjacency over a (prefix of a) temporal graph.
pub struct NeighborFinder {
    adj: Vec<Vec<NeighborEvent>>,
}

impl NeighborFinder {
    /// Build from an event stream; edges are indexed in both directions
    /// (message passing treats interactions as undirected, as in TGN).
    pub fn from_events(num_nodes: usize, events: &[Interaction]) -> Self {
        let mut adj: Vec<Vec<NeighborEvent>> = vec![Vec::new(); num_nodes];
        for (idx, ev) in events.iter().enumerate() {
            adj[ev.src].push(NeighborEvent {
                neighbor: ev.dst,
                t: ev.t,
                event_idx: idx,
            });
            adj[ev.dst].push(NeighborEvent {
                neighbor: ev.src,
                t: ev.t,
                event_idx: idx,
            });
        }
        // Events arrive time-sorted, so each list is already sorted; assert
        // in debug builds rather than paying a sort.
        #[cfg(debug_assertions)]
        for list in &adj {
            debug_assert!(list.windows(2).all(|w| w[0].t <= w[1].t));
        }
        NeighborFinder { adj }
    }

    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Total interactions a node participates in.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// All interactions of `node` strictly before `t`, time-sorted.
    pub fn before(&self, node: usize, t: f64) -> &[NeighborEvent] {
        let list = &self.adj[node];
        let cut = list.partition_point(|e| e.t < t);
        &list[..cut]
    }

    /// The single most recent interaction strictly before `t`.
    pub fn last_before(&self, node: usize, t: f64) -> Option<NeighborEvent> {
        self.before(node, t).last().copied()
    }

    /// Sample up to `k` temporal neighbors of `node` before `t`. Returns
    /// fewer than `k` (possibly zero) entries when history is short and the
    /// strategy is `MostRecent`; weighted strategies sample with
    /// replacement, matching the reference implementations.
    pub fn sample_before(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
    ) -> Vec<NeighborEvent> {
        let hist = self.before(node, t);
        if hist.is_empty() || k == 0 {
            return Vec::new();
        }
        match strategy {
            SamplingStrategy::MostRecent => hist[hist.len().saturating_sub(k)..].to_vec(),
            SamplingStrategy::Uniform => {
                (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect()
            }
            SamplingStrategy::TemporalExp { alpha } => {
                let weights: Vec<f64> = hist.iter().map(|e| (alpha * (e.t - t)).exp()).collect();
                weighted_sample(hist, &weights, k, rng)
            }
            SamplingStrategy::TemporalSafe => {
                let weights: Vec<f64> = hist
                    .iter()
                    .map(|e| {
                        let d = t - e.t;
                        if d <= 0.0 {
                            1.0
                        } else {
                            1.0 / d
                        }
                    })
                    .collect();
                weighted_sample(hist, &weights, k, rng)
            }
        }
    }

    /// Heap footprint (efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.adj
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<NeighborEvent>())
            .sum::<usize>()
            + self.adj.capacity() * std::mem::size_of::<Vec<NeighborEvent>>()
    }
}

fn weighted_sample(
    hist: &[NeighborEvent],
    weights: &[f64],
    k: usize,
    rng: &mut SeededRng,
) -> Vec<NeighborEvent> {
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += if w.is_finite() { w } else { 0.0 };
        cumulative.push(acc);
    }
    if acc <= 0.0 {
        // Degenerate weights (e.g. exp underflowed everywhere): uniform.
        return (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect();
    }
    (0..k)
        .map(|_| {
            let x = rng.gen_range(0.0..acc);
            let idx = cumulative.partition_point(|&c| c <= x);
            hist[idx.min(hist.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_tensor::init::rng;

    fn events() -> Vec<Interaction> {
        vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 1.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 2.0,
                feat_idx: 1,
            },
            Interaction {
                src: 1,
                dst: 2,
                t: 3.0,
                feat_idx: 2,
            },
            Interaction {
                src: 0,
                dst: 1,
                t: 4.0,
                feat_idx: 3,
            },
        ]
    }

    #[test]
    fn before_is_strict_and_sorted() {
        let nf = NeighborFinder::from_events(3, &events());
        let h = nf.before(0, 4.0);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].neighbor, 1);
        assert_eq!(h[1].neighbor, 2);
        // strictness: the t=4.0 event is excluded at t=4.0
        assert_eq!(nf.before(0, 4.5).len(), 3);
        assert_eq!(nf.before(0, 1.0).len(), 0);
    }

    #[test]
    fn both_directions_indexed() {
        let nf = NeighborFinder::from_events(3, &events());
        // node 2 appears only as dst but must still have history.
        assert_eq!(nf.degree(2), 2);
        assert_eq!(nf.before(2, 10.0)[0].neighbor, 0);
    }

    #[test]
    fn most_recent_takes_tail() {
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(0, 10.0, 2, SamplingStrategy::MostRecent, &mut r);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].t, 2.0);
        assert_eq!(s[1].t, 4.0);
    }

    #[test]
    fn uniform_fills_k_with_replacement() {
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(0, 10.0, 8, SamplingStrategy::Uniform, &mut r);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|e| e.t < 10.0));
    }

    #[test]
    fn empty_history_returns_empty() {
        let nf = NeighborFinder::from_events(4, &events());
        let mut r = rng(1);
        assert!(nf
            .sample_before(3, 10.0, 4, SamplingStrategy::Uniform, &mut r)
            .is_empty());
    }

    #[test]
    fn temporal_exp_prefers_recent() {
        // Node 0 history at t ∈ {1, 2, 4}; strong recency bias should pick
        // t = 4 nearly always.
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(
            0,
            5.0,
            200,
            SamplingStrategy::TemporalExp { alpha: 5.0 },
            &mut r,
        );
        let recent = s.iter().filter(|e| e.t == 4.0).count();
        assert!(recent > 180, "only {recent}/200 picked the recent event");
    }

    #[test]
    fn temporal_exp_underflow_falls_back_to_uniform() {
        // Huge time gaps: exp(α·(t′−t)) underflows to 0 for every candidate
        // (the overflow/underflow problem Appendix C fixes). Sampling must
        // still return k entries.
        let evs = vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 0.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 1.0,
                feat_idx: 1,
            },
        ];
        let nf = NeighborFinder::from_events(3, &evs);
        let mut r = rng(1);
        let s = nf.sample_before(
            0,
            1.0e9,
            10,
            SamplingStrategy::TemporalExp { alpha: 1.0 },
            &mut r,
        );
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn temporal_safe_handles_large_granularity() {
        // Same huge gaps: the safe weighting still prefers the more recent
        // event but never under/overflows.
        let evs = vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 0.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 9.0e8,
                feat_idx: 1,
            },
        ];
        let nf = NeighborFinder::from_events(3, &evs);
        let mut r = rng(1);
        let s = nf.sample_before(0, 1.0e9, 300, SamplingStrategy::TemporalSafe, &mut r);
        let recent = s.iter().filter(|e| e.t > 0.0).count();
        assert!(
            recent > 250,
            "safe weighting should prefer recent: {recent}/300"
        );
    }

    #[test]
    fn matches_naive_scan() {
        let g = crate::generators::GeneratorConfig::small("nf", 5).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        for &t in &[0.0, 123.4, 500.0, 1500.0] {
            for node in 0..g.num_nodes.min(20) {
                let naive: Vec<usize> = g
                    .events
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.t < t && (e.src == node || e.dst == node))
                    .map(|(i, _)| i)
                    .collect();
                let fast: Vec<usize> = nf.before(node, t).iter().map(|e| e.event_idx).collect();
                assert_eq!(naive, fast, "node {node} t {t}");
            }
        }
    }
}
