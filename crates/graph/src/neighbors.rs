//! Time-indexed adjacency: the temporal neighbor finder every sampling-based
//! model (TGN, TGAT, CAWN, NeurTW, NAT, TeMP) queries.
//!
//! The adjacency is stored in CSR form — an `offsets` array plus three
//! contiguous structure-of-arrays columns (`neighbor`, `ts`, `event_idx`) —
//! so a node's history is a pair of slice bounds instead of a per-node heap
//! allocation, and "neighbors strictly before `t`" is one binary search over
//! a dense `f64` column. Three sampling strategies are provided: most-recent
//! (TGN default), uniform (TGAT default), and the temporal-biased sampling
//! of NeurTW with the Appendix-C overflow-safe weighting (Eq. 2–3) for
//! large-granularity datasets.
//!
//! Query paths, from narrowest to widest:
//!
//! * [`NeighborFinder::before`] — borrowed [`NeighborSlice`] view, no copy;
//! * [`NeighborFinder::sample_one`] — scalar fast path for walk hops;
//!   allocation-free given a caller-owned [`SampleScratch`];
//! * [`NeighborFinder::sample_into`] — `k` samples into a caller buffer,
//!   allocation-free after warm-up;
//! * [`NeighborFinder::sample_before`] — compat shim returning a fresh
//!   `Vec` (the pre-CSR API, kept so existing call sites compile);
//! * [`NeighborFinder::sample_frontier`] — batched multi-hop expansion of a
//!   whole (node, t) root batch into flat per-hop arrays, fanned out over
//!   the `benchtemp_tensor::pool` workers with one deterministic RNG stream
//!   per *root index* (never per thread), so results are bit-identical at
//!   any thread count.

// audit-allow-file(hot-path-alloc-reachability): finder construction (`vec!` CSR
// columns) and the parallel frontier dispatch (per-task views, boxed closures)
// allocate by design; the counting-allocator pins cover the steady-state
// sequential sample_into/sample_one path, which writes into caller buffers.

use benchtemp_tensor::init::SeededRng;
use benchtemp_tensor::pool::pool;

use crate::temporal_graph::Interaction;

/// One entry in a node's temporal adjacency list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NeighborEvent {
    pub neighbor: usize,
    pub t: f64,
    /// Index of the originating interaction in the event stream.
    pub event_idx: usize,
}

/// How to pick `k` temporal neighbors from the history before `t`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SamplingStrategy {
    /// The `k` most recent interactions (TGN).
    MostRecent,
    /// Uniform over all prior interactions, with replacement (TGAT).
    Uniform,
    /// Probability ∝ exp(α·(t′−t)) — recency-biased (NeurTW default).
    /// Overflows for large |t′−t|; see [`SamplingStrategy::TemporalSafe`].
    TemporalExp { alpha: f64 },
    /// The overflow-safe piecewise weighting of Appendix C Eq. 2–3:
    /// `W = 1` when t′ = t, else `W = 1/(t−t′)` for history (t′ < t).
    TemporalSafe,
}

/// A borrowed, time-sorted window of one node's temporal adjacency.
///
/// Columns are SoA slices into the CSR arrays; `get` materialises a
/// [`NeighborEvent`] on the fly, so iterating yields values, not references.
#[derive(Clone, Copy)]
pub struct NeighborSlice<'a> {
    neighbor: &'a [u32],
    ts: &'a [f64],
    event_idx: &'a [u32],
}

impl<'a> NeighborSlice<'a> {
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Materialise entry `i` (panics when out of bounds).
    #[inline]
    pub fn get(&self, i: usize) -> NeighborEvent {
        NeighborEvent {
            neighbor: self.neighbor[i] as usize,
            t: self.ts[i],
            event_idx: self.event_idx[i] as usize,
        }
    }

    /// The most recent entry of the window.
    pub fn last(&self) -> Option<NeighborEvent> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(self.len() - 1))
        }
    }

    /// The raw timestamp column (sorted ascending).
    #[inline]
    pub fn ts(&self) -> &'a [f64] {
        self.ts
    }

    /// The raw neighbor-id column.
    #[inline]
    pub fn neighbor_ids(&self) -> &'a [u32] {
        self.neighbor
    }

    /// The raw event-index column.
    #[inline]
    pub fn event_indices(&self) -> &'a [u32] {
        self.event_idx
    }

    /// Iterate entries by value, oldest first.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = NeighborEvent> + ExactSizeIterator + 'a {
        let s = *self;
        (0..s.len()).map(move |i| s.get(i))
    }
}

/// Reusable per-caller buffers so the weighted strategies never allocate on
/// the query path: the cumulative-weight column lives here and is resized
/// once to the longest history seen, then reused.
#[derive(Default)]
pub struct SampleScratch {
    cum: Vec<f64>,
}

/// Reusable SoA buffers a paged backend materialises one node's history
/// window into before sampling. The resident backend never touches it
/// (its windows are borrowed CSR slices), so sharing one scratch type
/// keeps both backends behind the same API without costing the resident
/// path anything.
#[derive(Default)]
pub struct HistoryScratch {
    pub(crate) neighbor: Vec<u32>,
    pub(crate) ts: Vec<f64>,
    pub(crate) event_idx: Vec<u32>,
}

impl HistoryScratch {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn clear(&mut self) {
        self.neighbor.clear();
        self.ts.clear();
        self.event_idx.clear();
    }

    /// View the materialised window as a [`NeighborSlice`] — the exact
    /// type the shared sampling kernels consume, so the paged path runs
    /// the same code on the same bytes as the resident path.
    pub(crate) fn as_slice(&self) -> NeighborSlice<'_> {
        NeighborSlice {
            neighbor: &self.neighbor,
            ts: &self.ts,
            event_idx: &self.event_idx,
        }
    }

    /// Heap footprint (efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.neighbor.capacity() * 4 + self.ts.capacity() * 8 + self.event_idx.capacity() * 4
    }
}

/// Combined per-caller scratch for backend-agnostic sampling: the
/// weighted cumulative column plus (paged backend only) the history
/// window buffer.
#[derive(Default)]
pub struct BackendScratch {
    pub sample: SampleScratch,
    pub history: HistoryScratch,
}

impl BackendScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

impl SampleScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fill the cumulative column with running sums of `weight(ts[i])` and
    /// return the total. Accumulation order (and therefore every f64 bit)
    /// matches the pre-CSR implementation: non-finite weights count as 0.
    ///
    /// Two passes: raw weights first (no serial dependency, so
    /// division-based strategies auto-vectorize over the dense `ts`
    /// column), then an in-place prefix sum in the seed sampler's exact
    /// accumulation order.
    fn fill_cum<W: Fn(f64) -> f64>(&mut self, ts: &[f64], weight: W) -> f64 {
        self.cum.resize(ts.len(), 0.0);
        for (c, &x) in self.cum.iter_mut().zip(ts) {
            *c = weight(x);
        }
        let mut acc = 0.0;
        for c in &mut self.cum {
            let w = *c;
            acc += if w.is_finite() { w } else { 0.0 };
            *c = acc;
        }
        acc
    }
}

/// Sorted temporal adjacency over a (prefix of a) temporal graph, in CSR
/// layout: node `v`'s history is columns `offsets[v]..offsets[v+1]`.
pub struct NeighborFinder {
    offsets: Vec<usize>,
    neighbor: Vec<u32>,
    ts: Vec<f64>,
    event_idx: Vec<u32>,
    /// Edge-feature row of each event (indexed by event idx): frontier
    /// expansion resolves sampled slots to feature rows inline, so model
    /// code gathers edge features straight off the hop's SoA column
    /// instead of chasing `events[e].feat_idx` per slot.
    event_feat: Vec<u32>,
}

/// Slot threshold below which `sample_frontier` skips pool dispatch and
/// expands inline — small batches never pay queue traffic.
const FRONTIER_PAR_SLOTS: usize = 4096;

/// The RNG stream seed for root index `root` of a frontier expansion with
/// base seed `seed`. Derived from the root *index* (golden-ratio stride,
/// then stretched through `seed_from_u64`'s SplitMix64), never from a
/// thread id — this is the bit-identical-at-any-thread-count contract, and
/// it is public so tests can pin it.
#[inline]
pub fn frontier_stream_seed(seed: u64, root: u64) -> u64 {
    seed ^ root.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One hop level of a [`Frontier`]: flat arrays of `roots × k^(level+1)`
/// slots. Slot `j` of parent `p` lives at index `p*k + j`.
pub struct FrontierHop {
    /// Sampled neighbor ids (0 for padded slots).
    pub nodes: Vec<usize>,
    /// Interaction times (the parent's own time for padded slots, so deeper
    /// hops expand padded slots exactly like the recursive code did).
    pub times: Vec<f64>,
    /// Originating event index (0 for padded slots).
    pub event_idx: Vec<usize>,
    /// Edge-feature row of the originating event (0 for padded slots) —
    /// pre-resolved so feature gathers are straight index lists.
    pub feat_idx: Vec<usize>,
    /// `parent_time − sample_time`, clamped at 0 — the Δt fed to time
    /// encoders (0 for padded slots).
    pub dts: Vec<f32>,
    /// Whether the slot holds a real sample.
    pub mask: Vec<bool>,
}

impl FrontierHop {
    fn zeroed(len: usize) -> Self {
        Self {
            nodes: vec![0; len],
            times: vec![0.0; len],
            event_idx: vec![0; len],
            feat_idx: vec![0; len],
            dts: vec![0.0; len],
            mask: vec![false; len],
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Heap bytes held by this hop's six column arrays (capacities, not
    /// lengths — this is what the allocator actually handed out).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<usize>()
            + self.times.capacity() * std::mem::size_of::<f64>()
            + self.event_idx.capacity() * std::mem::size_of::<usize>()
            + self.feat_idx.capacity() * std::mem::size_of::<usize>()
            + self.dts.capacity() * std::mem::size_of::<f32>()
            + self.mask.capacity() * std::mem::size_of::<bool>()
    }
}

/// Result of [`NeighborFinder::sample_frontier`]: one [`FrontierHop`] per
/// level, hop `l` holding `roots × k^(l+1)` slots.
pub struct Frontier {
    pub k: usize,
    pub hops: Vec<FrontierHop>,
}

impl Frontier {
    /// Heap bytes across every hop level (see [`FrontierHop::heap_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.hops.capacity() * std::mem::size_of::<FrontierHop>()
            + self.hops.iter().map(FrontierHop::heap_bytes).sum::<usize>()
    }
}

/// A task-owned window of one hop level's arrays (all six columns split in
/// lockstep), so parallel expansion writes disjoint `&mut` slices.
struct HopChunk<'a> {
    nodes: &'a mut [usize],
    times: &'a mut [f64],
    event_idx: &'a mut [usize],
    feat_idx: &'a mut [usize],
    dts: &'a mut [f32],
    mask: &'a mut [bool],
}

impl NeighborFinder {
    /// Build from an event stream; edges are indexed in both directions
    /// (message passing treats interactions as undirected, as in TGN).
    pub fn from_events(num_nodes: usize, events: &[Interaction]) -> Self {
        assert!(
            num_nodes <= u32::MAX as usize && events.len() <= u32::MAX as usize,
            "CSR columns are u32-indexed"
        );
        let mut degree = vec![0usize; num_nodes];
        for ev in events {
            degree[ev.src] += 1;
            degree[ev.dst] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..num_nodes].to_vec();
        let mut neighbor = vec![0u32; acc];
        let mut ts = vec![0f64; acc];
        let mut event_idx = vec![0u32; acc];
        let mut event_feat = vec![0u32; events.len()];
        // Events arrive time-sorted, so appending in stream order leaves
        // every per-node run sorted; assert in debug builds instead of
        // paying a sort.
        for (idx, ev) in events.iter().enumerate() {
            debug_assert!(
                ev.feat_idx <= u32::MAX as usize,
                "feat rows are u32-indexed"
            );
            event_feat[idx] = ev.feat_idx as u32;
            for (node, other) in [(ev.src, ev.dst), (ev.dst, ev.src)] {
                let c = cursor[node];
                cursor[node] += 1;
                neighbor[c] = other as u32;
                ts[c] = ev.t;
                event_idx[c] = idx as u32;
            }
        }
        #[cfg(debug_assertions)]
        for v in 0..num_nodes {
            let run = &ts[offsets[v]..offsets[v + 1]];
            debug_assert!(run.windows(2).all(|w| w[0] <= w[1]));
        }
        NeighborFinder {
            offsets,
            neighbor,
            ts,
            event_idx,
            event_feat,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total interactions a node participates in.
    pub fn degree(&self, node: usize) -> usize {
        self.offsets[node + 1] - self.offsets[node]
    }

    /// A node's full history, time-sorted.
    pub fn history(&self, node: usize) -> NeighborSlice<'_> {
        let (s, e) = (self.offsets[node], self.offsets[node + 1]);
        NeighborSlice {
            neighbor: &self.neighbor[s..e],
            ts: &self.ts[s..e],
            event_idx: &self.event_idx[s..e],
        }
    }

    /// All interactions of `node` strictly before `t`, time-sorted.
    #[inline]
    pub fn before(&self, node: usize, t: f64) -> NeighborSlice<'_> {
        let (s, e) = (self.offsets[node], self.offsets[node + 1]);
        let ts = &self.ts[s..e];
        let cut = ts.partition_point(|&x| x < t);
        NeighborSlice {
            neighbor: &self.neighbor[s..s + cut],
            ts: &ts[..cut],
            event_idx: &self.event_idx[s..s + cut],
        }
    }

    /// The single most recent interaction strictly before `t`.
    pub fn last_before(&self, node: usize, t: f64) -> Option<NeighborEvent> {
        self.before(node, t).last()
    }

    /// Sample up to `k` temporal neighbors of `node` before `t`. Returns
    /// fewer than `k` (possibly zero) entries when history is short and the
    /// strategy is `MostRecent`; weighted strategies sample with
    /// replacement, matching the reference implementations.
    ///
    /// Compat shim over [`NeighborFinder::sample_into`]; allocates the
    /// returned `Vec` (and, for weighted strategies, a scratch). Hot paths
    /// should hold a [`SampleScratch`] and call `sample_into`/`sample_one`.
    pub fn sample_before(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
    ) -> Vec<NeighborEvent> {
        let mut scratch = SampleScratch::new();
        let mut out = Vec::new();
        self.sample_into(node, t, k, strategy, rng, &mut scratch, &mut out);
        out
    }

    /// Allocation-free sampling: clears `out` and fills it with up to `k`
    /// samples. After warm-up (buffers grown to the largest history/`k`
    /// seen) this performs zero heap allocations per call; RNG consumption
    /// is bit-identical to [`NeighborFinder::sample_before`].
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut SampleScratch,
        out: &mut Vec<NeighborEvent>,
    ) {
        out.clear();
        let hist = self.before(node, t);
        sample_slice_into(hist, t, k, strategy, rng, scratch, out);
    }

    /// Scalar fast path for walk engines: one sample, no output buffer.
    /// RNG consumption is bit-identical to `sample_before(.., k=1, ..)`, so
    /// walks sampled through this path reproduce the pre-CSR streams.
    pub fn sample_one(
        &self,
        node: usize,
        t: f64,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut SampleScratch,
    ) -> Option<NeighborEvent> {
        let hist = self.before(node, t);
        sample_slice_one(hist, t, strategy, rng, scratch)
    }

    /// Batched multi-hop frontier expansion: expand every `(roots[i],
    /// times[i])` root `k`-wide for `hops` levels into flat per-hop arrays.
    ///
    /// Each root owns an independent RNG stream seeded by
    /// [`frontier_stream_seed`]`(seed, root_index)` and is expanded
    /// depth-complete before the next, so the result depends only on
    /// `(roots, times, k, hops, strategy, seed)` — never on thread count or
    /// scheduling. Large batches fan out over the worker pool in contiguous
    /// root ranges; padded slots (short histories) carry the parent's time
    /// and a `false` mask, and are themselves expanded at deeper hops
    /// exactly like the recursive per-node code did.
    pub fn sample_frontier(
        &self,
        roots: &[usize],
        times: &[f64],
        k: usize,
        hops: usize,
        strategy: SamplingStrategy,
        seed: u64,
    ) -> Frontier {
        expand_frontier(self, roots, times, k, hops, strategy, seed)
    }

    /// Heap footprint (efficiency accounting).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbor.capacity() * std::mem::size_of::<u32>()
            + self.ts.capacity() * std::mem::size_of::<f64>()
            + self.event_idx.capacity() * std::mem::size_of::<u32>()
            + self.event_feat.capacity() * std::mem::size_of::<u32>()
    }
}

/// The surface a backend exposes to the shared frontier engine: per-root
/// sampling (identical semantics to `sample_into`) plus the resident
/// event-idx → edge-feature-row map. `Sync` because root ranges fan out
/// over the worker pool sharing `&self`.
pub(crate) trait FrontierBackend: Sync {
    // Mirrors `sample_into`'s full parameter surface on purpose: the shared
    // frontier engine forwards every knob verbatim.
    #[allow(clippy::too_many_arguments)]
    fn backend_sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    );

    fn backend_event_feat(&self) -> &[u32];
}

impl FrontierBackend for NeighborFinder {
    fn backend_sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    ) {
        self.sample_into(node, t, k, strategy, rng, &mut scratch.sample, out);
    }

    fn backend_event_feat(&self) -> &[u32] {
        &self.event_feat
    }
}

/// Batched multi-hop frontier expansion, generic over the backend. One
/// code path serves both the resident CSR and the paged store, so the
/// schedule (per-root RNG streams, depth-complete expansion, lockstep
/// column splits, pool claims) — and therefore every output bit — cannot
/// drift between them.
pub(crate) fn expand_frontier<B: FrontierBackend + ?Sized>(
    backend: &B,
    roots: &[usize],
    times: &[f64],
    k: usize,
    hops: usize,
    strategy: SamplingStrategy,
    seed: u64,
) -> Frontier {
    {
        assert_eq!(roots.len(), times.len(), "roots/times length mismatch");
        let n = roots.len();
        let mut levels = Vec::with_capacity(hops);
        let mut width = 1usize;
        for _ in 0..hops {
            width *= k;
            levels.push(FrontierHop::zeroed(n * width));
        }
        if n == 0 || k == 0 || hops == 0 {
            return Frontier { k, hops: levels };
        }

        let p = pool();
        let total_slots: usize = levels.iter().map(FrontierHop::len).sum();
        benchtemp_obs::counters::FRONTIER_NODES_EXPANDED.add(total_slots as u64);
        let chunk = if p.workers() == 1 || total_slots < FRONTIER_PAR_SLOTS {
            n
        } else {
            n.div_ceil(p.threads()).max(1)
        };
        let n_tasks = n.div_ceil(chunk);

        // Split all six columns of every level into per-task windows in
        // lockstep: task `ti` owns the slots of roots `ti*chunk..` at every
        // hop, so the expansion tasks write disjoint memory.
        let mut views: Vec<Vec<HopChunk<'_>>> =
            (0..n_tasks).map(|_| Vec::with_capacity(hops)).collect();
        let mut width = 1usize;
        for level in levels.iter_mut() {
            width *= k;
            let mut nodes = level.nodes.as_mut_slice();
            let mut ts = level.times.as_mut_slice();
            let mut evs = level.event_idx.as_mut_slice();
            let mut feats = level.feat_idx.as_mut_slice();
            let mut dts = level.dts.as_mut_slice();
            let mut mask = level.mask.as_mut_slice();
            for (ti, view) in views.iter_mut().enumerate() {
                let take = chunk.min(n - ti * chunk) * width;
                let (a, rest) = std::mem::take(&mut nodes).split_at_mut(take);
                nodes = rest;
                let (b, rest) = std::mem::take(&mut ts).split_at_mut(take);
                ts = rest;
                let (c, rest) = std::mem::take(&mut evs).split_at_mut(take);
                evs = rest;
                let (f, rest) = std::mem::take(&mut feats).split_at_mut(take);
                feats = rest;
                let (d, rest) = std::mem::take(&mut dts).split_at_mut(take);
                dts = rest;
                let (e, rest) = std::mem::take(&mut mask).split_at_mut(take);
                mask = rest;
                view.push(HopChunk {
                    nodes: a,
                    times: b,
                    event_idx: c,
                    feat_idx: f,
                    dts: d,
                    mask: e,
                });
            }
        }

        // Sanitizer claims in root units: task `ti` owns roots
        // `ti·chunk ..`, and the lockstep column split above maps disjoint
        // root ranges to disjoint slot memory at every hop.
        let claims: Vec<benchtemp_tensor::sanitize::SlotClaim> =
            if benchtemp_tensor::sanitize::enabled() {
                (0..n_tasks)
                    .map(|ti| (ti, ti * chunk..((ti + 1) * chunk).min(n)))
                    .collect()
            } else {
                Vec::new()
            };
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = views
            .into_iter()
            .enumerate()
            .map(|(ti, mut view)| {
                let start = ti * chunk;
                let end = (start + chunk).min(n);
                let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    expand_root_range(
                        backend,
                        roots,
                        times,
                        start..end,
                        k,
                        strategy,
                        seed,
                        &mut view,
                    );
                });
                task
            })
            .collect();
        p.scope_run_claimed("sample_frontier", &claims, tasks);

        Frontier { k, hops: levels }
    }
}

/// Expand roots `range` depth-complete, one private RNG stream per root.
#[allow(clippy::too_many_arguments)]
fn expand_root_range<B: FrontierBackend + ?Sized>(
    backend: &B,
    roots: &[usize],
    times: &[f64],
    range: std::ops::Range<usize>,
    k: usize,
    strategy: SamplingStrategy,
    seed: u64,
    view: &mut [HopChunk<'_>],
) {
    let mut scratch = BackendScratch::new();
    let mut buf: Vec<NeighborEvent> = Vec::with_capacity(k);
    let start = range.start;
    for r in range {
        let local = r - start;
        let mut rng = SeededRng::seed_from_u64(frontier_stream_seed(seed, r as u64));
        let mut parents = 1usize;
        for l in 0..view.len() {
            let (done, rest) = view.split_at_mut(l);
            let cur = &mut rest[0];
            for j in 0..parents {
                let slot = local * parents + j;
                let (pn, pt) = if l == 0 {
                    (roots[r], times[r])
                } else {
                    let prev = &done[l - 1];
                    (prev.nodes[slot], prev.times[slot])
                };
                backend.backend_sample_into(pn, pt, k, strategy, &mut rng, &mut scratch, &mut buf);
                write_slots(&buf, backend.backend_event_feat(), pt, k, cur, slot * k);
            }
            parents *= k;
        }
    }
}

/// The strategy dispatch of [`NeighborFinder::sample_into`], over an
/// already-cut history window. Both backends funnel through this one
/// function — the resident path with a borrowed CSR slice, the paged path
/// with a scratch-materialised copy of the same bytes — so identical
/// window contents imply identical RNG consumption and identical output
/// bits. That equality *is* the paged backend's bit-identity argument
/// (DESIGN.md §16).
///
/// `hist` must be the full strictly-before-`t` window for the RNG-driven
/// strategies (draw ranges depend on its length); for `MostRecent` (which
/// consumes no randomness) a tail of at least `min(k, window_len)`
/// entries yields the same output.
pub(crate) fn sample_slice_into(
    hist: NeighborSlice<'_>,
    t: f64,
    k: usize,
    strategy: SamplingStrategy,
    rng: &mut SeededRng,
    scratch: &mut SampleScratch,
    out: &mut Vec<NeighborEvent>,
) {
    if hist.is_empty() || k == 0 {
        return;
    }
    match strategy {
        SamplingStrategy::MostRecent => {
            let start = hist.len().saturating_sub(k);
            out.extend((start..hist.len()).map(|i| hist.get(i)));
        }
        SamplingStrategy::Uniform => fill_uniform(hist, k, rng, out),
        SamplingStrategy::TemporalExp { alpha } => {
            let acc = scratch.fill_cum(hist.ts(), |x| (alpha * (x - t)).exp());
            fill_weighted(hist, &scratch.cum, acc, k, rng, out);
        }
        SamplingStrategy::TemporalSafe => {
            let acc = scratch.fill_cum(hist.ts(), |x| safe_weight(t, x));
            fill_weighted(hist, &scratch.cum, acc, k, rng, out);
        }
    }
}

/// Scalar counterpart of [`sample_slice_into`] (k = 1, no output buffer);
/// same backend-sharing contract.
pub(crate) fn sample_slice_one(
    hist: NeighborSlice<'_>,
    t: f64,
    strategy: SamplingStrategy,
    rng: &mut SeededRng,
    scratch: &mut SampleScratch,
) -> Option<NeighborEvent> {
    if hist.is_empty() {
        return None;
    }
    Some(match strategy {
        SamplingStrategy::MostRecent => hist.get(hist.len() - 1),
        SamplingStrategy::Uniform => hist.get(rng.gen_range(0..hist.len())),
        SamplingStrategy::TemporalExp { alpha } => {
            let acc = scratch.fill_cum(hist.ts(), |x| (alpha * (x - t)).exp());
            pick_weighted(hist, &scratch.cum, acc, rng)
        }
        SamplingStrategy::TemporalSafe => {
            let acc = scratch.fill_cum(hist.ts(), |x| safe_weight(t, x));
            pick_weighted(hist, &scratch.cum, acc, rng)
        }
    })
}

/// Appendix-C Eq. 2–3 overflow-safe weight for a history timestamp `x < t`.
#[inline]
fn safe_weight(t: f64, x: f64) -> f64 {
    let d = t - x;
    if d <= 0.0 {
        1.0
    } else {
        1.0 / d
    }
}

/// Uniform with replacement — also the shared fallback for degenerate
/// weighted totals, so both paths stay in lockstep.
#[inline]
fn fill_uniform(
    hist: NeighborSlice<'_>,
    k: usize,
    rng: &mut SeededRng,
    out: &mut Vec<NeighborEvent>,
) {
    out.extend((0..k).map(|_| hist.get(rng.gen_range(0..hist.len()))));
}

/// A weight total too small (zero, negative, subnormal) or non-finite makes
/// `gen_range(0.0..acc)` ill-defined or hopelessly biased toward the last
/// index; treat it as "no usable signal" and sample uniformly instead.
#[inline]
fn weights_degenerate(acc: f64) -> bool {
    !acc.is_finite() || acc < f64::MIN_POSITIVE
}

#[inline]
fn pick_weighted(
    hist: NeighborSlice<'_>,
    cum: &[f64],
    acc: f64,
    rng: &mut SeededRng,
) -> NeighborEvent {
    if weights_degenerate(acc) {
        return hist.get(rng.gen_range(0..hist.len()));
    }
    let x = rng.gen_range(0.0..acc);
    let idx = cum.partition_point(|&c| c <= x);
    hist.get(idx.min(hist.len() - 1))
}

#[inline]
fn fill_weighted(
    hist: NeighborSlice<'_>,
    cum: &[f64],
    acc: f64,
    k: usize,
    rng: &mut SeededRng,
    out: &mut Vec<NeighborEvent>,
) {
    if weights_degenerate(acc) {
        fill_uniform(hist, k, rng, out);
        return;
    }
    out.extend((0..k).map(|_| {
        let x = rng.gen_range(0.0..acc);
        let idx = cum.partition_point(|&c| c <= x);
        hist.get(idx.min(hist.len() - 1))
    }));
}

/// Write one parent's `k` slots: real samples first, then padding carrying
/// the parent's time with a `false` mask. `event_feat` maps event idx →
/// edge-feature row; padded slots resolve to row 0, matching the masked
/// fallback the per-slot model code applied.
fn write_slots(
    samples: &[NeighborEvent],
    event_feat: &[u32],
    parent_t: f64,
    k: usize,
    out: &mut HopChunk<'_>,
    base: usize,
) {
    for (i, ev) in samples.iter().enumerate() {
        let s = base + i;
        out.nodes[s] = ev.neighbor;
        out.times[s] = ev.t;
        out.event_idx[s] = ev.event_idx;
        out.feat_idx[s] = event_feat[ev.event_idx] as usize;
        out.dts[s] = (parent_t - ev.t).max(0.0) as f32;
        out.mask[s] = true;
    }
    for s in (base + samples.len())..(base + k) {
        out.nodes[s] = 0;
        out.times[s] = parent_t;
        out.event_idx[s] = 0;
        out.feat_idx[s] = 0;
        out.dts[s] = 0.0;
        out.mask[s] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_tensor::init::rng;

    fn events() -> Vec<Interaction> {
        vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 1.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 2.0,
                feat_idx: 1,
            },
            Interaction {
                src: 1,
                dst: 2,
                t: 3.0,
                feat_idx: 2,
            },
            Interaction {
                src: 0,
                dst: 1,
                t: 4.0,
                feat_idx: 3,
            },
        ]
    }

    #[test]
    fn before_is_strict_and_sorted() {
        let nf = NeighborFinder::from_events(3, &events());
        let h = nf.before(0, 4.0);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0).neighbor, 1);
        assert_eq!(h.get(1).neighbor, 2);
        // strictness: the t=4.0 event is excluded at t=4.0
        assert_eq!(nf.before(0, 4.5).len(), 3);
        assert_eq!(nf.before(0, 1.0).len(), 0);
    }

    #[test]
    fn both_directions_indexed() {
        let nf = NeighborFinder::from_events(3, &events());
        // node 2 appears only as dst but must still have history.
        assert_eq!(nf.degree(2), 2);
        assert_eq!(nf.before(2, 10.0).get(0).neighbor, 0);
    }

    #[test]
    fn most_recent_takes_tail() {
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(0, 10.0, 2, SamplingStrategy::MostRecent, &mut r);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].t, 2.0);
        assert_eq!(s[1].t, 4.0);
    }

    #[test]
    fn uniform_fills_k_with_replacement() {
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(0, 10.0, 8, SamplingStrategy::Uniform, &mut r);
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|e| e.t < 10.0));
    }

    #[test]
    fn empty_history_returns_empty() {
        let nf = NeighborFinder::from_events(4, &events());
        let mut r = rng(1);
        assert!(nf
            .sample_before(3, 10.0, 4, SamplingStrategy::Uniform, &mut r)
            .is_empty());
    }

    #[test]
    fn temporal_exp_prefers_recent() {
        // Node 0 history at t ∈ {1, 2, 4}; strong recency bias should pick
        // t = 4 nearly always.
        let nf = NeighborFinder::from_events(3, &events());
        let mut r = rng(1);
        let s = nf.sample_before(
            0,
            5.0,
            200,
            SamplingStrategy::TemporalExp { alpha: 5.0 },
            &mut r,
        );
        let recent = s.iter().filter(|e| e.t == 4.0).count();
        assert!(recent > 180, "only {recent}/200 picked the recent event");
    }

    #[test]
    fn temporal_exp_underflow_falls_back_to_uniform() {
        // Huge time gaps: exp(α·(t′−t)) underflows to 0 for every candidate
        // (the overflow/underflow problem Appendix C fixes). Sampling must
        // still return k entries.
        let evs = vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 0.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 1.0,
                feat_idx: 1,
            },
        ];
        let nf = NeighborFinder::from_events(3, &evs);
        let mut r = rng(1);
        let s = nf.sample_before(
            0,
            1.0e9,
            10,
            SamplingStrategy::TemporalExp { alpha: 1.0 },
            &mut r,
        );
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn subnormal_weight_total_falls_back_to_uniform() {
        // A single candidate whose 1/(t−t′) weight is subnormal: the
        // cumulative total is below f64::MIN_POSITIVE, so weighted draws
        // would be ill-defined. The guard must route to the uniform
        // fallback — k entries, no panic, no last-index bias.
        let evs = vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 0.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 1.0,
                feat_idx: 1,
            },
        ];
        let nf = NeighborFinder::from_events(3, &evs);
        let mut r = rng(7);
        let s = nf.sample_before(0, 1.7e308, 400, SamplingStrategy::TemporalSafe, &mut r);
        assert_eq!(s.len(), 400);
        let first = s.iter().filter(|e| e.t == 0.0).count();
        // Uniform fallback: both candidates drawn, neither starved.
        assert!(
            first > 100 && first < 300,
            "fallback should be uniform, got {first}/400 for the first event"
        );
    }

    #[test]
    fn temporal_safe_handles_large_granularity() {
        // Same huge gaps: the safe weighting still prefers the more recent
        // event but never under/overflows.
        let evs = vec![
            Interaction {
                src: 0,
                dst: 1,
                t: 0.0,
                feat_idx: 0,
            },
            Interaction {
                src: 0,
                dst: 2,
                t: 9.0e8,
                feat_idx: 1,
            },
        ];
        let nf = NeighborFinder::from_events(3, &evs);
        let mut r = rng(1);
        let s = nf.sample_before(0, 1.0e9, 300, SamplingStrategy::TemporalSafe, &mut r);
        let recent = s.iter().filter(|e| e.t > 0.0).count();
        assert!(
            recent > 250,
            "safe weighting should prefer recent: {recent}/300"
        );
    }

    #[test]
    fn matches_naive_scan() {
        let g = crate::generators::GeneratorConfig::small("nf", 5).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        for &t in &[0.0, 123.4, 500.0, 1500.0] {
            for node in 0..g.num_nodes.min(20) {
                let naive: Vec<usize> = g
                    .events
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.t < t && (e.src == node || e.dst == node))
                    .map(|(i, _)| i)
                    .collect();
                let fast: Vec<usize> = nf.before(node, t).iter().map(|e| e.event_idx).collect();
                assert_eq!(naive, fast, "node {node} t {t}");
            }
        }
    }

    #[test]
    fn sample_one_matches_k1_stream() {
        // sample_one must consume the RNG exactly like sample_before(k=1)
        // so walk engines keep their pre-CSR sampling streams.
        let g = crate::generators::GeneratorConfig::small("k1", 9).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let strategies = [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalExp { alpha: 0.1 },
            SamplingStrategy::TemporalSafe,
        ];
        for strat in strategies {
            let mut r1 = rng(42);
            let mut r2 = rng(42);
            let mut scratch = SampleScratch::new();
            for node in 0..g.num_nodes.min(30) {
                for &t in &[0.0, 250.0, 700.0, 1200.0] {
                    let a = nf.sample_before(node, t, 1, strat, &mut r1);
                    let b = nf.sample_one(node, t, strat, &mut r2, &mut scratch);
                    assert_eq!(a.first().copied(), b, "node {node} t {t} {strat:?}");
                }
            }
        }
    }

    #[test]
    fn frontier_hop1_matches_per_root_streams() {
        // The documented contract: root r's slots equal sample_into driven
        // by an RNG seeded with frontier_stream_seed(seed, r).
        let g = crate::generators::GeneratorConfig::small("fr", 11).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let roots: Vec<usize> = (0..40).map(|i| i % g.num_nodes).collect();
        let times: Vec<f64> = (0..40).map(|i| 100.0 + 20.0 * i as f64).collect();
        let k = 5;
        let seed = 0xBEEF;
        let f = nf.sample_frontier(&roots, &times, k, 1, SamplingStrategy::Uniform, seed);
        let hop = &f.hops[0];
        let mut scratch = SampleScratch::new();
        let mut buf = Vec::new();
        for (r, (&node, &t)) in roots.iter().zip(&times).enumerate() {
            let mut rs = SeededRng::seed_from_u64(frontier_stream_seed(seed, r as u64));
            nf.sample_into(
                node,
                t,
                k,
                SamplingStrategy::Uniform,
                &mut rs,
                &mut scratch,
                &mut buf,
            );
            for j in 0..k {
                let s = r * k + j;
                if j < buf.len() {
                    assert!(hop.mask[s]);
                    assert_eq!(hop.nodes[s], buf[j].neighbor);
                    assert_eq!(hop.times[s].to_bits(), buf[j].t.to_bits());
                    assert_eq!(hop.event_idx[s], buf[j].event_idx);
                    assert_eq!(hop.feat_idx[s], g.events[buf[j].event_idx].feat_idx);
                    assert_eq!(
                        hop.dts[s].to_bits(),
                        (((t - buf[j].t).max(0.0)) as f32).to_bits()
                    );
                } else {
                    assert!(!hop.mask[s]);
                    assert_eq!(hop.nodes[s], 0);
                    assert_eq!(hop.feat_idx[s], 0);
                    assert_eq!(hop.times[s].to_bits(), t.to_bits());
                }
            }
        }
    }

    #[test]
    fn frontier_is_seed_deterministic_and_leak_free() {
        let g = crate::generators::GeneratorConfig::small("fd", 13).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let roots: Vec<usize> = (0..25).map(|i| (3 * i) % g.num_nodes).collect();
        let times: Vec<f64> = (0..25).map(|i| 50.0 + 35.0 * i as f64).collect();
        let a = nf.sample_frontier(&roots, &times, 4, 2, SamplingStrategy::TemporalSafe, 1);
        let b = nf.sample_frontier(&roots, &times, 4, 2, SamplingStrategy::TemporalSafe, 1);
        let c = nf.sample_frontier(&roots, &times, 4, 2, SamplingStrategy::TemporalSafe, 2);
        for (ha, hb) in a.hops.iter().zip(&b.hops) {
            assert_eq!(ha.nodes, hb.nodes);
            assert_eq!(ha.event_idx, hb.event_idx);
            assert_eq!(ha.feat_idx, hb.feat_idx);
            assert_eq!(ha.mask, hb.mask);
            assert!(ha
                .times
                .iter()
                .zip(&hb.times)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            assert!(ha
                .dts
                .iter()
                .zip(&hb.dts)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        assert_ne!(a.hops[0].nodes, c.hops[0].nodes, "seed must matter");
        // No future leak: every real hop-0 sample precedes its root time,
        // and every real hop-1 sample precedes its parent slot time.
        for (s, &m) in a.hops[0].mask.iter().enumerate() {
            if m {
                assert!(a.hops[0].times[s] < times[s / 4]);
            }
        }
        for (s, &m) in a.hops[1].mask.iter().enumerate() {
            if m {
                assert!(a.hops[1].times[s] < a.hops[0].times[s / 4]);
            }
        }
        // Shapes: hop l holds roots * k^(l+1) slots.
        assert_eq!(a.hops[0].len(), 25 * 4);
        assert_eq!(a.hops[1].len(), 25 * 16);
    }
}
