//! Paged CSR sampler backend: the out-of-core counterpart of
//! [`NeighborFinder`], serving the same query API off `benchtemp-store`
//! pages instead of resident columns.
//!
//! Bit-identity with the resident path is by construction, not by luck
//! (DESIGN.md §16):
//!
//! 1. the store's bulk loader sorts stably, so an already-time-sorted
//!    event stream (every benchtemp dataset) keeps its order and the paged
//!    event indices equal the resident `NeighborFinder`'s;
//! 2. `before_into` materialises the *identical* strictly-before-`t`
//!    window bytes into a [`HistoryScratch`];
//! 3. sampling then runs the exact slice kernels
//!    (`sample_slice_into`/`sample_slice_one`) and frontier engine
//!    (`expand_frontier`) the resident path runs, so RNG consumption and
//!    output bits cannot drift between backends.
//!
//! `MostRecent` consumes no randomness, so the paged path materialises
//! only the window tail of `min(k, window)` entries — the one place the
//! two backends touch different byte counts while producing the same
//! output.

use std::io;
use std::path::Path;

use benchtemp_store::{StoreEvent, TemporalStore};
// Re-exported so samplers can be configured without a direct store
// dependency.
pub use benchtemp_store::{default_store_dir, StoreOptions, TemporalStore as Store};
use benchtemp_tensor::init::SeededRng;

use crate::neighbors::{
    expand_frontier, sample_slice_into, sample_slice_one, BackendScratch, Frontier,
    FrontierBackend, HistoryScratch, NeighborEvent, NeighborFinder, NeighborSlice,
    SamplingStrategy,
};
use crate::temporal_graph::{Interaction, TemporalGraph};

/// Convert the graph crate's interaction to the store's plain-old-data
/// event frame.
fn to_store_event(ev: &Interaction) -> StoreEvent {
    debug_assert!(
        ev.src <= u32::MAX as usize
            && ev.dst <= u32::MAX as usize
            && ev.feat_idx <= u32::MAX as usize,
        "store events are u32-indexed"
    );
    StoreEvent {
        src: ev.src as u32,
        dst: ev.dst as u32,
        t: ev.t,
        feat: ev.feat_idx as u32,
    }
}

/// Temporal neighbor sampler over a paged [`TemporalStore`]: the same
/// query surface as [`NeighborFinder`], with adjacency windows read
/// through the store's byte-budgeted page cache instead of resident
/// columns. Construct via [`NeighborBackend`] to stay backend-generic.
pub struct PagedNeighborFinder {
    store: TemporalStore,
}

impl PagedNeighborFinder {
    /// Bulk-load `events` (plus an optional row-major edge-feature matrix)
    /// into a fresh store at `dir` and open a sampler over it.
    pub fn bulk_load(
        dir: &Path,
        num_nodes: usize,
        events: &[Interaction],
        edge_features: Option<(usize, usize, &[f32])>,
        opts: &StoreOptions,
    ) -> io::Result<Self> {
        let evs: Vec<StoreEvent> = events.iter().map(to_store_event).collect();
        let store = TemporalStore::bulk_load(dir, num_nodes, &evs, edge_features, opts)?;
        Ok(PagedNeighborFinder { store })
    }

    /// Bulk-load a whole graph — event stream plus its edge-feature matrix.
    pub fn bulk_load_graph(
        dir: &Path,
        graph: &TemporalGraph,
        opts: &StoreOptions,
    ) -> io::Result<Self> {
        let ef = &graph.edge_features;
        Self::bulk_load(
            dir,
            graph.num_nodes,
            &graph.events,
            Some((ef.rows(), ef.cols(), ef.as_slice())),
            opts,
        )
    }

    /// Open a sampler over an existing sealed store.
    pub fn open(dir: &Path, opts: &StoreOptions) -> io::Result<Self> {
        Ok(PagedNeighborFinder {
            store: TemporalStore::open(dir, opts)?,
        })
    }

    /// Wrap an already-open store.
    pub fn from_store(store: TemporalStore) -> Self {
        PagedNeighborFinder { store }
    }

    pub fn store(&self) -> &TemporalStore {
        &self.store
    }

    pub fn num_nodes(&self) -> usize {
        self.store.num_nodes()
    }

    /// Total interactions a node participates in.
    pub fn degree(&self, node: usize) -> usize {
        let (s, e) = self.store.node_range(node);
        (e - s) as usize
    }

    /// Entry range of the strictly-before-`t` window: `(start, cut_end)`
    /// in global adjacency-entry units. A binary search over the paged
    /// timestamp column — O(log degree) element reads, no window
    /// materialisation — mirroring the resident `partition_point`.
    fn cut_before(&self, node: usize, t: f64) -> (u64, u64) {
        let (s, e) = self.store.node_range(node);
        let (mut lo, mut hi) = (s, e);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let x = self.store.ts_at(mid).expect("paged store: ts read failed");
            if x < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (s, lo)
    }

    /// Materialise entries `[start, end)` into `scratch` and view them as
    /// a [`NeighborSlice`] — the exact input type of the shared sampling
    /// kernels.
    fn window_into<'s>(
        &self,
        start: u64,
        end: u64,
        scratch: &'s mut HistoryScratch,
    ) -> NeighborSlice<'s> {
        scratch.clear();
        self.store
            .read_adj(
                start,
                end,
                &mut scratch.neighbor,
                &mut scratch.ts,
                &mut scratch.event_idx,
            )
            .expect("paged store: adjacency read failed");
        scratch.as_slice()
    }

    /// All interactions of `node` strictly before `t`, materialised into
    /// `scratch`. Same window bytes as the resident
    /// [`NeighborFinder::before`].
    pub fn before_into<'s>(
        &self,
        node: usize,
        t: f64,
        scratch: &'s mut HistoryScratch,
    ) -> NeighborSlice<'s> {
        let (s, cut_end) = self.cut_before(node, t);
        self.window_into(s, cut_end, scratch)
    }

    /// Window to materialise for strategy: `MostRecent` draws no
    /// randomness and reads only the tail, so paging the full window in
    /// would be wasted IO; every RNG-driven strategy needs the full window
    /// (draw ranges depend on its length).
    fn strategy_window(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
    ) -> (u64, u64) {
        let (s, cut_end) = self.cut_before(node, t);
        match strategy {
            SamplingStrategy::MostRecent => (cut_end - (cut_end - s).min(k as u64), cut_end),
            _ => (s, cut_end),
        }
    }

    /// Paged counterpart of [`NeighborFinder::sample_into`]: clears `out`
    /// and fills it with up to `k` samples, bit-identical to the resident
    /// path over the same events.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        let (start, end) = self.strategy_window(node, t, k, strategy);
        let BackendScratch { sample, history } = scratch;
        let hist = self.window_into(start, end, history);
        sample_slice_into(hist, t, k, strategy, rng, sample, out);
    }

    /// Paged counterpart of [`NeighborFinder::sample_one`].
    pub fn sample_one(
        &self,
        node: usize,
        t: f64,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
    ) -> Option<NeighborEvent> {
        let (start, end) = self.strategy_window(node, t, 1, strategy);
        let BackendScratch { sample, history } = scratch;
        let hist = self.window_into(start, end, history);
        sample_slice_one(hist, t, strategy, rng, sample)
    }

    /// Paged counterpart of [`NeighborFinder::sample_frontier`] — the
    /// identical generic engine, so schedules and output bits match the
    /// resident path exactly.
    pub fn sample_frontier(
        &self,
        roots: &[usize],
        times: &[f64],
        k: usize,
        hops: usize,
        strategy: SamplingStrategy,
        seed: u64,
    ) -> Frontier {
        expand_frontier(self, roots, times, k, hops, strategy, seed)
    }

    /// Bytes this sampler keeps unconditionally resident (CSR offsets and
    /// the per-event feature-row map).
    pub fn resident_index_bytes(&self) -> usize {
        self.store.resident_index_bytes()
    }

    /// Bytes currently held by page-cache frames (bounded by the budget).
    pub fn cache_resident_bytes(&self) -> usize {
        self.store.cache_resident_bytes()
    }
}

impl FrontierBackend for PagedNeighborFinder {
    fn backend_sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    ) {
        self.sample_into(node, t, k, strategy, rng, scratch, out);
    }

    fn backend_event_feat(&self) -> &[u32] {
        self.store.event_feat()
    }
}

/// A borrowed, `Copy` view over either sampler backend — the type
/// [`StreamContext`](../../benchtemp_core) carries so every model runs
/// unchanged against resident or paged adjacency.
#[derive(Clone, Copy)]
pub enum NeighborBackend<'a> {
    Resident(&'a NeighborFinder),
    Paged(&'a PagedNeighborFinder),
}

impl<'a> NeighborBackend<'a> {
    pub fn num_nodes(&self) -> usize {
        match self {
            NeighborBackend::Resident(nf) => nf.num_nodes(),
            NeighborBackend::Paged(pf) => pf.num_nodes(),
        }
    }

    pub fn degree(&self, node: usize) -> usize {
        match self {
            NeighborBackend::Resident(nf) => nf.degree(node),
            NeighborBackend::Paged(pf) => pf.degree(node),
        }
    }

    pub fn is_paged(&self) -> bool {
        matches!(self, NeighborBackend::Paged(_))
    }

    /// All interactions of `node` strictly before `t`. The resident
    /// backend returns its borrowed CSR window untouched (`scratch` is
    /// dead); the paged backend materialises the same bytes into
    /// `scratch`.
    pub fn before_into<'s>(
        &self,
        node: usize,
        t: f64,
        scratch: &'s mut HistoryScratch,
    ) -> NeighborSlice<'s>
    where
        'a: 's,
    {
        match self {
            NeighborBackend::Resident(nf) => nf.before(node, t),
            NeighborBackend::Paged(pf) => pf.before_into(node, t, scratch),
        }
    }

    /// Up to `k` samples into `out`; see [`NeighborFinder::sample_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    ) {
        match self {
            NeighborBackend::Resident(nf) => {
                nf.sample_into(node, t, k, strategy, rng, &mut scratch.sample, out)
            }
            NeighborBackend::Paged(pf) => pf.sample_into(node, t, k, strategy, rng, scratch, out),
        }
    }

    /// Scalar walk-hop sample; see [`NeighborFinder::sample_one`].
    pub fn sample_one(
        &self,
        node: usize,
        t: f64,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
    ) -> Option<NeighborEvent> {
        match self {
            NeighborBackend::Resident(nf) => {
                nf.sample_one(node, t, strategy, rng, &mut scratch.sample)
            }
            NeighborBackend::Paged(pf) => pf.sample_one(node, t, strategy, rng, scratch),
        }
    }

    /// Batched multi-hop expansion; see
    /// [`NeighborFinder::sample_frontier`]. Both arms run the same generic
    /// engine, so results are bit-identical across backends and thread
    /// counts.
    pub fn sample_frontier(
        &self,
        roots: &[usize],
        times: &[f64],
        k: usize,
        hops: usize,
        strategy: SamplingStrategy,
        seed: u64,
    ) -> Frontier {
        match self {
            NeighborBackend::Resident(nf) => {
                expand_frontier(*nf, roots, times, k, hops, strategy, seed)
            }
            NeighborBackend::Paged(pf) => {
                expand_frontier(*pf, roots, times, k, hops, strategy, seed)
            }
        }
    }

    /// Compat shim mirroring [`NeighborFinder::sample_before`]: allocates
    /// the returned `Vec` and a scratch. Hot paths hold a
    /// [`BackendScratch`] and call `sample_into`/`sample_one`.
    pub fn sample_before(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
    ) -> Vec<NeighborEvent> {
        let mut scratch = BackendScratch::new();
        let mut out = Vec::new();
        self.sample_into(node, t, k, strategy, rng, &mut scratch, &mut out);
        out
    }

    /// Bytes held resident by the backend: the whole CSR for the resident
    /// arm; the in-RAM index plus current page-cache frames for the paged
    /// arm.
    pub fn heap_bytes(&self) -> usize {
        match self {
            NeighborBackend::Resident(nf) => nf.heap_bytes(),
            NeighborBackend::Paged(pf) => pf.resident_index_bytes() + pf.cache_resident_bytes(),
        }
    }
}

/// Owning counterpart of [`NeighborBackend`], for pipelines that build the
/// sampler and then hand out borrowed views per batch.
// Two instances exist per job (train shell + full graph); the variant
// size gap is irrelevant at that count and boxing would cost a deref on
// every `as_backend`.
#[allow(clippy::large_enum_variant)]
pub enum OwnedNeighborBackend {
    Resident(NeighborFinder),
    Paged(PagedNeighborFinder),
}

impl OwnedNeighborBackend {
    pub fn as_backend(&self) -> NeighborBackend<'_> {
        match self {
            OwnedNeighborBackend::Resident(nf) => NeighborBackend::Resident(nf),
            OwnedNeighborBackend::Paged(pf) => NeighborBackend::Paged(pf),
        }
    }

    pub fn heap_bytes(&self) -> usize {
        self.as_backend().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbors::{frontier_stream_seed, SampleScratch};
    use benchtemp_tensor::init::SeededRng;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("benchtemp-paged-{}-{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A time-sorted interaction stream with repeated endpoints so nodes
    /// accumulate history.
    fn events(n: usize) -> Vec<Interaction> {
        (0..n)
            .map(|i| Interaction {
                src: i % 7,
                dst: 7 + (i % 5),
                t: (i / 2) as f64, // duplicate timestamps exercise tie handling
                feat_idx: i,
            })
            .collect()
    }

    fn backends(dir: &Path, evs: &[Interaction]) -> (NeighborFinder, PagedNeighborFinder) {
        let nf = NeighborFinder::from_events(12, evs);
        // Tiny cache budget: force evictions so hits and misses both occur.
        let opts = StoreOptions {
            cache_budget_bytes: Some(64 * 1024),
            run_events: 64,
        };
        let pf = PagedNeighborFinder::bulk_load(dir, 12, evs, None, &opts).unwrap();
        (nf, pf)
    }

    #[test]
    fn before_windows_match_resident() {
        let dir = tmpdir("before");
        let evs = events(300);
        let (nf, pf) = backends(&dir, &evs);
        let mut scratch = HistoryScratch::new();
        for node in 0..12 {
            for t in [0.0, 1.0, 37.5, 80.0, 1e9] {
                let r = nf.before(node, t);
                let p = pf.before_into(node, t, &mut scratch);
                assert_eq!(r.len(), p.len(), "node={node} t={t}");
                assert_eq!(r.neighbor_ids(), p.neighbor_ids());
                assert_eq!(r.event_indices(), p.event_indices());
                assert_eq!(r.ts(), p.ts());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn samples_bit_identical_across_backends() {
        let dir = tmpdir("samples");
        let evs = events(300);
        let (nf, pf) = backends(&dir, &evs);
        let strategies = [
            SamplingStrategy::MostRecent,
            SamplingStrategy::Uniform,
            SamplingStrategy::TemporalExp { alpha: 0.01 },
            SamplingStrategy::TemporalSafe,
        ];
        for strategy in strategies {
            let mut rng_r = SeededRng::seed_from_u64(7);
            let mut rng_p = SeededRng::seed_from_u64(7);
            let mut s_r = SampleScratch::new();
            let mut s_p = BackendScratch::new();
            let (mut out_r, mut out_p) = (Vec::new(), Vec::new());
            for node in 0..12 {
                for t in [3.0, 55.0, 150.0] {
                    nf.sample_into(node, t, 5, strategy, &mut rng_r, &mut s_r, &mut out_r);
                    pf.sample_into(node, t, 5, strategy, &mut rng_p, &mut s_p, &mut out_p);
                    assert_eq!(out_r, out_p, "strategy={strategy:?} node={node} t={t}");
                    let one_r = nf.sample_one(node, t, strategy, &mut rng_r, &mut s_r);
                    let one_p = pf.sample_one(node, t, strategy, &mut rng_p, &mut s_p);
                    assert_eq!(one_r, one_p);
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frontiers_bit_identical_across_backends() {
        let dir = tmpdir("frontier");
        let evs = events(400);
        let (nf, pf) = backends(&dir, &evs);
        let roots: Vec<usize> = (0..40).map(|i| i % 12).collect();
        let times: Vec<f64> = (0..40).map(|i| 40.0 + i as f64).collect();
        let seed = frontier_stream_seed(0xfeed, 3); // arbitrary fixed seed
        for strategy in [SamplingStrategy::MostRecent, SamplingStrategy::Uniform] {
            let fr = nf.sample_frontier(&roots, &times, 3, 2, strategy, seed);
            let fp = pf.sample_frontier(&roots, &times, 3, 2, strategy, seed);
            assert_eq!(fr.hops.len(), fp.hops.len());
            for (hr, hp) in fr.hops.iter().zip(&fp.hops) {
                assert_eq!(hr.nodes, hp.nodes);
                assert_eq!(
                    hr.times.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                    hp.times.iter().map(|t| t.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(hr.event_idx, hp.event_idx);
                assert_eq!(hr.feat_idx, hp.feat_idx);
                assert_eq!(
                    hr.dts.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                    hp.dts.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(hr.mask, hp.mask);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_enum_dispatches_both_arms() {
        let dir = tmpdir("enum");
        let evs = events(200);
        let (nf, pf) = backends(&dir, &evs);
        let br = NeighborBackend::Resident(&nf);
        let bp = NeighborBackend::Paged(&pf);
        assert_eq!(br.num_nodes(), bp.num_nodes());
        for node in 0..12 {
            assert_eq!(br.degree(node), bp.degree(node));
        }
        let mut scratch = HistoryScratch::new();
        let r = br.before_into(3, 60.0, &mut scratch);
        let rts: Vec<u64> = r.ts().iter().map(|t| t.to_bits()).collect();
        let mut scratch_p = HistoryScratch::new();
        let p = bp.before_into(3, 60.0, &mut scratch_p);
        assert_eq!(rts, p.ts().iter().map(|t| t.to_bits()).collect::<Vec<_>>());
        assert!(bp.is_paged() && !br.is_paged());
        assert!(br.heap_bytes() > 0 && bp.heap_bytes() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
