//! # benchtemp-graph
//!
//! Temporal-graph substrate for the BenchTemp reproduction: the interaction
//! stream abstraction (§3.1), node reindexing (Fig. 3), node-feature
//! initialization, the time-indexed neighbor finder every sampling-based
//! TGNN queries, synthetic benchmark-dataset generators matched to Table 2 /
//! Table 16 statistics, and dataset statistics/temporal histograms (Fig. 5).

pub mod datasets;
pub mod features;
pub mod generators;
pub mod io;
pub mod neighbors;
pub mod paged;
pub mod reindex;
pub mod snapshots;
pub mod stats;
pub mod temporal_graph;

pub use datasets::BenchDataset;
pub use features::FeatureInit;
pub use generators::GeneratorConfig;
pub use neighbors::{
    frontier_stream_seed, BackendScratch, Frontier, FrontierHop, HistoryScratch, NeighborEvent,
    NeighborFinder, NeighborSlice, SampleScratch, SamplingStrategy,
};
pub use paged::{NeighborBackend, OwnedNeighborBackend, PagedNeighborFinder};
pub use stats::DatasetStats;
pub use temporal_graph::{EventLabels, Interaction, TemporalGraph};
