//! Dataset persistence: the reference BenchTemp ships each benchmark
//! dataset as a CSV edge list plus feature arrays; this module round-trips
//! a [`TemporalGraph`] through the same layout so generated datasets can be
//! shared, inspected, and reloaded without regenerating.
//!
//! Layout under a dataset directory:
//! * `meta.json` — name, bipartite flag, node counts, dims, label classes;
//! * `edges.csv` — `src,dst,t,feat_idx[,label]` per interaction;
//! * `edge_features.bin` / `node_features.bin` — little-endian f32 row-major.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use benchtemp_tensor::Matrix;
use benchtemp_util::{json, Json};

use crate::temporal_graph::{EventLabels, Interaction, TemporalGraph};

struct Meta {
    name: String,
    bipartite: bool,
    num_nodes: usize,
    num_users: usize,
    num_events: usize,
    edge_dim: usize,
    node_dim: usize,
    label_classes: Option<usize>,
    format_version: u32,
}

impl Meta {
    fn to_json(&self) -> Json {
        json!({
            "name": self.name.as_str(),
            "bipartite": self.bipartite,
            "num_nodes": self.num_nodes as f64,
            "num_users": self.num_users as f64,
            "num_events": self.num_events as f64,
            "edge_dim": self.edge_dim as f64,
            "node_dim": self.node_dim as f64,
            "label_classes": self.label_classes.map(|c| c as f64),
            "format_version": self.format_version as f64,
        })
    }

    fn from_json(j: &Json) -> Result<Self, String> {
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing or invalid field {k:?}"))
        };
        let bool_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("missing or invalid field {k:?}"))
        };
        let usize_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("missing or invalid field {k:?}"))
        };
        let label_classes = match j.get("label_classes") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or_else(|| "invalid field \"label_classes\"".to_string())?,
            ),
        };
        Ok(Meta {
            name: str_field("name")?,
            bipartite: bool_field("bipartite")?,
            num_nodes: usize_field("num_nodes")?,
            num_users: usize_field("num_users")?,
            num_events: usize_field("num_events")?,
            edge_dim: usize_field("edge_dim")?,
            node_dim: usize_field("node_dim")?,
            label_classes,
            format_version: usize_field("format_version")? as u32,
        })
    }
}

/// Errors surfaced while loading/saving datasets.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn format_err(msg: impl Into<String>) -> IoError {
    IoError::Format(msg.into())
}

/// Save a dataset into `dir` (created if missing).
pub fn save_dataset(graph: &TemporalGraph, dir: &Path) -> Result<(), IoError> {
    graph.validate().map_err(format_err)?;
    std::fs::create_dir_all(dir)?;
    let meta = Meta {
        name: graph.name.clone(),
        bipartite: graph.bipartite,
        num_nodes: graph.num_nodes,
        num_users: graph.num_users,
        num_events: graph.num_events(),
        edge_dim: graph.edge_dim(),
        node_dim: graph.node_dim(),
        label_classes: graph.labels.as_ref().map(|l| l.num_classes),
        format_version: 1,
    };
    std::fs::write(dir.join("meta.json"), meta.to_json().to_string_pretty())?;

    let mut edges = BufWriter::new(std::fs::File::create(dir.join("edges.csv"))?);
    match &graph.labels {
        Some(labels) => {
            writeln!(edges, "src,dst,t,feat_idx,label")?;
            for (ev, &l) in graph.events.iter().zip(&labels.labels) {
                writeln!(
                    edges,
                    "{},{},{},{},{}",
                    ev.src, ev.dst, ev.t, ev.feat_idx, l
                )?;
            }
        }
        None => {
            writeln!(edges, "src,dst,t,feat_idx")?;
            for ev in &graph.events {
                writeln!(edges, "{},{},{},{}", ev.src, ev.dst, ev.t, ev.feat_idx)?;
            }
        }
    }
    edges.flush()?;

    write_matrix(&graph.edge_features, &dir.join("edge_features.bin"))?;
    write_matrix(&graph.node_features, &dir.join("node_features.bin"))?;
    Ok(())
}

/// Load a dataset previously written by [`save_dataset`].
pub fn load_dataset(dir: &Path) -> Result<TemporalGraph, IoError> {
    let meta_json = benchtemp_util::parse(&std::fs::read_to_string(dir.join("meta.json"))?)
        .map_err(|e| format_err(format!("meta.json: {e}")))?;
    let meta = Meta::from_json(&meta_json).map_err(|e| format_err(format!("meta.json: {e}")))?;
    if meta.format_version != 1 {
        return Err(format_err(format!(
            "unsupported format version {}",
            meta.format_version
        )));
    }

    let file = BufReader::new(std::fs::File::open(dir.join("edges.csv"))?);
    let mut lines = file.lines();
    let header = lines
        .next()
        .ok_or_else(|| format_err("edges.csv is empty"))??;
    let has_labels = header.trim_end().ends_with(",label");
    let mut events = Vec::with_capacity(meta.num_events);
    let mut labels = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split(',');
        let mut field = |name: &str| {
            cols.next()
                .ok_or_else(|| format_err(format!("edges.csv line {}: missing {name}", lineno + 2)))
        };
        let src: usize = parse(field("src")?, lineno)?;
        let dst: usize = parse(field("dst")?, lineno)?;
        let t: f64 = parse(field("t")?, lineno)?;
        let feat_idx: usize = parse(field("feat_idx")?, lineno)?;
        events.push(Interaction {
            src,
            dst,
            t,
            feat_idx,
        });
        if has_labels {
            labels.push(parse::<u32>(field("label")?, lineno)?);
        }
    }
    if events.len() != meta.num_events {
        return Err(format_err(format!(
            "meta says {} events, edges.csv has {}",
            meta.num_events,
            events.len()
        )));
    }

    let edge_features = read_matrix(
        &dir.join("edge_features.bin"),
        meta.num_events,
        meta.edge_dim,
    )?;
    let node_features = read_matrix(
        &dir.join("node_features.bin"),
        meta.num_nodes,
        meta.node_dim,
    )?;

    let graph = TemporalGraph {
        name: meta.name,
        bipartite: meta.bipartite,
        num_nodes: meta.num_nodes,
        num_users: meta.num_users,
        events,
        edge_features,
        node_features,
        labels: meta.label_classes.map(|num_classes| EventLabels {
            labels,
            num_classes,
        }),
    };
    graph.validate().map_err(format_err)?;
    Ok(graph)
}

fn parse<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<T, IoError> {
    s.trim().parse().map_err(|_| {
        format_err(format!(
            "edges.csv line {}: cannot parse {:?}",
            lineno + 2,
            s
        ))
    })
}

fn write_matrix(m: &Matrix, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    let (rows, cols) = m.shape();
    w.write_all(&(rows as u64).to_le_bytes())?;
    w.write_all(&(cols as u64).to_le_bytes())?;
    for &x in m.as_slice() {
        w.write_all(&x.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

fn read_matrix(path: &Path, expect_rows: usize, expect_cols: usize) -> Result<Matrix, IoError> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let rows = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let cols = u64::from_le_bytes(u64buf) as usize;
    if rows != expect_rows || cols != expect_cols {
        return Err(format_err(format!(
            "{}: expected {}x{}, file says {}x{}",
            path.display(),
            expect_rows,
            expect_cols,
            rows,
            cols
        )));
    }
    let mut bytes = Vec::with_capacity(rows * cols * 4);
    r.read_to_end(&mut bytes)?;
    if bytes.len() != rows * cols * 4 {
        return Err(format_err(format!(
            "{}: expected {} bytes of f32 data, found {}",
            path.display(),
            rows * cols * 4,
            bytes.len()
        )));
    }
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GeneratorConfig, LabelGenConfig};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("benchtemp_io_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_unlabelled() {
        let g = GeneratorConfig::small("io", 501).generate();
        let dir = tmpdir("plain");
        save_dataset(&g, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();
        assert_eq!(g.name, loaded.name);
        assert_eq!(g.events, loaded.events);
        assert_eq!(g.edge_features, loaded.edge_features);
        assert_eq!(g.node_features, loaded.node_features);
        assert!(loaded.labels.is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn round_trip_labelled() {
        let mut cfg = GeneratorConfig::small("io-l", 502);
        cfg.label = Some(LabelGenConfig::binary(0.1));
        let g = cfg.generate();
        let dir = tmpdir("labelled");
        save_dataset(&g, &dir).unwrap();
        let loaded = load_dataset(&dir).unwrap();
        assert_eq!(g.labels, loaded.labels);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn loading_missing_dir_errors() {
        let err = load_dataset(Path::new("/nonexistent/benchtemp")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }

    #[test]
    fn corrupted_feature_file_is_rejected() {
        let g = GeneratorConfig::small("io-c", 503).generate();
        let dir = tmpdir("corrupt");
        save_dataset(&g, &dir).unwrap();
        // Truncate the edge features.
        let path = dir.join("edge_features.bin");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(matches!(err, IoError::Format(_)), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn meta_event_count_mismatch_is_rejected() {
        let g = GeneratorConfig::small("io-m", 504).generate();
        let dir = tmpdir("meta");
        save_dataset(&g, &dir).unwrap();
        // Drop one CSV line.
        let csv = std::fs::read_to_string(dir.join("edges.csv")).unwrap();
        let trimmed: Vec<&str> = csv.lines().collect();
        std::fs::write(
            dir.join("edges.csv"),
            trimmed[..trimmed.len() - 1].join("\n"),
        )
        .unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        std::fs::remove_dir_all(dir).ok();
    }
}
