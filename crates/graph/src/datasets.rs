//! The benchmark dataset presets: the fifteen datasets of Table 2 plus the
//! six Appendix-F additions (Table 16), realized as generator configurations
//! matched to the published statistics.
//!
//! Every preset accepts a `scale ∈ (0, 1]`: edge counts scale linearly and
//! node counts by `scale^0.75` (so average degree shrinks more slowly than
//! size — the density *ordering* across datasets is preserved), with floors
//! that keep small graphs trainable. `scale = 1.0` reproduces the paper's
//! published node/edge counts exactly.

use crate::features::FeatureInit;
use crate::generators::{GeneratorConfig, LabelGenConfig};

/// Published statistics from Table 2 / Table 16 (for reporting and for the
/// `table2_stats` harness to compare against).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaperStats {
    pub nodes: usize,
    pub edges: usize,
    pub domain: &'static str,
    pub bipartite: bool,
}

/// Label rate used for node-classification presets. The real datasets have
/// sub-percent positive rates (Reddit: 366/672k), which is untrainable at
/// reduced scale; we use 5% and document the substitution in EXPERIMENTS.md.
pub const NC_POSITIVE_RATE: f64 = 0.05;

/// All benchmark datasets (Table 2 + Table 16).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchDataset {
    Reddit,
    Wikipedia,
    Mooc,
    LastFm,
    Taobao,
    Enron,
    SocialEvo,
    Uci,
    CollegeMsg,
    CanParl,
    Contact,
    Flights,
    UnTrade,
    UsLegis,
    UnVote,
    // Appendix F additions:
    EbaySmall,
    YouTubeRedditSmall,
    EbayLarge,
    DGraphFin,
    YouTubeRedditLarge,
    TaobaoLarge,
}

impl BenchDataset {
    /// The fifteen main-paper datasets, in Table 2 order.
    pub fn all15() -> Vec<BenchDataset> {
        use BenchDataset::*;
        vec![
            Reddit, Wikipedia, Mooc, LastFm, Taobao, Enron, SocialEvo, Uci, CollegeMsg, CanParl,
            Contact, Flights, UnTrade, UsLegis, UnVote,
        ]
    }

    /// The six Appendix-F datasets, in Table 16 order.
    pub fn new6() -> Vec<BenchDataset> {
        use BenchDataset::*;
        vec![
            EbaySmall,
            YouTubeRedditSmall,
            EbayLarge,
            DGraphFin,
            YouTubeRedditLarge,
            TaobaoLarge,
        ]
    }

    /// The four "large-scale" datasets used for the Average Rank metric.
    pub fn large4() -> Vec<BenchDataset> {
        use BenchDataset::*;
        vec![EbayLarge, DGraphFin, YouTubeRedditLarge, TaobaoLarge]
    }

    /// Datasets with node labels available for node classification.
    pub fn labelled() -> Vec<BenchDataset> {
        use BenchDataset::*;
        vec![Reddit, Wikipedia, Mooc, EbaySmall, EbayLarge, DGraphFin]
    }

    pub fn name(&self) -> &'static str {
        use BenchDataset::*;
        match self {
            Reddit => "Reddit",
            Wikipedia => "Wikipedia",
            Mooc => "MOOC",
            LastFm => "LastFM",
            Taobao => "Taobao",
            Enron => "Enron",
            SocialEvo => "SocialEvo",
            Uci => "UCI",
            CollegeMsg => "CollegeMsg",
            CanParl => "CanParl",
            Contact => "Contact",
            Flights => "Flights",
            UnTrade => "UNTrade",
            UsLegis => "USLegis",
            UnVote => "UNVote",
            EbaySmall => "eBay-Small",
            YouTubeRedditSmall => "YouTubeReddit-Small",
            EbayLarge => "eBay-Large",
            DGraphFin => "DGraphFin",
            YouTubeRedditLarge => "YouTubeReddit-Large",
            TaobaoLarge => "Taobao-Large",
        }
    }

    /// Published statistics (Table 2 / Table 16).
    pub fn paper_stats(&self) -> PaperStats {
        use BenchDataset::*;
        let (nodes, edges, domain, bipartite) = match self {
            Reddit => (10_984, 672_447, "Social", true),
            Wikipedia => (9_227, 157_474, "Social", true),
            Mooc => (7_144, 411_749, "Interaction", true),
            LastFm => (1_980, 1_293_103, "Interaction", true),
            Taobao => (82_566, 77_436, "E-commerce", true),
            Enron => (184, 125_235, "Social", false),
            SocialEvo => (74, 2_099_519, "Proximity", false),
            Uci => (1_899, 59_835, "Social", false),
            CollegeMsg => (1_899, 59_834, "Social", false),
            CanParl => (734, 74_478, "Politics", false),
            Contact => (692, 2_426_279, "Proximity", false),
            Flights => (13_169, 1_927_145, "Transport", false),
            UnTrade => (255, 507_497, "Economics", false),
            UsLegis => (225, 60_396, "Politics", false),
            UnVote => (201, 1_035_742, "Politics", false),
            EbaySmall => (38_427, 384_677, "E-commerce", true),
            YouTubeRedditSmall => (264_443, 297_732, "Social", true),
            EbayLarge => (1_333_594, 1_119_454, "E-commerce", true),
            DGraphFin => (3_700_550, 4_300_999, "E-commerce", false),
            YouTubeRedditLarge => (5_724_111, 4_228_523, "Social", true),
            TaobaoLarge => (1_630_453, 5_008_745, "E-commerce", true),
        };
        PaperStats {
            nodes,
            edges,
            domain,
            bipartite,
        }
    }

    /// Edge-feature dimension (Table 8 / Appendix A).
    pub fn edge_dim(&self) -> usize {
        use BenchDataset::*;
        match self {
            Reddit | Wikipedia | CollegeMsg => 172,
            Mooc | Taobao | TaobaoLarge => 4,
            LastFm | SocialEvo => 2,
            Enron => 32,
            Uci => 100,
            CanParl | Contact | Flights | UnTrade | UsLegis | UnVote => 1,
            EbaySmall | EbayLarge | DGraphFin => 8,
            YouTubeRedditSmall | YouTubeRedditLarge => 8,
        }
    }

    /// Whether this dataset carries node-classification labels, and how many
    /// classes (Appendix G: DGraphFin has 4).
    pub fn label_classes(&self) -> Option<usize> {
        use BenchDataset::*;
        match self {
            Reddit | Wikipedia | Mooc | EbaySmall | EbayLarge => Some(2),
            DGraphFin => Some(4),
            _ => None,
        }
    }

    /// Coarse timestamp quantization levels for large-granularity datasets
    /// (CanParl is yearly 2006–2019; USLegis timestamps run 0..11; UNVote
    /// spans 76 yearly roll-call sessions; UNTrade 30 years; Flights daily).
    fn granularity(&self) -> Option<usize> {
        use BenchDataset::*;
        match self {
            CanParl => Some(14),
            UsLegis => Some(12),
            UnVote => Some(76),
            UnTrade => Some(30),
            Flights => Some(120),
            _ => None,
        }
    }

    /// Recency bias and window of the recurrence process: large-granularity
    /// session datasets (parliaments, legislatures) repeat edges within the
    /// current session, making edge freshness the discriminative temporal
    /// signal (what NeurTW's NODE component reads, Appendix H).
    fn recency(&self) -> (f64, usize) {
        use BenchDataset::*;
        match self {
            CanParl | UsLegis | UnVote | UnTrade => (0.9, 60),
            LastFm | Contact | SocialEvo => (0.7, 300),
            _ => (0.5, 500),
        }
    }

    /// Structural knobs `(recurrence, burstiness, zipf, affinity, communities)`
    /// chosen to mirror each dataset's published character: density from
    /// Table 2, recurrence from the domain (music replay / physical
    /// proximity ≫ e-commerce discovery), burstiness from the Fig. 5
    /// temporal distributions.
    fn knobs(&self) -> (f64, f64, f64, f64, usize) {
        use BenchDataset::*;
        match self {
            Reddit => (0.60, 0.40, 0.9, 0.85, 8),
            Wikipedia => (0.55, 0.40, 0.9, 0.85, 8),
            Mooc => (0.50, 0.50, 0.8, 0.90, 4),
            LastFm => (0.85, 0.50, 1.0, 0.90, 6),
            Taobao => (0.05, 0.30, 1.1, 0.85, 10),
            Enron => (0.80, 0.50, 0.8, 0.80, 4),
            SocialEvo => (0.90, 0.60, 0.6, 0.85, 3),
            Uci => (0.45, 0.45, 0.9, 0.85, 6),
            CollegeMsg => (0.45, 0.45, 0.9, 0.85, 6),
            CanParl => (0.30, 0.10, 0.6, 0.90, 4),
            Contact => (0.85, 0.60, 0.6, 0.90, 4),
            Flights => (0.70, 0.20, 1.0, 0.80, 8),
            UnTrade => (0.60, 0.10, 0.7, 0.60, 4),
            UsLegis => (0.40, 0.10, 0.6, 0.85, 3),
            UnVote => (0.70, 0.10, 0.5, 0.60, 3),
            EbaySmall | EbayLarge => (0.25, 0.35, 1.0, 0.85, 10),
            YouTubeRedditSmall | YouTubeRedditLarge => (0.30, 0.45, 1.0, 0.85, 10),
            DGraphFin => (0.20, 0.30, 0.9, 0.85, 8),
            TaobaoLarge => (0.10, 0.30, 1.1, 0.85, 10),
        }
    }

    /// User fraction of the node count for bipartite datasets (items are the
    /// smaller side for Wikipedia/LastFM/MOOC-style catalogues).
    fn user_fraction(&self) -> f64 {
        use BenchDataset::*;
        match self {
            Wikipedia => 0.89, // 8,227 editors / 1,000 pages
            LastFm => 0.5,     // 1,000 users / 1,000 songs
            Mooc => 0.97,      // 7,047 students / 97 course units
            Reddit => 0.91,    // 10,000 users / 984 subreddits
            Taobao | TaobaoLarge => 0.66,
            _ => 0.6,
        }
    }

    /// Analytic estimate of the bytes a fully resident in-memory pipeline
    /// holds for this preset at `scale`: the event stream
    /// (`Interaction` = 32 B), both feature matrices (f32), and the
    /// bidirectional CSR index (20 B per directed entry — u32 neighbor,
    /// f64 ts, u32 event idx, u32 feature row — plus 8 B/node offsets).
    /// This is what the paged store's cache budget is traded against — presets
    /// whose estimate exceeds `BENCHTEMP_PAGE_CACHE_MB` will exercise
    /// eviction when run through the paged backend.
    pub fn resident_bytes_estimate(&self, scale: f64) -> usize {
        let stats = self.paper_stats();
        let edges = ((stats.edges as f64 * scale).round() as usize).max(400);
        let nodes = ((stats.nodes as f64 * scale.powf(0.75)).round() as usize).max(24);
        let events = edges * std::mem::size_of::<crate::temporal_graph::Interaction>();
        let edge_feats = edges * self.edge_dim() * 4;
        let node_feats = nodes * crate::features::STANDARD_NODE_DIM * 4;
        let csr = 2 * edges * (4 + 8 + 4 + 4) + (nodes + 1) * 8;
        events + edge_feats + node_feats + csr
    }

    /// Build the generator configuration at the given scale and seed.
    pub fn config(&self, scale: f64, seed: u64) -> GeneratorConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let stats = self.paper_stats();
        let edges = ((stats.edges as f64 * scale).round() as usize).max(400);
        let nodes = ((stats.nodes as f64 * scale.powf(0.75)).round() as usize).max(24);
        let (recurrence, burstiness, zipf, affinity, communities) = self.knobs();
        let (num_users, num_items) = if stats.bipartite {
            let users = ((nodes as f64 * self.user_fraction()) as usize).max(12);
            (users, (nodes - users).max(12))
        } else {
            (nodes, 0)
        };
        let time_span = match self.granularity() {
            Some(levels) => levels as f64,
            None => 10_000.0,
        };
        GeneratorConfig {
            name: self.name().to_string(),
            bipartite: stats.bipartite,
            num_users,
            num_items,
            num_edges: edges,
            edge_dim: self.edge_dim(),
            time_span,
            granularity_levels: self.granularity(),
            recurrence,
            recency_bias: self.recency().0,
            recency_window: self.recency().1,
            zipf_exponent: zipf,
            communities,
            affinity,
            burstiness,
            feature_noise: 0.25,
            label: self.label_classes().map(|classes| {
                if classes == 2 {
                    LabelGenConfig::binary(NC_POSITIVE_RATE)
                } else {
                    LabelGenConfig {
                        num_classes: classes,
                        rare_rate: 0.08,
                        decay: 0.05,
                    }
                }
            }),
            node_feature_init: FeatureInit::RandomFixed {
                seed: seed ^ 0x5eed,
                std: 0.1,
            },
            node_dim: crate::features::STANDARD_NODE_DIM,
            seed,
        }
    }
}

/// Aligned table of [`BenchDataset::resident_bytes_estimate`] for every
/// preset (Table 2 + Table 16) at `scale`, largest first — capacity
/// planning against a page-cache budget at a glance. Printed by the store
/// smoke harness.
pub fn resident_bytes_report(scale: f64) -> String {
    let mut rows: Vec<(&'static str, usize)> = BenchDataset::all15()
        .into_iter()
        .chain(BenchDataset::new6())
        .map(|d| (d.name(), d.resident_bytes_estimate(scale)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = format!("resident-bytes estimates at scale {scale}\n");
    for (name, bytes) in rows {
        out.push_str(&format!(
            "  {name:<22} {:>10.2} MiB\n",
            bytes as f64 / (1 << 20) as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_main_and_six_new() {
        assert_eq!(BenchDataset::all15().len(), 15);
        assert_eq!(BenchDataset::new6().len(), 6);
        assert_eq!(BenchDataset::large4().len(), 4);
    }

    #[test]
    fn labelled_sets_carry_label_config() {
        for d in BenchDataset::labelled() {
            assert!(
                d.label_classes().is_some(),
                "{} should have labels",
                d.name()
            );
            let cfg = d.config(0.01, 1);
            assert!(cfg.label.is_some());
        }
        assert!(BenchDataset::LastFm.label_classes().is_none());
    }

    #[test]
    fn dgraphfin_is_four_class() {
        assert_eq!(BenchDataset::DGraphFin.label_classes(), Some(4));
    }

    #[test]
    fn full_scale_matches_paper_counts() {
        let cfg = BenchDataset::Enron.config(1.0, 1);
        assert_eq!(cfg.num_edges, 125_235);
        assert_eq!(cfg.total_nodes(), 184);
    }

    #[test]
    fn scaled_configs_generate_valid_graphs() {
        for d in BenchDataset::all15() {
            let cfg = d.config(0.002, 42);
            let g = cfg.generate();
            assert_eq!(g.validate(), Ok(()), "{} invalid", d.name());
            assert!(g.num_events() >= 400);
        }
    }

    #[test]
    fn density_ordering_is_preserved() {
        // SocialEvo must stay far denser than Taobao at any common scale.
        let social = BenchDataset::SocialEvo.config(0.005, 1).generate();
        let taobao = BenchDataset::Taobao.config(0.005, 1).generate();
        let deg =
            |g: &crate::temporal_graph::TemporalGraph| g.num_events() as f64 / g.num_nodes as f64;
        assert!(deg(&social) > 20.0 * deg(&taobao));
    }

    #[test]
    fn canparl_has_coarse_granularity() {
        let g = BenchDataset::CanParl.config(0.01, 1).generate();
        let mut ts: Vec<f64> = g.events.iter().map(|e| e.t).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup();
        assert!(ts.len() <= 14);
    }

    #[test]
    fn resident_estimates_scale_and_rank_sensibly() {
        // Full-scale SocialEvo (2.1M events) must dwarf UNVote's estimate
        // scaled down 100×, and every preset appears in the report.
        let big = BenchDataset::SocialEvo.resident_bytes_estimate(1.0);
        let small = BenchDataset::UnVote.resident_bytes_estimate(0.01);
        assert!(big > 50 * small, "{big} vs {small}");
        let report = resident_bytes_report(0.05);
        for d in BenchDataset::all15()
            .into_iter()
            .chain(BenchDataset::new6())
        {
            assert!(report.contains(d.name()), "{} missing", d.name());
        }
    }

    #[test]
    fn edge_dims_match_table8() {
        assert_eq!(BenchDataset::Reddit.edge_dim(), 172);
        assert_eq!(BenchDataset::Mooc.edge_dim(), 4);
        assert_eq!(BenchDataset::LastFm.edge_dim(), 2);
        assert_eq!(BenchDataset::Enron.edge_dim(), 32);
        assert_eq!(BenchDataset::Uci.edge_dim(), 100);
        assert_eq!(BenchDataset::CanParl.edge_dim(), 1);
    }
}
