//! Harness utilities shared by the table/figure reproduction binaries.
//!
//! Every binary follows the paper's protocol (§4.1): each (model, dataset)
//! job runs under `--seeds` seeds (default 3) and reports mean ± std; early
//! stopping uses patience 3 / tolerance 1e-3; jobs are wall-clock bounded
//! by `--timeout-secs` (the 48 h budget, scaled). Dataset sizes are scaled
//! by `--scale` (see `BenchDataset::config`); results are written both as
//! aligned text (stdout) and JSON under `results/`.

// audit-allow-file(no-wallclock-outside-obs): the bench harness *is* a
// wall-clock; every Instant in this file is a calibration or sample timer
// whose readings are reported, never fed back into the computation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

use benchtemp_util::{json, Json, ToJson};

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, LinkPredictionRun, TrainConfig};
use benchtemp_core::sampler::NegativeStrategy;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::temporal_graph::TemporalGraph;
use benchtemp_models::common::ModelConfig;

/// Command-line protocol shared by the harness binaries.
#[derive(Clone, Debug)]
pub struct Protocol {
    /// Dataset scale ∈ (0,1]; 1.0 = the paper's published sizes.
    pub scale: f64,
    /// Seed runs per job (the paper runs 3).
    pub seeds: usize,
    /// Epoch cap (early stopping usually fires first).
    pub max_epochs: usize,
    pub batch_size: usize,
    /// Per-job wall-clock budget (the paper's 48 h, scaled).
    pub timeout: Duration,
    /// Filtered-negative candidates per test edge for MRR/Hits@K ranking
    /// (0 disables the ranking pass entirely).
    pub rank_negatives: usize,
    /// Restrict to these models (paper names); empty = binary default.
    pub models: Vec<String>,
    /// Restrict to these datasets by name; empty = binary default.
    pub datasets: Vec<String>,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            scale: 0.002,
            seeds: 3,
            max_epochs: 10,
            batch_size: 100,
            timeout: Duration::from_secs(300),
            rank_negatives: 20,
            models: Vec::new(),
            datasets: Vec::new(),
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Protocol {
    /// Parse `--scale --seeds --epochs --batch --timeout-secs --models a,b
    /// --datasets x,y --out dir --quick` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut p = Protocol::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let next = |i: &mut usize| -> String {
                *i += 1;
                args.get(*i)
                    .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
                    .clone()
            };
            match args[i].as_str() {
                "--scale" => p.scale = next(&mut i).parse().expect("--scale"),
                "--seeds" => p.seeds = next(&mut i).parse().expect("--seeds"),
                "--epochs" => p.max_epochs = next(&mut i).parse().expect("--epochs"),
                "--batch" => p.batch_size = next(&mut i).parse().expect("--batch"),
                "--timeout-secs" => {
                    p.timeout = Duration::from_secs(next(&mut i).parse().expect("--timeout-secs"))
                }
                "--rank-negs" => p.rank_negatives = next(&mut i).parse().expect("--rank-negs"),
                "--models" => p.models = next(&mut i).split(',').map(str::to_string).collect(),
                "--datasets" => p.datasets = next(&mut i).split(',').map(str::to_string).collect(),
                "--out" => p.out_dir = PathBuf::from(next(&mut i)),
                "--quick" => {
                    p.scale = 0.001;
                    p.seeds = 1;
                    p.max_epochs = 4;
                }
                other => panic!("unknown argument {other:?}"),
            }
            i += 1;
        }
        p
    }

    /// Datasets selected by `--datasets`, defaulting to the given list.
    pub fn select_datasets(&self, default: &[BenchDataset]) -> Vec<BenchDataset> {
        if self.datasets.is_empty() {
            return default.to_vec();
        }
        let mut all: Vec<BenchDataset> = BenchDataset::all15();
        all.extend(BenchDataset::new6());
        self.datasets
            .iter()
            .filter_map(|n| {
                all.iter()
                    .find(|d| n.eq_ignore_ascii_case(d.name()))
                    .copied()
            })
            .collect()
    }

    /// Models selected by `--models`, defaulting to the given list.
    pub fn select_models(&self, default: &[&str]) -> Vec<String> {
        if self.models.is_empty() {
            default.iter().map(|s| s.to_string()).collect()
        } else {
            self.models.clone()
        }
    }

    /// Training configuration for one seed run.
    pub fn train_config(&self, seed: u64) -> TrainConfig {
        TrainConfig {
            batch_size: self.batch_size,
            max_epochs: self.max_epochs,
            patience: 3,
            tolerance: 1e-3,
            timeout: self.timeout,
            seed,
            neg_strategy: NegativeStrategy::Random,
            rank_negatives: self.rank_negatives,
            paged_store: None,
        }
    }

    /// Model hyperparameters for one seed run — slightly smaller than the
    /// library defaults so the full 7×15×3-seed sweep stays tractable on
    /// one CPU core (raise via `ModelConfig::default()` for bigger runs).
    pub fn model_config(&self, seed: u64) -> ModelConfig {
        ModelConfig {
            seed,
            embed_dim: 32,
            time_dim: 12,
            neighbors: 5,
            layers: 2,
            walks: 3,
            walk_len: 2,
            ..ModelConfig::default()
        }
    }
}

/// One seed run of one LP job on a preset dataset.
pub fn run_lp_seed(
    model_name: &str,
    dataset: BenchDataset,
    protocol: &Protocol,
    seed: u64,
) -> LinkPredictionRun {
    let graph = dataset.config(protocol.scale, seed ^ 0xda7a).generate();
    run_lp_seed_on(model_name, &graph, protocol, seed)
}

/// Same, on a pre-built graph (density/ablation harnesses build their own).
pub fn run_lp_seed_on(
    model_name: &str,
    graph: &TemporalGraph,
    protocol: &Protocol,
    seed: u64,
) -> LinkPredictionRun {
    let split = LinkPredSplit::new(graph, seed);
    let mut model = benchtemp_models::zoo::build(model_name, protocol.model_config(seed), graph);
    train_link_prediction(model.as_mut(), graph, &split, &protocol.train_config(seed))
}

/// Aggregated (mean ± std) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cell {
    pub mean: f64,
    pub std: f64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        json!({ "mean": self.mean, "std": self.std })
    }
}

impl Cell {
    pub fn from_values(values: &[f64]) -> Self {
        let (mean, std) = benchtemp_core::evaluator::mean_std(values);
        Cell { mean, std }
    }

    pub fn fmt(&self) -> String {
        format!("{:.4}±{:.4}", self.mean, self.std)
    }
}

/// Render an aligned text table.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let w = widths.get(i).copied().unwrap_or(8) + 2;
                let pad = w.saturating_sub(c.chars().count());
                format!("{c}{}", " ".repeat(pad))
            })
            .collect::<String>()
    };
    let mut out = format!("\n== {title} ==\n");
    out.push_str(&fmt_row(headers));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().min(220)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Write a serializable value as pretty JSON under the given directory.
/// Minimal wall-clock micro-benchmark harness for the `harness = false`
/// benches and the kernel-throughput binary. Auto-calibrates the iteration
/// count from one warm-up pass, then reports the median over several
/// samples — robust to scheduler noise without external crates.
pub mod timing {
    use std::time::{Duration, Instant};

    /// Samples taken per measurement; the median is reported.
    const SAMPLES: usize = 7;
    /// Minimum wall time per sample, so short kernels are timed in bulk.
    const MIN_SAMPLE: Duration = Duration::from_millis(40);

    /// Time `f`, print `name` with the result, and return ns/iter.
    pub fn run<T, F: FnMut() -> T>(name: &str, mut f: F) -> f64 {
        let ns = measure(&mut f);
        println!("{name:<48} {ns:>14.0} ns/iter");
        ns
    }

    /// Median ns/iter of `f` without printing.
    pub fn measure<T, F: FnMut() -> T>(f: &mut F) -> f64 {
        // Warm-up doubles as calibration.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed();
        let iters = (MIN_SAMPLE.as_secs_f64() / once.as_secs_f64().max(1e-9))
            .ceil()
            .clamp(1.0, 1e7) as u64;
        let mut samples = [0.0f64; SAMPLES];
        for s in samples.iter_mut() {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            *s = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        }
        samples.sort_by(f64::total_cmp);
        samples[SAMPLES / 2]
    }

    /// Median ns/iter of `a` and `b`, interleaved: each sample round times
    /// a bulk of `a` immediately followed by a bulk of `b`, so slow
    /// machine-wide drift (the dominant noise on a shared runner) lands on
    /// both sides of an A/B comparison instead of biasing whichever path
    /// happened to be measured later.
    pub fn measure_paired<T, U, A: FnMut() -> T, B: FnMut() -> U>(
        a: &mut A,
        b: &mut B,
    ) -> (f64, f64) {
        // Warm-up doubles as per-side calibration.
        let start = Instant::now();
        std::hint::black_box(a());
        let once_a = start.elapsed();
        let start = Instant::now();
        std::hint::black_box(b());
        let once_b = start.elapsed();
        let iters = |once: Duration| {
            (MIN_SAMPLE.as_secs_f64() / once.as_secs_f64().max(1e-9))
                .ceil()
                .clamp(1.0, 1e7) as u64
        };
        let (ia, ib) = (iters(once_a), iters(once_b));
        let mut sa = [0.0f64; SAMPLES];
        let mut sb = [0.0f64; SAMPLES];
        for (ra, rb) in sa.iter_mut().zip(sb.iter_mut()) {
            let start = Instant::now();
            for _ in 0..ia {
                std::hint::black_box(a());
            }
            *ra = start.elapsed().as_secs_f64() * 1e9 / ia as f64;
            let start = Instant::now();
            for _ in 0..ib {
                std::hint::black_box(b());
            }
            *rb = start.elapsed().as_secs_f64() * 1e9 / ib as f64;
        }
        sa.sort_by(f64::total_cmp);
        sb.sort_by(f64::total_cmp);
        (sa[SAMPLES / 2], sb[SAMPLES / 2])
    }
}

pub fn save_json<T: ToJson + ?Sized>(dir: &Path, name: &str, value: &T) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, value.to_json().to_string_pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[saved] {}", path.display());
}

/// Mark the best / second-best cells, mirroring the paper's bold-red /
/// underlined-blue convention (second suppressed when the gap > 0.05).
pub fn mark_best(cells: &mut [String], means: &[f64]) {
    if means.is_empty() {
        return;
    }
    let mut idx: Vec<usize> = (0..means.len()).collect();
    idx.sort_by(|&a, &b| {
        means[b]
            .partial_cmp(&means[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let best = idx[0];
    cells[best] = format!("**{}**", cells[best]);
    if idx.len() > 1 {
        let second = idx[1];
        if means[best] - means[second] <= 0.05 {
            cells[second] = format!("_{}_", cells[second]);
        }
    }
}

/// Aggregating (row × col) table over seed values, rendered with per-row
/// best/second-best markers.
#[derive(Default)]
pub struct TableBuilder {
    rows: Vec<String>,
    cols: Vec<String>,
    values: BTreeMap<(String, String), Vec<f64>>,
}

impl TableBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, row: &str, col: &str, value: f64) {
        if !self.rows.iter().any(|r| r == row) {
            self.rows.push(row.to_string());
        }
        if !self.cols.iter().any(|c| c == col) {
            self.cols.push(col.to_string());
        }
        self.values
            .entry((row.to_string(), col.to_string()))
            .or_default()
            .push(value);
    }

    pub fn cell(&self, row: &str, col: &str) -> Option<Cell> {
        self.values
            .get(&(row.to_string(), col.to_string()))
            .map(|v| Cell::from_values(v))
    }

    pub fn cols(&self) -> &[String] {
        &self.cols
    }

    pub fn rows(&self) -> &[String] {
        &self.rows
    }

    /// Render with per-row best/second-best marking (higher is better).
    pub fn render(&self, title: &str, row_header: &str) -> String {
        self.render_with(title, row_header, true)
    }

    /// Render without markers (efficiency tables where lower is better).
    pub fn render_plain(&self, title: &str, row_header: &str) -> String {
        self.render_with(title, row_header, false)
    }

    fn render_with(&self, title: &str, row_header: &str, mark: bool) -> String {
        let mut headers = vec![row_header.to_string()];
        headers.extend(self.cols.clone());
        let mut rows = Vec::new();
        for r in &self.rows {
            let cells: Vec<Cell> = self
                .cols
                .iter()
                .map(|c| self.cell(r, c).unwrap_or_default())
                .collect();
            let means: Vec<f64> = cells.iter().map(|c| c.mean).collect();
            let mut texts: Vec<String> = cells.iter().map(Cell::fmt).collect();
            if mark {
                mark_best(&mut texts, &means);
            }
            let mut row = vec![r.clone()];
            row.extend(texts);
            rows.push(row);
        }
        render_table(title, &headers, &rows)
    }

    /// Flatten to serializable entries.
    pub fn to_entries(&self) -> Vec<TableEntry> {
        self.values
            .iter()
            .map(|((row, col), vals)| {
                let c = Cell::from_values(vals);
                TableEntry {
                    row: row.clone(),
                    col: col.clone(),
                    mean: c.mean,
                    std: c.std,
                    runs: vals.len(),
                }
            })
            .collect()
    }
}

/// Serializable table cell.
#[derive(Clone, Debug)]
pub struct TableEntry {
    pub row: String,
    pub col: String,
    pub mean: f64,
    pub std: f64,
    pub runs: usize,
}

impl ToJson for TableEntry {
    fn to_json(&self) -> Json {
        json!({
            "row": self.row.as_str(),
            "col": self.col.as_str(),
            "mean": self.mean,
            "std": self.std,
            "runs": self.runs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builder_aggregates_and_marks() {
        let mut t = TableBuilder::new();
        t.add("Reddit", "TGN", 0.9);
        t.add("Reddit", "TGN", 0.92);
        t.add("Reddit", "CAWN", 0.95);
        let text = t.render("demo", "Dataset");
        assert!(text.contains("**0.9500"));
        assert!(text.contains("_0.91"));
        let entries = t.to_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries.iter().find(|e| e.col == "TGN").unwrap().runs, 2);
    }

    #[test]
    fn mark_best_suppresses_far_second() {
        let mut cells = vec!["a".into(), "b".into()];
        mark_best(&mut cells, &[0.95, 0.5]);
        assert_eq!(cells, vec!["**a**".to_string(), "b".to_string()]);
    }

    #[test]
    fn render_table_aligns() {
        let text = render_table(
            "t",
            &["A".into(), "B".into()],
            &[vec!["x".into(), "longer".into()]],
        );
        assert!(text.contains("== t =="));
        assert!(text.contains("longer"));
    }

    #[test]
    fn protocol_defaults_match_paper_protocol() {
        let p = Protocol::default();
        assert_eq!(p.seeds, 3);
        let tc = p.train_config(7);
        assert_eq!(tc.patience, 3);
        assert_eq!(tc.tolerance, 1e-3);
        assert_eq!(tc.seed, 7);
    }

    #[test]
    fn dataset_selection_by_name() {
        let p = Protocol {
            datasets: vec!["mooc".into(), "Enron".into()],
            ..Default::default()
        };
        let sel = p.select_datasets(&BenchDataset::all15());
        assert_eq!(sel.len(), 2);
    }
}
