//! Table 1 — anatomy of the TGNN models, derived from each model's
//! `Anatomy` implementation; plus the Table 8/9 dimension parameters
//! (node/edge/time/positional dims per dataset under Eq. 1).

use benchtemp_bench::{render_table, save_json, Protocol};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let demo = BenchDataset::Wikipedia.config(0.005, 1).generate();

    // ---- Table 1 ----
    let headers: Vec<String> = [
        "Model",
        "Memory",
        "Attention",
        "RNN",
        "TempWalk",
        "Scalability",
        "Supervised",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let tick = |b: bool| if b { "✓" } else { "" }.to_string();
    let mut rows = Vec::new();
    for name in zoo::PAPER_MODELS
        .iter()
        .chain(["TeMP", "EdgeBank", "SnapshotGNN"].iter())
    {
        let model = zoo::build(
            name,
            ModelConfig {
                embed_dim: 8,
                ..Default::default()
            },
            &demo,
        );
        let a = model.anatomy();
        rows.push(vec![
            name.to_string(),
            tick(a.memory),
            tick(a.attention),
            tick(a.rnn),
            tick(a.temp_walk),
            tick(a.scalability),
            a.supervision.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table("Table 1: anatomy of TGNN models", &headers, &rows)
    );

    // ---- Tables 8/9: per-dataset dimension parameters ----
    // d_n = d_time = 172 everywhere; d_e per Table 8; n_head chosen so that
    // Eq. 1 ((d_n + d_e + d_time + d_pos) % n_head == 0) holds; CAWN fixes
    // n_head = 2 and adjusts d_pos.
    let headers: Vec<String> = [
        "Dataset",
        "d_n",
        "d_e",
        "d_time",
        "TGAT d_pos",
        "TGAT heads",
        "CAWN d_pos",
        "CAWN heads",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut dim_report = Vec::new();
    for d in BenchDataset::all15() {
        let (dn, dtime) = (172usize, 172usize);
        let de = d.edge_dim();
        // TGAT: d_pos = 172; heads = 2 if the sum divides, else 1.
        let tgat_pos = 172usize;
        let tgat_heads = if (dn + de + dtime + tgat_pos).is_multiple_of(2) {
            2
        } else {
            1
        };
        // CAWN: heads fixed at 2; pick the d_pos that makes the sum even.
        let cawn_heads = 2usize;
        let base = dn + de + dtime;
        let cawn_pos = if (base + 100).is_multiple_of(cawn_heads) {
            100
        } else {
            103
        };
        assert_eq!(
            (dn + de + dtime + cawn_pos) % cawn_heads,
            0,
            "Eq. 1 violated"
        );
        rows.push(vec![
            d.name().to_string(),
            dn.to_string(),
            de.to_string(),
            dtime.to_string(),
            tgat_pos.to_string(),
            tgat_heads.to_string(),
            cawn_pos.to_string(),
            cawn_heads.to_string(),
        ]);
        dim_report.push(json!({
            "dataset": d.name(), "d_n": dn, "d_e": de, "d_time": dtime,
            "tgat_heads": tgat_heads, "cawn_d_pos": cawn_pos,
        }));
    }
    println!(
        "{}",
        render_table(
            "Tables 8/9: attention dimension parameters (Eq. 1)",
            &headers,
            &rows
        )
    );
    save_json(&protocol.out_dir, "anatomy_dims.json", &dim_report);
}
