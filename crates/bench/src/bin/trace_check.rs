//! CI smoke check for the JSONL trace stream (DESIGN.md §9).
//!
//! Run with `BENCHTEMP_TRACE=/path/to/trace.jsonl`: trains a tiny TGN
//! link-prediction job with the env-driven sink live, then re-reads the
//! stream and fails unless
//!
//! * every line parses as JSON with a known `ev` kind,
//! * every span open has a matching close (paired by `tid`+`sid`),
//! * all protocol stages appear, including the nested model-level
//!   `dense`/`sampling` spans, and
//! * a final counters snapshot was emitted.
//!
//! Exits non-zero with a message on any violation; prints `TRACE_CHECK_OK`
//! on success so `ci.sh` can grep for it.

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_core::NegativeStrategy;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;
use benchtemp_util::json;

fn main() {
    let path = std::env::var("BENCHTEMP_TRACE").unwrap_or_else(|_| {
        eprintln!("trace_check: set BENCHTEMP_TRACE=<path> before running");
        std::process::exit(2);
    });

    // A tiny but real job: TGN exercises the sampler, the tape, and the
    // pool, so the trace covers every span source in the pipeline.
    let mut gen = GeneratorConfig::small("trace-check", 2024);
    gen.num_edges = 800;
    let graph = gen.generate();
    let split = LinkPredSplit::new(&graph, 13);
    let model_cfg = ModelConfig {
        embed_dim: 16,
        time_dim: 8,
        neighbors: 3,
        layers: 1,
        seed: 13,
        ..Default::default()
    };
    let mut model = zoo::build("TGN", model_cfg, &graph);
    let cfg = TrainConfig {
        batch_size: 200,
        max_epochs: 2,
        patience: 10,
        tolerance: 1e-9,
        timeout: Duration::from_secs(600),
        seed: 13,
        neg_strategy: NegativeStrategy::Random,
        rank_negatives: 0,
        paged_store: None,
    };
    let run = train_link_prediction(model.as_mut(), &graph, &split, &cfg);
    assert!(run.transductive.n_edges > 0, "smoke job scored no edges");
    benchtemp_obs::trace::flush();

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("trace_check: cannot read {path}: {e}"));
    assert!(!text.is_empty(), "trace file {path} is empty");

    let mut open: HashMap<(u64, u64), String> = HashMap::new();
    let mut spans_seen: HashSet<String> = HashSet::new();
    let mut counters_seen = false;
    let mut events = 0usize;
    for line in text.lines() {
        let ev =
            json::parse(line).unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e:?}"));
        events += 1;
        let key = || {
            (
                ev.get("tid").and_then(|v| v.as_u64()).expect("tid"),
                ev.get("sid").and_then(|v| v.as_u64()).expect("sid"),
            )
        };
        match ev.get("ev").and_then(|v| v.as_str()) {
            Some("open") => {
                let span = ev.get("span").unwrap().as_str().unwrap().to_string();
                spans_seen.insert(span.clone());
                assert!(
                    open.insert(key(), span).is_none(),
                    "duplicate span open in {line:?}"
                );
            }
            Some("close") => {
                assert!(ev.get("dur_us").and_then(|v| v.as_u64()).is_some());
                assert!(
                    open.remove(&key()).is_some(),
                    "close without matching open in {line:?}"
                );
            }
            Some("counters") => {
                counters_seen = true;
                assert!(
                    ev.get("negatives_sampled")
                        .and_then(|v| v.as_u64())
                        .is_some(),
                    "counters event missing negatives_sampled: {line:?}"
                );
            }
            other => panic!("unknown trace event kind {other:?} in {line:?}"),
        }
    }
    assert!(
        open.is_empty(),
        "unclosed spans in trace: {:?}",
        open.values().collect::<Vec<_>>()
    );
    assert!(counters_seen, "no counters snapshot in trace");
    for required in [
        stage::SETUP,
        stage::TRAIN_EPOCH,
        stage::VAL_SCORING,
        stage::TEST_SCORING,
        stage::FINAL_METRICS,
        stage::DENSE,
        stage::SAMPLING,
    ] {
        assert!(
            spans_seen.contains(required),
            "required stage {required:?} missing from trace (saw {spans_seen:?})"
        );
    }

    println!(
        "TRACE_CHECK_OK: {events} events, {} distinct spans",
        spans_seen.len()
    );
}
