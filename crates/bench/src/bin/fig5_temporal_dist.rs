//! Figures 5, 8, 9 — the temporal distribution of edges per dataset,
//! rendered as ASCII sparkbars with the 70/15/15 split boundaries marked
//! (Figs. 8/9 overlay the train/val/test split on CanParl and MOOC).

use benchtemp_bench::{save_json, Protocol};
use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::stats::{sparkline, temporal_histogram};
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let bins = 60;
    let mut report = Vec::new();

    println!("\n== Fig. 5: temporal distribution of edges ({bins} bins) ==");
    for d in protocol.select_datasets(&BenchDataset::all15()) {
        let g = d.config(protocol.scale, 42).generate();
        let hist = temporal_histogram(&g, bins);
        println!("{:>12} {}", d.name(), sparkline(&hist));
        report.push(json!({ "dataset": d.name(), "histogram": hist }));
    }

    println!("\n== Figs. 8/9: edge-count distribution with split boundaries ==");
    for d in [BenchDataset::CanParl, BenchDataset::Mooc] {
        let g = d.config(protocol.scale, 42).generate();
        let hist = temporal_histogram(&g, bins);
        let split = LinkPredSplit::new(&g, 0);
        let (lo, hi) = g.time_span();
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mark = |t: f64| (((t - lo) / span) * bins as f64) as usize;
        let (v, te) = (
            mark(split.val_time).min(bins - 1),
            mark(split.test_time).min(bins - 1),
        );
        let mut ruler: Vec<char> = vec![' '; bins];
        ruler[v] = 'V';
        ruler[te] = 'T';
        println!("{:>12} {}", d.name(), sparkline(&hist));
        println!(
            "{:>12} {}   (V = val boundary, T = test boundary)",
            "",
            ruler.iter().collect::<String>()
        );
    }

    save_json(&protocol.out_dir, "fig5_temporal_dist.json", &report);
}
