//! The main link-prediction benchmark: 7 TGNN models × 15 datasets × 4
//! settings × N seeds. One set of runs regenerates, exactly as in the
//! paper where they come from the same jobs:
//!
//! * **Table 3** — ROC AUC per setting,
//! * **Table 10** — AP per setting,
//! * **Table 4** — runtime/epoch, epochs to convergence, peak RSS, model
//!   state bytes (GPU-memory analogue),
//! * **Table 11** — compute-utilization proxy (GPU-utilization analogue),
//! * **Fig. 7** — inference seconds per 100k edges.
//!
//! Timeouts are marked the way the paper marks them ("x" / "—").

use benchtemp_bench::{run_lp_seed, save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo::PAPER_MODELS;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&PAPER_MODELS);
    let datasets = protocol.select_datasets(&BenchDataset::all15());

    // (setting → AUC table), (setting → AP table), efficiency tables.
    let mut auc: Vec<(Setting, TableBuilder)> = Setting::all()
        .iter()
        .map(|&s| (s, TableBuilder::new()))
        .collect();
    let mut ap: Vec<(Setting, TableBuilder)> = Setting::all()
        .iter()
        .map(|&s| (s, TableBuilder::new()))
        .collect();
    // Filtered-negative ranking tables (one per setting per metric),
    // populated only when the protocol runs with `--rank-negs > 0`.
    let per_setting = || -> Vec<(Setting, TableBuilder)> {
        Setting::all()
            .iter()
            .map(|&s| (s, TableBuilder::new()))
            .collect()
    };
    let mut mrr = per_setting();
    let mut hits1 = per_setting();
    let mut hits3 = per_setting();
    let mut hits10 = per_setting();
    let mut runtime = TableBuilder::new();
    let mut epochs = TableBuilder::new();
    let mut rss = TableBuilder::new();
    let mut state = TableBuilder::new();
    let mut util = TableBuilder::new();
    let mut inference = TableBuilder::new();
    let mut raw_runs = Vec::new();

    let total_jobs = models.len() * datasets.len() * protocol.seeds;
    let mut done = 0usize;
    for &dataset in &datasets {
        for model in &models {
            for seed in 0..protocol.seeds as u64 {
                let run = run_lp_seed(model, dataset, &protocol, seed);
                done += 1;
                eprintln!(
                    "[{done}/{total_jobs}] {model} on {} seed {seed}: trans AUC {:.4}{}",
                    dataset.name(),
                    run.transductive.auc,
                    if run.efficiency.timed_out {
                        " (timeout)"
                    } else {
                        ""
                    }
                );
                let ds = dataset.name();
                for (setting, table) in auc.iter_mut() {
                    table.add(ds, model, run.metrics_for(*setting).auc);
                }
                for (setting, table) in ap.iter_mut() {
                    table.add(ds, model, run.metrics_for(*setting).ap);
                }
                for (tables, pick) in [
                    (
                        &mut mrr,
                        (|r| r.mrr) as fn(&benchtemp_core::RankingMetrics) -> f64,
                    ),
                    (&mut hits1, |r| r.hits_at_1),
                    (&mut hits3, |r| r.hits_at_3),
                    (&mut hits10, |r| r.hits_at_10),
                ] {
                    for (setting, table) in tables.iter_mut() {
                        if let Some(r) = &run.metrics_for(*setting).ranking {
                            table.add(ds, model, pick(r));
                        }
                    }
                }
                runtime.add(ds, model, run.efficiency.runtime_per_epoch_secs);
                epochs.add(ds, model, run.efficiency.epochs_to_converge as f64);
                if let Some(b) = run.efficiency.peak_rss_bytes {
                    rss.add(ds, model, b as f64 / 1e6);
                }
                state.add(ds, model, run.efficiency.model_state_bytes as f64 / 1e6);
                util.add(ds, model, run.efficiency.compute_utilization * 100.0);
                inference.add(ds, model, run.efficiency.inference_secs_per_100k);
                raw_runs.push(run);
            }
        }
    }

    for (setting, table) in &auc {
        println!(
            "{}",
            table.render(
                &format!("Table 3 ({}) — ROC AUC", setting.name()),
                "Dataset"
            )
        );
    }
    for (setting, table) in &ap {
        println!(
            "{}",
            table.render(&format!("Table 10 ({}) — AP", setting.name()), "Dataset")
        );
    }
    for (setting, table) in &mrr {
        if !table.rows().is_empty() {
            println!(
                "{}",
                table.render(
                    &format!(
                        "Ranking ({}) — filtered-negative MRR (K={})",
                        setting.name(),
                        protocol.rank_negatives
                    ),
                    "Dataset"
                )
            );
        }
    }
    for (setting, table) in &hits10 {
        if !table.rows().is_empty() {
            println!(
                "{}",
                table.render(
                    &format!("Ranking ({}) — Hits@10", setting.name()),
                    "Dataset"
                )
            );
        }
    }
    println!(
        "{}",
        runtime.render_plain("Table 4 — Runtime (s/epoch)", "Dataset")
    );
    println!(
        "{}",
        epochs.render_plain("Table 4 — Epochs to convergence", "Dataset")
    );
    println!("{}", rss.render_plain("Table 4 — Peak RSS (MB)", "Dataset"));
    println!(
        "{}",
        state.render_plain("Table 4 — Model state (MB, GPU-memory analogue)", "Dataset")
    );
    println!(
        "{}",
        util.render("Table 11 — Compute utilization (%)", "Dataset")
    );
    println!(
        "{}",
        inference.render_plain("Fig. 7 — Inference seconds per 100k edges", "Dataset")
    );

    save_json(
        &protocol.out_dir,
        "table3_auc.json",
        &auc.iter()
            .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
            .collect::<Vec<_>>(),
    );
    save_json(
        &protocol.out_dir,
        "table10_ap.json",
        &ap.iter()
            .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
            .collect::<Vec<_>>(),
    );
    save_json(
        &protocol.out_dir,
        "table4_efficiency.json",
        &json!({
            "runtime_s_per_epoch": runtime.to_entries(),
            "epochs": epochs.to_entries(),
            "peak_rss_mb": rss.to_entries(),
            "model_state_mb": state.to_entries(),
            "table11_utilization_pct": util.to_entries(),
            "fig7_inference_s_per_100k": inference.to_entries(),
        }),
    );
    save_json(
        &protocol.out_dir,
        "table3_ranking.json",
        &json!({
            "rank_negatives": protocol.rank_negatives,
            "mrr": mrr
                .iter()
                .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
                .collect::<Vec<_>>(),
            "hits_at_1": hits1
                .iter()
                .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
                .collect::<Vec<_>>(),
            "hits_at_3": hits3
                .iter()
                .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
                .collect::<Vec<_>>(),
            "hits_at_10": hits10
                .iter()
                .map(|(s, t)| json!({ "setting": s.name(), "cells": t.to_entries() }))
                .collect::<Vec<_>>(),
        }),
    );
    save_json(&protocol.out_dir, "table3_raw_runs.json", &raw_runs);
}
