//! Tables 24 & 25 — graph density vs CAWN quality (Appendix I): sample two
//! random subgraphs of the MOOC-style dataset with a constant edge count
//! N_e but different temporal densities σ = N_e / (N_u · N_i); the temporal
//! walk mechanism should do visibly better on the denser subgraph.

use benchtemp_bench::{render_table, run_lp_seed_on, save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_tensor::Matrix;
use benchtemp_util::{json, Json, ToJson};

/// Restrict a bipartite graph to its `top_items` most frequent items and
/// truncate to `n_edges` events, remapping node ids to a contiguous range.
fn subgraph(graph: &TemporalGraph, top_items: usize, n_edges: usize, name: &str) -> TemporalGraph {
    let mut item_freq = vec![0usize; graph.num_nodes];
    for ev in &graph.events {
        item_freq[ev.dst] += 1;
    }
    let mut items: Vec<usize> = (graph.num_users..graph.num_nodes).collect();
    items.sort_by_key(|&i| std::cmp::Reverse(item_freq[i]));
    items.truncate(top_items);
    let keep: std::collections::HashSet<usize> = items.into_iter().collect();

    let events: Vec<Interaction> = graph
        .events
        .iter()
        .filter(|e| keep.contains(&e.dst))
        .take(n_edges)
        .copied()
        .collect();
    // Remap: users first (contiguous), then items.
    let mut user_map = std::collections::HashMap::new();
    let mut item_map = std::collections::HashMap::new();
    for ev in &events {
        let n = user_map.len();
        user_map.entry(ev.src).or_insert(n);
    }
    let num_users = user_map.len();
    for ev in &events {
        let n = num_users + item_map.len();
        item_map.entry(ev.dst).or_insert(n);
    }
    let num_nodes = num_users + item_map.len();
    let mut node_features = Matrix::zeros(num_nodes, graph.node_dim());
    for (&old, &new) in user_map.iter().chain(item_map.iter()) {
        node_features.set_row(new, graph.node_features.row(old));
    }
    let mut edge_features = Matrix::zeros(events.len(), graph.edge_dim());
    let events: Vec<Interaction> = events
        .into_iter()
        .enumerate()
        .map(|(r, ev)| {
            edge_features.set_row(r, graph.edge_features.row(ev.feat_idx));
            Interaction {
                src: user_map[&ev.src],
                dst: item_map[&ev.dst],
                t: ev.t,
                feat_idx: r,
            }
        })
        .collect();
    let sub = TemporalGraph {
        name: name.to_string(),
        bipartite: true,
        num_nodes,
        num_users,
        events,
        edge_features,
        node_features,
        labels: None,
    };
    assert_eq!(sub.validate(), Ok(()));
    sub
}

fn density(g: &TemporalGraph) -> f64 {
    let items = g.num_nodes - g.num_users;
    g.num_events() as f64 / (g.num_users as f64 * items as f64)
}

fn main() {
    let protocol = Protocol::from_args();
    // A denser base graph so the sparse subgraph is still connected enough.
    let mut base_cfg = BenchDataset::Mooc.config((protocol.scale * 4.0).min(1.0), 0x900c);
    base_cfg.num_items = base_cfg.num_items.max(40);
    let base = base_cfg.generate();
    let n_edges = base.num_events() / 3;
    let items = base.num_nodes - base.num_users;
    let g_s1 = subgraph(&base, (items / 8).max(3), n_edges, "G_S1-dense");
    let g_s2 = subgraph(&base, items, n_edges, "G_S2-sparse");

    let headers: Vec<String> = ["Subgraph", "N_e", "N_u", "N_i", "σ (density)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows = [&g_s1, &g_s2]
        .iter()
        .map(|g| {
            vec![
                g.name.clone(),
                g.num_events().to_string(),
                g.num_users.to_string(),
                (g.num_nodes - g.num_users).to_string(),
                format!("{:.4}", density(g)),
            ]
        })
        .collect::<Vec<_>>();
    println!(
        "{}",
        render_table("Table 24 — sampled subgraph parameters", &headers, &rows)
    );
    assert!(
        density(&g_s1) > density(&g_s2),
        "G_S1 must be denser than G_S2"
    );

    let mut auc = TableBuilder::new();
    let mut ap = TableBuilder::new();
    for g in [&g_s1, &g_s2] {
        for seed in 0..protocol.seeds as u64 {
            let run = run_lp_seed_on("CAWN", g, &protocol, seed);
            eprintln!(
                "CAWN on {} seed {seed}: trans AUC {:.4}",
                g.name, run.transductive.auc
            );
            for setting in Setting::all() {
                let m = run.metrics_for(setting);
                auc.add(&g.name, setting.name(), m.auc);
                ap.add(&g.name, setting.name(), m.ap);
            }
        }
    }
    println!(
        "{}",
        auc.render_plain("Table 25 — CAWN ROC AUC vs subgraph density", "Subgraph")
    );
    println!(
        "{}",
        ap.render_plain("Table 25 — CAWN AP vs subgraph density", "Subgraph")
    );
    // Dataset names are dynamic keys, so this object is built directly.
    let densities = Json::Obj(vec![
        (g_s1.name.clone(), density(&g_s1).to_json()),
        (g_s2.name.clone(), density(&g_s2).to_json()),
    ]);
    save_json(
        &protocol.out_dir,
        "table25_density.json",
        &json!({
            "densities": densities,
            "auc": auc.to_entries(),
            "ap": ap.to_entries(),
        }),
    );
}
