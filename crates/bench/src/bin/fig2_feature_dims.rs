//! Fig. 2 — link-prediction ROC AUC on a MOOC-style dataset as the initial
//! node-feature dimension sweeps 4 → 172: the experiment behind the paper's
//! decision to standardize on 172 dims (§3.1).

use benchtemp_bench::{save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::train_link_prediction;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::features::{figure2_dims, FeatureInit};
use benchtemp_models::zoo;

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&["JODIE", "TGN", "TGAT", "NAT"]);
    let mut table = TableBuilder::new();

    for dim in figure2_dims() {
        for model_name in &models {
            for seed in 0..protocol.seeds as u64 {
                let mut cfg = BenchDataset::Mooc.config(protocol.scale, seed ^ 0xf19);
                cfg.node_dim = dim;
                cfg.node_feature_init = FeatureInit::RandomFixed {
                    seed: seed ^ 0x5eed,
                    std: 0.1,
                };
                let graph = cfg.generate();
                let split = LinkPredSplit::new(&graph, seed);
                let mut model = zoo::build(model_name, protocol.model_config(seed), &graph);
                let run = train_link_prediction(
                    model.as_mut(),
                    &graph,
                    &split,
                    &protocol.train_config(seed),
                );
                eprintln!(
                    "dim {dim}: {model_name} seed {seed} AUC {:.4}",
                    run.transductive.auc
                );
                table.add(&format!("dim={dim}"), model_name, run.transductive.auc);
            }
        }
    }

    println!(
        "{}",
        table.render(
            "Fig. 2 — MOOC LP ROC AUC vs initial node-feature dimension",
            "Node dim"
        )
    );
    save_json(
        &protocol.out_dir,
        "fig2_feature_dims.json",
        &table.to_entries(),
    );
}
