//! Table 22 — dynamic node classification with multiple labels on the
//! DGraphFin-style dataset (4 classes: normal / fraud / two background
//! tiers): Accuracy and support-weighted Precision / Recall / F1
//! (Appendix G formulas).

use benchtemp_bench::{save_json, Protocol, TableBuilder};
use benchtemp_core::pipeline::train_node_classification;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo::{self, PAPER_MODELS};

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&PAPER_MODELS);
    let mut table = TableBuilder::new();

    for model_name in &models {
        for seed in 0..protocol.seeds as u64 {
            let graph = BenchDataset::DGraphFin
                .config(protocol.scale, seed ^ 0xda7a)
                .generate();
            let split = benchtemp_core::dataloader::LinkPredSplit::new(&graph, seed);
            let mut model = zoo::build(model_name, protocol.model_config(seed), &graph);
            let _ = benchtemp_core::pipeline::train_link_prediction(
                model.as_mut(),
                &graph,
                &split,
                &protocol.train_config(seed),
            );
            let run =
                train_node_classification(model.as_mut(), &graph, &protocol.train_config(seed));
            let m = run.multiclass.expect("DGraphFin is multi-class");
            eprintln!(
                "{model_name} seed {seed}: acc {:.4} f1w {:.4}",
                m.accuracy, m.f1_weighted
            );
            table.add("Accuracy", model_name, m.accuracy);
            table.add("Precision", model_name, m.precision_weighted);
            table.add("Recall", model_name, m.recall_weighted);
            table.add("F1", model_name, m.f1_weighted);
        }
    }

    println!(
        "{}",
        table.render(
            "Table 22 — multi-label node classification on DGraphFin",
            "Metric"
        )
    );
    save_json(
        &protocol.out_dir,
        "table22_multilabel.json",
        &table.to_entries(),
    );
}
