//! Kernel-throughput benchmark: compares the register-blocked matmul
//! against the seed's branchy kernel (reproduced inline below as the
//! baseline), measures pipeline-eval throughput at one vs four worker
//! threads, and benchmarks the CSR neighbor-sampling engine against the
//! seed's `Vec<Vec<_>>` layout — asserting the runtime's determinism
//! contracts along the way: eval metrics and frontier samples must be
//! bit-identical at any thread count.
//!
//! The pool reads `BENCHTEMP_THREADS` once per process, so each thread
//! count runs in a child process (this same binary, re-invoked with
//! `BENCHTEMP_KERNELS_CHILD=1`). The parent merges the child reports into
//! `BENCH_kernels.json`. Pass `--smoke` for a reduced-size run (used by
//! `ci.sh`) that executes every kernel and assertion but skips the JSON.

use std::process::Command;

use benchtemp_bench::{save_json, timing};
use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::efficiency::stage;
use benchtemp_core::evaluator::auc_ap_pos_neg;
use benchtemp_core::pipeline::{StreamContext, TgnnModel};
use benchtemp_core::{ranking_metrics_flat, FilteredNegativeSet, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::{
    BackendScratch, Frontier, NeighborEvent, NeighborFinder, SampleScratch, SamplingStrategy,
};
use benchtemp_graph::paged::{NeighborBackend, PagedNeighborFinder, StoreOptions};
use benchtemp_graph::temporal_graph::TemporalGraph;
use benchtemp_graph::Interaction;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;
use benchtemp_obs as obs;
use benchtemp_tensor::init::SeededRng;
use benchtemp_tensor::nn::Mlp;
use benchtemp_tensor::{fusion, init, pool, Graph, Matrix, ParamStore};
use benchtemp_util::json;

const NODE_DIM: usize = 32;
const HIDDEN: usize = 96;
const BATCH: usize = 200;
const SAMPLE_K: usize = 10;
const SAMPLE_STRATS: [SamplingStrategy; 4] = [
    SamplingStrategy::MostRecent,
    SamplingStrategy::Uniform,
    SamplingStrategy::TemporalExp { alpha: 0.05 },
    SamplingStrategy::TemporalSafe,
];

/// The seed repository's matmul, verbatim: row-major accumulation with a
/// zero-skip branch in the k loop and no register blocking. The baseline
/// the ≥2× single-thread target is measured against.
fn seed_matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    assert_eq!(lhs.cols(), rhs.rows());
    let n = rhs.cols();
    let mut out = Matrix::zeros(lhs.rows(), n);
    for i in 0..lhs.rows() {
        let a_row = lhs.row(i);
        let out_row = &mut out.row_mut(i)[..];
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = rhs.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }
    out
}

/// The seed repository's neighbor store, verbatim: one `Vec<NeighborEvent>`
/// per node (array-of-structs), with per-query weight/cumulative/result
/// allocations in `sample_before`. The baseline the CSR engine's ≥2×
/// single-thread samples/sec target is measured against.
struct SeedLayoutFinder {
    adj: Vec<Vec<NeighborEvent>>,
}

impl SeedLayoutFinder {
    fn from_graph(g: &TemporalGraph) -> Self {
        let mut adj: Vec<Vec<NeighborEvent>> = vec![Vec::new(); g.num_nodes];
        for (idx, ev) in g.events.iter().enumerate() {
            adj[ev.src].push(NeighborEvent {
                neighbor: ev.dst,
                t: ev.t,
                event_idx: idx,
            });
            adj[ev.dst].push(NeighborEvent {
                neighbor: ev.src,
                t: ev.t,
                event_idx: idx,
            });
        }
        SeedLayoutFinder { adj }
    }

    fn sample_before(
        &self,
        node: usize,
        t: f64,
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
    ) -> Vec<NeighborEvent> {
        let list = &self.adj[node];
        let hist = &list[..list.partition_point(|e| e.t < t)];
        if hist.is_empty() || k == 0 {
            return Vec::new();
        }
        match strategy {
            SamplingStrategy::MostRecent => hist[hist.len().saturating_sub(k)..].to_vec(),
            SamplingStrategy::Uniform => {
                (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect()
            }
            SamplingStrategy::TemporalExp { alpha } => {
                let weights: Vec<f64> = hist.iter().map(|e| (alpha * (e.t - t)).exp()).collect();
                seed_weighted_sample(hist, &weights, k, rng)
            }
            SamplingStrategy::TemporalSafe => {
                let weights: Vec<f64> = hist
                    .iter()
                    .map(|e| {
                        let d = t - e.t;
                        if d <= 0.0 {
                            1.0
                        } else {
                            1.0 / d
                        }
                    })
                    .collect();
                seed_weighted_sample(hist, &weights, k, rng)
            }
        }
    }
}

fn seed_weighted_sample(
    hist: &[NeighborEvent],
    weights: &[f64],
    k: usize,
    rng: &mut SeededRng,
) -> Vec<NeighborEvent> {
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        acc += if w.is_finite() { w } else { 0.0 };
        cumulative.push(acc);
    }
    if acc <= 0.0 {
        return (0..k).map(|_| hist[rng.gen_range(0..hist.len())]).collect();
    }
    (0..k)
        .map(|_| {
            let x = rng.gen_range(0.0..acc);
            let idx = cumulative.partition_point(|&c| c <= x);
            hist[idx.min(hist.len() - 1)]
        })
        .collect()
}

/// Temporal-sampling workload: one query per event endpoint at the event's
/// own timestamp (the train/eval access pattern), cycling through all four
/// strategies; plus a root set for the batched multi-hop frontier.
struct SamplingWorkload {
    graph: TemporalGraph,
    nf: NeighborFinder,
    seed_nf: SeedLayoutFinder,
    queries: Vec<(usize, f64)>,
    roots: Vec<usize>,
    root_times: Vec<f64>,
}

impl SamplingWorkload {
    fn new(smoke: bool) -> Self {
        let mut cfg = GeneratorConfig::small("sampling", 17);
        cfg.num_edges = if smoke { 2_000 } else { 20_000 };
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let seed_nf = SeedLayoutFinder::from_graph(&g);
        let queries: Vec<(usize, f64)> = g
            .events
            .iter()
            .flat_map(|e| [(e.src, e.t), (e.dst, e.t)])
            .collect();
        let n_roots = if smoke { 512 } else { 4_096 };
        let stride = (g.events.len() / n_roots).max(1);
        let picked: Vec<&benchtemp_graph::Interaction> =
            g.events.iter().step_by(stride).take(n_roots).collect();
        let roots: Vec<usize> = picked.iter().map(|e| e.src).collect();
        let root_times: Vec<f64> = picked.iter().map(|e| e.t).collect();
        SamplingWorkload {
            graph: g,
            nf,
            seed_nf,
            queries,
            roots,
            root_times,
        }
    }

    /// One pass over every query with the seed layout, cycling through
    /// `strats`. Returns the number of samples drawn (identical across
    /// layouts: same RNG seed, and the CSR engine is bit-compatible with
    /// the seed sampler).
    fn seed_pass(&self, strats: &[SamplingStrategy]) -> usize {
        let mut rng = init::rng(9);
        let mut total = 0usize;
        for (i, &(node, t)) in self.queries.iter().enumerate() {
            let strategy = strats[i % strats.len()];
            total += self
                .seed_nf
                .sample_before(node, t, SAMPLE_K, strategy, &mut rng)
                .len();
        }
        total
    }

    /// The same pass through the CSR engine's allocation-free path.
    fn csr_pass(
        &self,
        strats: &[SamplingStrategy],
        scratch: &mut SampleScratch,
        out: &mut Vec<NeighborEvent>,
    ) -> usize {
        let mut rng = init::rng(9);
        let mut total = 0usize;
        for (i, &(node, t)) in self.queries.iter().enumerate() {
            let strategy = strats[i % strats.len()];
            self.nf
                .sample_into(node, t, SAMPLE_K, strategy, &mut rng, scratch, out);
            total += out.len();
        }
        total
    }

    /// The TemporalSafe pass in batch-size chunks, optionally instrumented
    /// exactly like a model batch (a `dense` span wrapping a nested
    /// `sampling` span per chunk) — the workload for measuring span
    /// overhead in its inert, recording, and tracing configurations.
    fn chunked_pass(
        &self,
        instrument: bool,
        scratch: &mut SampleScratch,
        out: &mut Vec<NeighborEvent>,
    ) -> usize {
        let mut rng = init::rng(9);
        let mut total = 0usize;
        for chunk in self.queries.chunks(BATCH) {
            let _dense = instrument.then(|| obs::span(stage::DENSE));
            let _sampling = instrument.then(|| obs::span(stage::SAMPLING));
            for &(node, t) in chunk {
                self.nf.sample_into(
                    node,
                    t,
                    SAMPLE_K,
                    SamplingStrategy::TemporalSafe,
                    &mut rng,
                    scratch,
                    out,
                );
                total += out.len();
            }
        }
        total
    }

    fn frontier_pass(&self) -> Frontier {
        self.nf.sample_frontier(
            &self.roots,
            &self.root_times,
            SAMPLE_K,
            2,
            SamplingStrategy::Uniform,
            77,
        )
    }

    /// The mixed-strategy pass through the paged backend — same queries,
    /// same RNG seed, so the samples must match [`Self::csr_pass`] bit
    /// for bit no matter how small the page-cache budget is.
    fn paged_pass(
        &self,
        paged: &PagedNeighborFinder,
        strats: &[SamplingStrategy],
        scratch: &mut BackendScratch,
        out: &mut Vec<NeighborEvent>,
    ) -> usize {
        let mut rng = init::rng(9);
        let mut total = 0usize;
        for (i, &(node, t)) in self.queries.iter().enumerate() {
            let strategy = strats[i % strats.len()];
            paged.sample_into(node, t, SAMPLE_K, strategy, &mut rng, scratch, out);
            total += out.len();
        }
        total
    }

    /// FNV-1a fold over every sample the mixed pass draws through the
    /// resident CSR engine: neighbor, timestamp bits, event index.
    fn csr_digest(&self, strats: &[SamplingStrategy]) -> u64 {
        let mut rng = init::rng(9);
        let mut scratch = SampleScratch::new();
        let mut out = Vec::new();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (i, &(node, t)) in self.queries.iter().enumerate() {
            let strategy = strats[i % strats.len()];
            self.nf.sample_into(
                node,
                t,
                SAMPLE_K,
                strategy,
                &mut rng,
                &mut scratch,
                &mut out,
            );
            for e in &out {
                h = fnv1a(
                    fnv1a(fnv1a(h, e.neighbor as u64), e.t.to_bits()),
                    e.event_idx as u64,
                );
            }
        }
        h
    }

    /// The same digest drawn through the paged backend.
    fn paged_digest(&self, paged: &PagedNeighborFinder, strats: &[SamplingStrategy]) -> u64 {
        let mut rng = init::rng(9);
        let mut scratch = BackendScratch::new();
        let mut out = Vec::new();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (i, &(node, t)) in self.queries.iter().enumerate() {
            let strategy = strats[i % strats.len()];
            paged.sample_into(
                node,
                t,
                SAMPLE_K,
                strategy,
                &mut rng,
                &mut scratch,
                &mut out,
            );
            for e in &out {
                h = fnv1a(
                    fnv1a(fnv1a(h, e.neighbor as u64), e.t.to_bits()),
                    e.event_idx as u64,
                );
            }
        }
        h
    }

    /// [`Self::frontier_pass`] through the paged backend (same roots,
    /// depth, strategy, and seed).
    fn paged_frontier_pass(&self, paged: &PagedNeighborFinder) -> Frontier {
        paged.sample_frontier(
            &self.roots,
            &self.root_times,
            SAMPLE_K,
            2,
            SamplingStrategy::Uniform,
            77,
        )
    }
}

/// Training-step workload for the fused tape engine: TGAT and TGN — the
/// attention-heavy and memory-family configs the fusion gate is measured
/// on. One "step" is a 100-event `train_batch` (forward + backward + Adam)
/// on a model whose temporal state was warmed by streaming the graph prefix.
struct TrainStepWorkload {
    graph: TemporalGraph,
    nf: NeighborFinder,
    /// Events streamed through `eval_batch` before the first training step.
    warm: usize,
    /// Consecutive training steps recorded for the loss trajectory.
    steps: usize,
}

impl TrainStepWorkload {
    fn new(smoke: bool) -> Self {
        let mut cfg = GeneratorConfig::small("step", 11);
        cfg.num_edges = if smoke { 1_500 } else { 5_000 };
        let graph = cfg.generate();
        let nf = NeighborFinder::from_events(graph.num_nodes, &graph.events);
        TrainStepWorkload {
            graph,
            nf,
            warm: if smoke { 300 } else { 1_000 },
            steps: if smoke { 3 } else { 5 },
        }
    }

    fn negs_for(&self, batch: &[Interaction]) -> Vec<usize> {
        let items = self.graph.num_nodes - self.graph.num_users;
        batch
            .iter()
            .enumerate()
            .map(|(i, _)| self.graph.num_users + (i * 7) % items)
            .collect()
    }

    /// Build + warm a model with fusion forced to `fused`, run `steps`
    /// consecutive 100-event training steps, and return the per-step loss
    /// bits plus the warmed model (reused by the timing measurement).
    ///
    /// Leaves the fusion override set to `fused` so the caller can time the
    /// returned model on the same path; the caller restores `None`.
    fn trajectory(&self, name: &str, fused: bool) -> (Vec<u32>, Box<dyn TgnnModel>) {
        fusion::set_forced(Some(fused));
        let ctx = StreamContext {
            graph: &self.graph,
            neighbors: NeighborBackend::Resident(&self.nf),
        };
        let mut model = zoo::build(
            name,
            ModelConfig {
                seed: 1,
                ..Default::default()
            },
            &self.graph,
        );
        let warm_negs: Vec<usize> = self.graph.events[..self.warm]
            .iter()
            .map(|e| e.dst)
            .collect();
        for (chunk, negs) in self.graph.events[..self.warm]
            .chunks(100)
            .zip(warm_negs.chunks(100))
        {
            let _ = model.eval_batch(&ctx, chunk, negs);
        }
        let bits = (0..self.steps)
            .map(|s| {
                let b = &self.graph.events[self.warm + s * 100..self.warm + (s + 1) * 100];
                model.train_batch(&ctx, b, &self.negs_for(b)).to_bits()
            })
            .collect();
        (bits, model)
    }

    /// Median ns of one more training step on each of two already-warmed
    /// models — the unfused- and fused-warmed pair — timed *interleaved*
    /// (`timing::measure_paired`) so host drift between the two
    /// measurements cannot masquerade as a fusion speedup or slowdown.
    /// Each timed call re-pins the fusion override its model was warmed
    /// under. Returns `(unfused_ns, fused_ns)`.
    fn step_ns_pair(
        &self,
        unfused: &mut Box<dyn TgnnModel>,
        fused: &mut Box<dyn TgnnModel>,
    ) -> (f64, f64) {
        let ctx = StreamContext {
            graph: &self.graph,
            neighbors: NeighborBackend::Resident(&self.nf),
        };
        let batch = &self.graph.events[self.warm..self.warm + 100];
        let negs = self.negs_for(batch);
        timing::measure_paired(
            &mut || {
                fusion::set_forced(Some(false));
                std::hint::black_box(unfused.train_batch(&ctx, batch, &negs))
            },
            &mut || {
                fusion::set_forced(Some(true));
                std::hint::black_box(fused.train_batch(&ctx, batch, &negs))
            },
        )
    }

    /// Fraction of one training step's dense time spent inside the
    /// attention kernel span — the Amdahl attribution for the train_step
    /// gate, measured by running one instrumented step under a recorder.
    fn attention_share(&self, model: &mut Box<dyn TgnnModel>) -> f64 {
        let ctx = StreamContext {
            graph: &self.graph,
            neighbors: NeighborBackend::Resident(&self.nf),
        };
        let batch = &self.graph.events[self.warm..self.warm + 100];
        let negs = self.negs_for(batch);
        let rec = obs::Recorder::new();
        {
            let _g = rec.install();
            let _ = std::hint::black_box(model.train_batch(&ctx, batch, &negs));
        }
        let prof = rec.profile();
        let dense = prof.total_secs(stage::DENSE);
        if dense > 0.0 {
            prof.total_secs("attention") / dense
        } else {
            0.0
        }
    }
}

fn fnv1a(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

/// FNV-1a fold over every column of every hop level: any divergence in the
/// sampled nodes, times, deltas, event indices, feature rows, or masks
/// changes the hash.
fn frontier_hash(f: &Frontier) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for hop in &f.hops {
        for &n in &hop.nodes {
            fold(n as u64);
        }
        for &t in &hop.times {
            fold(t.to_bits());
        }
        for &d in &hop.dts {
            fold(d.to_bits() as u64);
        }
        for &e in &hop.event_idx {
            fold(e as u64);
        }
        for &fi in &hop.feat_idx {
            fold(fi as u64);
        }
        for &m in &hop.mask {
            fold(m as u64);
        }
    }
    h
}

/// The seed repository's frontier feature gather, verbatim in spirit: a
/// fresh zeroed output and one per-element indexed copy loop — the pattern
/// the models used before the SoA gather path (and the pattern the
/// `no-scalar-gather-in-hot-path` audit rule now rejects there).
fn seed_scalar_gather(src: &Matrix, indices: &[usize], out: &mut Matrix) {
    for (r, &i) in indices.iter().enumerate() {
        for c in 0..src.cols() {
            out.set(r, c, src.get(i, c));
        }
    }
}

fn matrix_hash(m: &Matrix) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for r in 0..m.rows() {
        for &x in m.row(r) {
            h = fnv1a(h, x.to_bits() as u64);
        }
    }
    h
}

/// Score every (src, dst) pair through a fixed MLP — the eval hot path:
/// batched feature gather, parallel matmul forward, sigmoid.
struct EvalWorkload {
    graph: TemporalGraph,
    store: ParamStore,
    mlp: Mlp,
}

impl EvalWorkload {
    fn new() -> Self {
        let mut cfg = GeneratorConfig::small("kernels", 11);
        cfg.num_edges = 6_000;
        cfg.node_dim = NODE_DIM;
        let graph = cfg.generate();
        let mut store = ParamStore::new();
        let mut rng = init::rng(5);
        let mlp = Mlp::new(&mut store, &mut rng, "edge", 2 * NODE_DIM, HIDDEN, 1);
        EvalWorkload { graph, store, mlp }
    }

    fn score_batch(&self, srcs: &[usize], dsts: &[usize]) -> Vec<f32> {
        let mut x = Matrix::zeros(srcs.len(), 2 * NODE_DIM);
        for (r, (&s, &d)) in srcs.iter().zip(dsts).enumerate() {
            x.row_mut(r)[..NODE_DIM].copy_from_slice(self.graph.node_features.row(s));
            x.row_mut(r)[NODE_DIM..].copy_from_slice(self.graph.node_features.row(d));
        }
        let mut g = Graph::new(&self.store);
        let xv = g.input(x);
        let logits = self.mlp.forward(&mut g, xv);
        let probs = g.sigmoid(logits);
        let m = g.value(probs);
        (0..m.rows()).map(|r| m.get(r, 0)).collect()
    }

    /// One full eval pass: every event scored against its positive and a
    /// deterministic negative destination. Returns (pos, neg) scores.
    fn eval_pass(&self) -> (Vec<f32>, Vec<f32>) {
        let g = &self.graph;
        let items = g.num_nodes - g.num_users;
        let mut pos = Vec::with_capacity(g.events.len());
        let mut neg = Vec::with_capacity(g.events.len());
        for batch in g.events.chunks(BATCH) {
            let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
            let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
            let negs: Vec<usize> = batch
                .iter()
                .enumerate()
                .map(|(i, _)| g.num_users + (i * 7) % items)
                .collect();
            pos.extend(self.score_batch(&srcs, &dsts));
            neg.extend(self.score_batch(&srcs, &negs));
        }
        (pos, neg)
    }
}

/// Child-process body: print one `KCHILD` line with all measurements.
fn run_child(smoke: bool) {
    let mm = if smoke { 128 } else { 256 };
    let mut rng = init::rng(1);
    let a = init::randn(mm, mm, 1.0, &mut rng);
    let b = init::randn(mm, mm, 1.0, &mut rng);
    let seed_ns = timing::measure(&mut || std::hint::black_box(seed_matmul(&a, &b)));
    let kernel_ns = timing::measure(&mut || std::hint::black_box(a.matmul(&b)));

    let w = EvalWorkload::new();
    let events = w.graph.events.len();
    let pass_ns = timing::measure(&mut || std::hint::black_box(w.eval_pass()));
    let events_per_sec = events as f64 / (pass_ns / 1e9);

    let (pos, neg) = w.eval_pass();
    let (auc, ap) = auc_ap_pos_neg(&pos, &neg);

    // Headline workload: the weighted TemporalSafe strategy — the path the
    // CSR engine targets (per-query allocations and the weight fill are
    // the layout-sensitive costs). The all-strategies mix is reported
    // alongside; it is bounded by work both layouts share bit-for-bit
    // (libm `exp`, the RNG draws).
    let sw = SamplingWorkload::new(smoke);
    let safe = [SamplingStrategy::TemporalSafe];
    let samples_per_pass = sw.seed_pass(&safe);
    let mixed_samples = sw.seed_pass(&SAMPLE_STRATS);
    let sample_seed_ns = timing::measure(&mut || std::hint::black_box(sw.seed_pass(&safe)));
    let mut scratch = SampleScratch::new();
    let mut out = Vec::new();
    assert_eq!(
        sw.csr_pass(&SAMPLE_STRATS, &mut scratch, &mut out),
        mixed_samples,
        "CSR pass must draw the same samples as the seed layout"
    );
    let sample_csr_ns =
        timing::measure(&mut || std::hint::black_box(sw.csr_pass(&safe, &mut scratch, &mut out)));
    let mixed_seed_ns = timing::measure(&mut || std::hint::black_box(sw.seed_pass(&SAMPLE_STRATS)));
    let mixed_csr_ns = timing::measure(&mut || {
        std::hint::black_box(sw.csr_pass(&SAMPLE_STRATS, &mut scratch, &mut out))
    });

    // Optional per-strategy breakdown for tuning (diagnostic only; the
    // parent ignores non-KCHILD lines).
    if std::env::var("BENCHTEMP_KERNELS_PER_STRAT").is_ok() {
        let names = ["most_recent", "uniform", "temporal_exp", "temporal_safe"];
        for (name, strat) in names.iter().zip(SAMPLE_STRATS) {
            let one = [strat];
            let s = timing::measure(&mut || std::hint::black_box(sw.seed_pass(&one)));
            let c = timing::measure(&mut || {
                std::hint::black_box(sw.csr_pass(&one, &mut scratch, &mut out))
            });
            eprintln!(
                "strat {name}: seed {s:.0} ns -> csr {c:.0} ns ({:.2}x)",
                s / c
            );
        }
    }
    let fhash = frontier_hash(&sw.frontier_pass());
    let frontier_ns = timing::measure(&mut || std::hint::black_box(sw.frontier_pass()));
    let f = sw.frontier_pass();
    let frontier_slots: usize = f.hops.iter().map(|h| h.len()).sum();

    // SoA frontier gather (DESIGN.md §13): materialize the hop-1 slot
    // features three ways on the exact index list `sample_frontier` emits
    // (duplicates and padding zeros included) — the seed's per-element
    // scalar loop, the per-row `gather_rows`, and the run-length-coalesced
    // `gather_rows_into` — asserting all three produce the same bytes.
    let gather_idx: &[usize] = &f.hops[0].nodes;
    let gather_dim = 64;
    let gather_src = {
        let n = gather_idx.iter().copied().max().unwrap_or(0) + 1;
        let mut grng = init::rng(23);
        init::randn(n, gather_dim, 1.0, &mut grng)
    };
    let scalar_out = {
        let mut out = Matrix::zeros(gather_idx.len(), gather_dim);
        seed_scalar_gather(&gather_src, gather_idx, &mut out);
        out
    };
    let perrow_out = gather_src.gather_rows(gather_idx);
    let mut coalesced_out = Matrix::zeros(gather_idx.len(), gather_dim);
    let gather_runs = gather_src.gather_rows_into(gather_idx, &mut coalesced_out);
    let ghash = matrix_hash(&coalesced_out);
    assert_eq!(
        matrix_hash(&scalar_out),
        ghash,
        "coalesced gather must match the scalar loop byte-for-byte"
    );
    assert_eq!(
        matrix_hash(&perrow_out),
        ghash,
        "coalesced gather must match the per-row gather byte-for-byte"
    );
    let gather_scalar_ns = timing::measure(&mut || {
        let mut out = Matrix::zeros(gather_idx.len(), gather_dim);
        seed_scalar_gather(&gather_src, gather_idx, &mut out);
        std::hint::black_box(out);
    });
    let gather_perrow_ns =
        timing::measure(&mut || std::hint::black_box(gather_src.gather_rows(gather_idx)));
    let gather_coalesced_ns = timing::measure(&mut || {
        std::hint::black_box(gather_src.gather_rows_into(gather_idx, &mut coalesced_out))
    });

    // Tracing overhead (DESIGN.md §9): the same chunked sampling pass
    // measured bare, with inert spans (no recorder, no sink — the shipping
    // default), with a recorder aggregating, and with the JSONL sink live.
    let trace_plain_ns = timing::measure(&mut || {
        std::hint::black_box(sw.chunked_pass(false, &mut scratch, &mut out))
    });
    let trace_inert_ns = timing::measure(&mut || {
        std::hint::black_box(sw.chunked_pass(true, &mut scratch, &mut out))
    });
    let (trace_rec_ns, trace_on_ns) = {
        let rec = obs::Recorder::new();
        let _g = rec.install();
        let rec_ns = timing::measure(&mut || {
            std::hint::black_box(sw.chunked_pass(true, &mut scratch, &mut out))
        });
        let path = std::env::temp_dir().join(format!(
            "benchtemp-kernels-trace-{}.jsonl",
            std::process::id()
        ));
        obs::trace::set_path(Some(&path));
        let on_ns = timing::measure(&mut || {
            std::hint::black_box(sw.chunked_pass(true, &mut scratch, &mut out))
        });
        obs::trace::set_path(None);
        let _ = std::fs::remove_file(&path);
        (rec_ns, on_ns)
    };

    // Sanitizer overhead (DESIGN.md §10): the same eval pass with the
    // slot-claim checks forced off vs on. Off is the shipping default — the
    // gate is one relaxed atomic load per dispatch — so the off ratio pins
    // "no measurable overhead when unset". The on pass must also not change
    // a single result bit: the checks observe claims, never the data.
    let (san_off_ns, san_on_ns) = {
        benchtemp_tensor::sanitize::set_forced(Some(false));
        let off = timing::measure(&mut || std::hint::black_box(w.eval_pass()));
        benchtemp_tensor::sanitize::set_forced(Some(true));
        let on = timing::measure(&mut || std::hint::black_box(w.eval_pass()));
        let (pos_s, neg_s) = w.eval_pass();
        benchtemp_tensor::sanitize::set_forced(None);
        assert!(
            pos_s
                .iter()
                .zip(&pos)
                .all(|(a, b)| a.to_bits() == b.to_bits())
                && neg_s
                    .iter()
                    .zip(&neg)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
            "sanitize mode must not change a single score bit"
        );
        (off, on)
    };

    // Fused tape engine (DESIGN.md §11): `train_batch` on TGAT and TGN with
    // the fused ops forced off vs on. Fusion is a pure execution-strategy
    // switch, so the per-step loss trajectories must match bit-for-bit; the
    // fused trajectory is also hashed so the parent can assert it does not
    // depend on the thread count either (the fused backward runs on the
    // slab-parallel claims protocol). Timing only in the single-thread
    // child — the speedup target is a single-thread contract.
    let ts = TrainStepWorkload::new(smoke);
    let mut ts_traj_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut ts_ns = [0.0f64; 4]; // [tgat_unfused, tgat_fused, tgn_unfused, tgn_fused]
    let mut ts_att_share = [0.0f64; 2]; // TGAT [unfused, fused] attention share of dense
    for (mi, name) in ["TGAT", "TGN"].iter().enumerate() {
        let (unfused_traj, mut unfused_model) = ts.trajectory(name, false);
        let (fused_traj, mut fused_model) = ts.trajectory(name, true);
        if pool().threads() == 1 {
            let (u_ns, f_ns) = ts.step_ns_pair(&mut unfused_model, &mut fused_model);
            ts_ns[mi * 2] = u_ns;
            ts_ns[mi * 2 + 1] = f_ns;
            if mi == 0 {
                fusion::set_forced(Some(false));
                ts_att_share[0] = ts.attention_share(&mut unfused_model);
                fusion::set_forced(Some(true));
                ts_att_share[1] = ts.attention_share(&mut fused_model);
            }
        }
        fusion::set_forced(None);
        assert_eq!(
            unfused_traj, fused_traj,
            "{name}: fused training loss trajectory must be bit-identical to unfused"
        );
        for &b in &fused_traj {
            ts_traj_hash = fnv1a(ts_traj_hash, b as u64);
        }
    }

    // Filtered-negative ranking (DESIGN.md §14): candidate-set construction
    // throughput plus the metric kernel over deterministic scores. The
    // digest and MRR bits ride along in the KCHILD line so the parent can
    // assert the cross-thread / cross-process determinism contract on the
    // exact artifacts the leaderboard consumes.
    let rank_k = if smoke { 10 } else { 20 };
    let rank_split = LinkPredSplit::new(&w.graph, 7);
    let rank_build = || {
        FilteredNegativeSet::build(
            &w.graph,
            &rank_split.train,
            &rank_split.test,
            NegativeStrategy::Random,
            rank_k,
            0xf117,
        )
    };
    let rank_set = rank_build();
    let rank_digest = rank_set.digest();
    let rank_queries = rank_set.len();
    let rank_build_ns = timing::measure(&mut || std::hint::black_box(rank_build()));
    let rank_pos: Vec<f32> = (0..rank_queries)
        .map(|i| ((i * 37) % 101) as f32 / 101.0)
        .collect();
    let rank_cands: Vec<f32> = (0..rank_queries * rank_k)
        .map(|i| ((i * 53) % 97) as f32 / 97.0)
        .collect();
    let rank_metrics = ranking_metrics_flat(&rank_pos, &rank_cands, rank_k, None);
    let rank_metric_ns = timing::measure(&mut || {
        std::hint::black_box(ranking_metrics_flat(&rank_pos, &rank_cands, rank_k, None))
    });

    // Paged store (DESIGN.md §16): bulk-load the sampling graph into an
    // on-disk store, then rerun the mixed-strategy pass and the frontier
    // expansion through the paged backend. The 64 KiB budget is far below
    // the graph's column footprint, so the pass churns the CLOCK cache
    // mid-stream; the bit-identity asserts here are the acceptance gate —
    // they run in every child before the parent writes BENCH_kernels.json.
    let store_base =
        std::env::temp_dir().join(format!("benchtemp-kernels-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_base);
    let tiny_opts = StoreOptions {
        cache_budget_bytes: Some(64 * 1024),
        run_events: 4096,
    };
    // One wall-clock run for the bulk load: timing::measure's adaptive
    // iteration would re-create the store directory thousands of times.
    // audit-allow(no-wallclock-outside-obs): timing the bulk load itself; reported, not fed back
    let bulk_start = std::time::Instant::now();
    let paged_tiny = PagedNeighborFinder::bulk_load_graph(&store_base, &sw.graph, &tiny_opts)
        .expect("bulk-load sampling graph");
    let store_bulk_ns = bulk_start.elapsed().as_secs_f64() * 1e9;
    let store_events = sw.graph.events.len() as f64;

    let resident_digest = sw.csr_digest(&SAMPLE_STRATS);
    let ev0 = obs::counters::STORE_PAGE_EVICTIONS.get();
    let paged_digest = sw.paged_digest(&paged_tiny, &SAMPLE_STRATS);
    let store_evictions = obs::counters::STORE_PAGE_EVICTIONS.get() - ev0;
    assert_eq!(
        resident_digest, paged_digest,
        "paged mixed-strategy samples must be bit-identical to the resident CSR engine"
    );
    let paged_fhash = frontier_hash(&sw.paged_frontier_pass(&paged_tiny));
    assert_eq!(
        fhash, paged_fhash,
        "paged frontier must be bit-identical to the resident frontier"
    );
    let mut bscratch = BackendScratch::default();
    let store_tiny_ns = timing::measure(&mut || {
        std::hint::black_box(sw.paged_pass(&paged_tiny, &safe, &mut bscratch, &mut out))
    });
    // Reopen the same files with an effectively-unbounded budget: the
    // cold pass faults every page once, then serves from memory — the
    // upper end of the budget/throughput trade the store exposes.
    let big_opts = StoreOptions {
        cache_budget_bytes: Some(64 << 20),
        run_events: 4096,
    };
    let paged_big = PagedNeighborFinder::open(&store_base, &big_opts).expect("reopen store");
    let store_big_ns = timing::measure(&mut || {
        std::hint::black_box(sw.paged_pass(&paged_big, &safe, &mut bscratch, &mut out))
    });
    let store_cache_bytes = paged_tiny.cache_resident_bytes() as f64;
    drop((paged_tiny, paged_big));
    let _ = std::fs::remove_dir_all(&store_base);

    println!(
        "KCHILD threads {} seed_ns {} kernel_ns {} events_per_sec {} auc {:016x} ap {:016x} \
         rank_queries {} rank_k {} rank_build_ns {} rank_metric_ns {} rank_digest {:016x} \
         rank_mrr {:016x} \
         sample_seed_ns {} sample_csr_ns {} samples_per_pass {} mixed_seed_ns {} \
         mixed_csr_ns {} mixed_samples {} frontier_ns {} frontier_slots {} frontier_hash {:016x} \
         gather_rows {} gather_runs {} gather_scalar_ns {} gather_perrow_ns {} \
         gather_coalesced_ns {} gather_hash {:016x} \
         trace_plain_ns {} trace_inert_ns {} trace_rec_ns {} trace_on_ns {} \
         pass_ns {} san_off_ns {} san_on_ns {} \
         ts_tgat_unfused_ns {} ts_tgat_fused_ns {} ts_tgn_unfused_ns {} ts_tgn_fused_ns {} \
         ts_tgat_att_share_unfused {} ts_tgat_att_share_fused {} ts_traj_hash {:016x} \
         store_bulk_ns {} store_events {} store_tiny_ns {} store_big_ns {} \
         store_evictions {} store_cache_bytes {} store_digest {:016x} \
         store_frontier_hash {:016x}",
        pool().threads(),
        seed_ns,
        kernel_ns,
        events_per_sec,
        auc.to_bits(),
        ap.to_bits(),
        rank_queries,
        rank_k,
        rank_build_ns,
        rank_metric_ns,
        rank_digest,
        rank_metrics.mrr.to_bits(),
        sample_seed_ns,
        sample_csr_ns,
        samples_per_pass,
        mixed_seed_ns,
        mixed_csr_ns,
        mixed_samples,
        frontier_ns,
        frontier_slots,
        fhash,
        gather_idx.len(),
        gather_runs,
        gather_scalar_ns,
        gather_perrow_ns,
        gather_coalesced_ns,
        ghash,
        trace_plain_ns,
        trace_inert_ns,
        trace_rec_ns,
        trace_on_ns,
        pass_ns,
        san_off_ns,
        san_on_ns,
        ts_ns[0],
        ts_ns[1],
        ts_ns[2],
        ts_ns[3],
        ts_att_share[0],
        ts_att_share[1],
        ts_traj_hash,
        store_bulk_ns,
        store_events,
        store_tiny_ns,
        store_big_ns,
        store_evictions,
        store_cache_bytes,
        paged_digest,
        paged_fhash
    );
}

#[derive(Debug)]
struct ChildReport {
    threads: usize,
    seed_ns: f64,
    kernel_ns: f64,
    events_per_sec: f64,
    auc_bits: String,
    ap_bits: String,
    rank_queries: f64,
    rank_k: f64,
    rank_build_ns: f64,
    rank_metric_ns: f64,
    rank_digest: String,
    rank_mrr: String,
    sample_seed_ns: f64,
    sample_csr_ns: f64,
    samples_per_pass: f64,
    mixed_seed_ns: f64,
    mixed_csr_ns: f64,
    mixed_samples: f64,
    frontier_ns: f64,
    frontier_slots: f64,
    frontier_hash: String,
    gather_rows: f64,
    gather_runs: f64,
    gather_scalar_ns: f64,
    gather_perrow_ns: f64,
    gather_coalesced_ns: f64,
    gather_hash: String,
    trace_plain_ns: f64,
    trace_inert_ns: f64,
    trace_rec_ns: f64,
    trace_on_ns: f64,
    pass_ns: f64,
    san_off_ns: f64,
    san_on_ns: f64,
    ts_tgat_unfused_ns: f64,
    ts_tgat_fused_ns: f64,
    ts_tgn_unfused_ns: f64,
    ts_tgn_fused_ns: f64,
    ts_tgat_att_share_unfused: f64,
    ts_tgat_att_share_fused: f64,
    ts_traj_hash: String,
    store_bulk_ns: f64,
    store_events: f64,
    store_tiny_ns: f64,
    store_big_ns: f64,
    store_evictions: f64,
    store_cache_bytes: f64,
    store_digest: String,
    store_frontier_hash: String,
}

fn spawn_child(threads: usize, smoke: bool) -> ChildReport {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = Command::new(exe);
    cmd.env("BENCHTEMP_KERNELS_CHILD", "1")
        .env("BENCHTEMP_THREADS", threads.to_string());
    if smoke {
        cmd.arg("--smoke");
    }
    let out = cmd.output().expect("spawn bench child");
    assert!(
        out.status.success(),
        "child with BENCHTEMP_THREADS={threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("KCHILD "))
        .unwrap_or_else(|| panic!("no KCHILD line from child:\n{stdout}"));
    let f: Vec<&str> = line.split_whitespace().collect();
    let field = |key: &str| {
        f.iter()
            .position(|&w| w == key)
            .map(|i| f[i + 1].to_string())
            .unwrap_or_else(|| panic!("missing {key} in: {line}"))
    };
    ChildReport {
        threads: field("threads").parse().unwrap(),
        seed_ns: field("seed_ns").parse().unwrap(),
        kernel_ns: field("kernel_ns").parse().unwrap(),
        events_per_sec: field("events_per_sec").parse().unwrap(),
        auc_bits: field("auc"),
        ap_bits: field("ap"),
        rank_queries: field("rank_queries").parse().unwrap(),
        rank_k: field("rank_k").parse().unwrap(),
        rank_build_ns: field("rank_build_ns").parse().unwrap(),
        rank_metric_ns: field("rank_metric_ns").parse().unwrap(),
        rank_digest: field("rank_digest"),
        rank_mrr: field("rank_mrr"),
        sample_seed_ns: field("sample_seed_ns").parse().unwrap(),
        sample_csr_ns: field("sample_csr_ns").parse().unwrap(),
        samples_per_pass: field("samples_per_pass").parse().unwrap(),
        mixed_seed_ns: field("mixed_seed_ns").parse().unwrap(),
        mixed_csr_ns: field("mixed_csr_ns").parse().unwrap(),
        mixed_samples: field("mixed_samples").parse().unwrap(),
        frontier_ns: field("frontier_ns").parse().unwrap(),
        frontier_slots: field("frontier_slots").parse().unwrap(),
        frontier_hash: field("frontier_hash"),
        gather_rows: field("gather_rows").parse().unwrap(),
        gather_runs: field("gather_runs").parse().unwrap(),
        gather_scalar_ns: field("gather_scalar_ns").parse().unwrap(),
        gather_perrow_ns: field("gather_perrow_ns").parse().unwrap(),
        gather_coalesced_ns: field("gather_coalesced_ns").parse().unwrap(),
        gather_hash: field("gather_hash"),
        trace_plain_ns: field("trace_plain_ns").parse().unwrap(),
        trace_inert_ns: field("trace_inert_ns").parse().unwrap(),
        trace_rec_ns: field("trace_rec_ns").parse().unwrap(),
        trace_on_ns: field("trace_on_ns").parse().unwrap(),
        pass_ns: field("pass_ns").parse().unwrap(),
        san_off_ns: field("san_off_ns").parse().unwrap(),
        san_on_ns: field("san_on_ns").parse().unwrap(),
        ts_tgat_unfused_ns: field("ts_tgat_unfused_ns").parse().unwrap(),
        ts_tgat_fused_ns: field("ts_tgat_fused_ns").parse().unwrap(),
        ts_tgn_unfused_ns: field("ts_tgn_unfused_ns").parse().unwrap(),
        ts_tgn_fused_ns: field("ts_tgn_fused_ns").parse().unwrap(),
        ts_tgat_att_share_unfused: field("ts_tgat_att_share_unfused").parse().unwrap(),
        ts_tgat_att_share_fused: field("ts_tgat_att_share_fused").parse().unwrap(),
        ts_traj_hash: field("ts_traj_hash"),
        store_bulk_ns: field("store_bulk_ns").parse().unwrap(),
        store_events: field("store_events").parse().unwrap(),
        store_tiny_ns: field("store_tiny_ns").parse().unwrap(),
        store_big_ns: field("store_big_ns").parse().unwrap(),
        store_evictions: field("store_evictions").parse().unwrap(),
        store_cache_bytes: field("store_cache_bytes").parse().unwrap(),
        store_digest: field("store_digest"),
        store_frontier_hash: field("store_frontier_hash"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::var("BENCHTEMP_KERNELS_CHILD").is_ok() {
        run_child(smoke);
        return;
    }

    println!("== Kernel throughput: seed baseline vs register-blocked parallel runtime ==");
    let single = spawn_child(1, smoke);
    let multi = spawn_child(4, smoke);

    // The runtime contract: metrics must not depend on the thread count.
    assert_eq!(
        (&single.auc_bits, &single.ap_bits),
        (&multi.auc_bits, &multi.ap_bits),
        "eval metrics must be bit-identical across thread counts"
    );
    // Same contract for the sampling engine: the frontier is seeded per
    // root, so its output must not depend on the thread count either.
    assert_eq!(
        single.frontier_hash, multi.frontier_hash,
        "frontier samples must be bit-identical across thread counts"
    );
    // And for the coalesced gather, which fans its runs across the pool.
    assert_eq!(
        single.gather_hash, multi.gather_hash,
        "coalesced gather output must be bit-identical across thread counts"
    );
    // Run-length coalescing is a pure function of the index list — the
    // chunk arithmetic must not reach the counter either.
    assert_eq!(
        single.gather_runs, multi.gather_runs,
        "coalesced run count must not depend on the thread count"
    );
    // The paged store backend asserted bit-identity against the resident
    // engine inside each child; across children it must also agree with
    // itself — different thread counts, different processes, and
    // independent eviction schedules at the 64 KiB budget.
    assert_eq!(
        single.store_digest, multi.store_digest,
        "paged samples must be bit-identical across thread counts"
    );
    assert_eq!(
        single.store_frontier_hash, multi.store_frontier_hash,
        "paged frontier must be bit-identical across thread counts"
    );
    assert_eq!(
        single.store_frontier_hash, single.frontier_hash,
        "paged frontier hash must equal the resident frontier hash"
    );
    assert!(
        single.store_evictions > 0.0,
        "the 64 KiB page-cache budget must evict during the mixed pass"
    );

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let matmul_speedup = single.seed_ns / single.kernel_ns;
    let eval_speedup = multi.events_per_sec / single.events_per_sec;
    // The 4-thread eval throughput target only binds when the host can
    // actually run 4 workers in parallel; on a smaller machine the ratio
    // measures oversubscription, not the runtime, so the gate is skipped
    // with the reason recorded rather than reported as a vacuous miss.
    let eval_target_applies = host_cores >= multi.threads;
    let eval_skip_reason = (!eval_target_applies).then(|| {
        format!(
            "host has {host_cores} core(s) < {} benchmark threads; \
             multi-thread speedup not meaningful",
            multi.threads
        )
    });
    println!(
        "matmul (1 thread): seed {:.0} ns -> kernel {:.0} ns  ({matmul_speedup:.2}x)",
        single.seed_ns, single.kernel_ns
    );
    println!("matmul (4 threads): kernel {:.0} ns", multi.kernel_ns);
    match &eval_skip_reason {
        None => println!(
            "eval throughput: {:.0} ev/s (1 thread) -> {:.0} ev/s (4 threads)  ({eval_speedup:.2}x)",
            single.events_per_sec, multi.events_per_sec
        ),
        Some(reason) => println!(
            "eval throughput: {:.0} ev/s (1 thread) -> {:.0} ev/s (4 threads)  \
             (speedup target skipped: {reason})",
            single.events_per_sec, multi.events_per_sec
        ),
    }
    println!(
        "metrics bit-identical across thread counts: auc {} ap {}",
        single.auc_bits, single.ap_bits
    );

    // Filtered-negative ranking: the candidate sets and the MRR computed
    // from them are leaderboard artifacts — they must be bit-identical at
    // any thread count (each child is its own process, so this is also the
    // cross-process witness).
    assert_eq!(
        (&single.rank_digest, &single.rank_mrr),
        (&multi.rank_digest, &multi.rank_mrr),
        "filtered-negative candidate sets / MRR must not depend on the thread count"
    );
    let rank_build_qps = single.rank_queries / (single.rank_build_ns / 1e9);
    let rank_metric_qps = single.rank_queries / (single.rank_metric_ns / 1e9);
    println!(
        "filtered-negative ranking (1 thread, K={:.0}): candidate-set build \
         {rank_build_qps:.0} queries/s, MRR/Hits kernel {rank_metric_qps:.0} queries/s",
        single.rank_k
    );
    println!(
        "ranking bit-identical across thread counts and processes: digest {} mrr {}",
        single.rank_digest, single.rank_mrr
    );

    let seed_sps = single.samples_per_pass / (single.sample_seed_ns / 1e9);
    let csr_sps = single.samples_per_pass / (single.sample_csr_ns / 1e9);
    let sampling_speedup = single.sample_seed_ns / single.sample_csr_ns;
    let mixed_speedup = single.mixed_seed_ns / single.mixed_csr_ns;
    let mixed_csr_sps = single.mixed_samples / (single.mixed_csr_ns / 1e9);
    let frontier_sps_1 = single.frontier_slots / (single.frontier_ns / 1e9);
    let frontier_sps_4 = multi.frontier_slots / (multi.frontier_ns / 1e9);
    println!(
        "neighbor sampling, TemporalSafe (1 thread): seed layout {seed_sps:.0} samples/s -> \
         CSR {csr_sps:.0} samples/s  ({sampling_speedup:.2}x)"
    );
    println!(
        "neighbor sampling, all-strategies mix (1 thread): CSR {mixed_csr_sps:.0} samples/s  \
         ({mixed_speedup:.2}x)"
    );
    println!(
        "frontier expansion: {frontier_sps_1:.0} slots/s (1 thread) -> \
         {frontier_sps_4:.0} slots/s (4 threads)"
    );
    println!(
        "frontier bit-identical across thread counts: hash {}",
        single.frontier_hash
    );

    let gather_rows = single.gather_rows;
    let gather_scalar_rps = gather_rows / (single.gather_scalar_ns / 1e9);
    let gather_perrow_rps = gather_rows / (single.gather_perrow_ns / 1e9);
    let gather_coalesced_rps = gather_rows / (single.gather_coalesced_ns / 1e9);
    let gather_speedup = single.gather_scalar_ns / single.gather_coalesced_ns;
    // The 2.0x coalesced-vs-scalar target assumes the hop-1 slot list
    // actually coalesces into multi-row runs (average run length >= 2 —
    // the regime DESIGN.md §13 calibrated the target in). The sampling
    // workload here spreads slots across distinct sources (~1.3 rows per
    // run), where the coalesced kernel degenerates to per-row copies plus
    // run bookkeeping and 2.0x is unreachable by construction. Mirror the
    // eval-throughput gate: record the target with an explicit
    // applies/skip-reason pair instead of a silently-failing number.
    let gather_avg_run = gather_rows / single.gather_runs.max(1.0);
    let gather_target_applies = gather_avg_run >= 2.0;
    let gather_skip_reason = (!gather_target_applies).then(|| {
        format!(
            "average coalesced run length {gather_avg_run:.2} < 2 rows: \
             workload is per-row-bound, coalescing target cannot bind"
        )
    });
    match &gather_skip_reason {
        None => println!(
            "frontier feature gather (1 thread, {gather_rows:.0} rows, {:.0} coalesced runs): \
             scalar {gather_scalar_rps:.0} rows/s -> per-row {gather_perrow_rps:.0} rows/s -> \
             coalesced {gather_coalesced_rps:.0} rows/s  ({gather_speedup:.2}x, target 2.0x)",
            single.gather_runs
        ),
        Some(reason) => println!(
            "frontier feature gather (1 thread, {gather_rows:.0} rows, {:.0} coalesced runs): \
             scalar {gather_scalar_rps:.0} rows/s -> per-row {gather_perrow_rps:.0} rows/s -> \
             coalesced {gather_coalesced_rps:.0} rows/s  ({gather_speedup:.2}x; \
             2.0x target skipped: {reason})",
            single.gather_runs
        ),
    }
    println!(
        "gather bit-identical across thread counts: hash {}",
        single.gather_hash
    );

    let store_bulk_eps = single.store_events / (single.store_bulk_ns / 1e9);
    let store_tiny_sps = single.samples_per_pass / (single.store_tiny_ns / 1e9);
    let store_big_sps = single.samples_per_pass / (single.store_big_ns / 1e9);
    let resident_sps = single.samples_per_pass / (single.sample_csr_ns / 1e9);
    println!(
        "paged store: bulk load {store_bulk_eps:.0} events/s; TemporalSafe pass \
         {store_tiny_sps:.0} samples/s at 64 KiB budget ({:.0} evictions, \
         {:.0} cache bytes) -> {store_big_sps:.0} samples/s at 64 MiB \
         (resident CSR: {resident_sps:.0} samples/s)",
        single.store_evictions, single.store_cache_bytes
    );
    println!(
        "paged bit-identical to resident and across thread counts: digest {} frontier {}",
        single.store_digest, single.store_frontier_hash
    );

    // Span-instrumentation overhead on the sampling workload (targets from
    // the obs acceptance criteria: inert ≈ 1.00x, JSONL tracing ≤ 1.03x).
    // Reported, not asserted — wall-clock ratios this small are noisy on
    // shared machines; the JSON records them for trend tracking.
    let inert_ratio = single.trace_inert_ns / single.trace_plain_ns;
    let rec_ratio = single.trace_rec_ns / single.trace_plain_ns;
    let traced_ratio = single.trace_on_ns / single.trace_plain_ns;
    println!(
        "obs span overhead on sampling pass (1 thread): inert {inert_ratio:.3}x \
         (target ~1.00x), recorder {rec_ratio:.3}x, JSONL tracing {traced_ratio:.3}x \
         (target <= 1.03x)"
    );

    // Sanitizer overhead on the eval pass: off is the shipping default and
    // must cost nothing measurable (the plain pass above ran with the env
    // default, i.e. off — the ratio between the two is pure noise floor);
    // on is a debug mode, reported for scale.
    let san_off_ratio = single.san_off_ns / single.pass_ns;
    let san_on_ratio = single.san_on_ns / single.san_off_ns;
    println!(
        "sanitizer overhead on eval pass (1 thread): off {san_off_ratio:.3}x vs plain \
         (target ~1.00x), on {san_on_ratio:.3}x vs off (debug mode); scores \
         bit-identical either way"
    );

    // Fused tape engine: the loss-trajectory equality fused-vs-unfused is
    // asserted inside each child; here the cross-thread contract.
    assert_eq!(
        single.ts_traj_hash, multi.ts_traj_hash,
        "fused training loss trajectory must be bit-identical across thread counts"
    );
    let tgat_speedup = single.ts_tgat_unfused_ns / single.ts_tgat_fused_ns;
    let tgn_speedup = single.ts_tgn_unfused_ns / single.ts_tgn_fused_ns;
    println!(
        "train_step TGAT (1 thread): unfused {:.0} ns -> fused {:.0} ns  ({tgat_speedup:.2}x, \
         target 1.5x)",
        single.ts_tgat_unfused_ns, single.ts_tgat_fused_ns
    );
    println!(
        "train_step TGN (1 thread): unfused {:.0} ns -> fused {:.0} ns  ({tgn_speedup:.2}x, \
         target 1.5x)",
        single.ts_tgn_unfused_ns, single.ts_tgn_fused_ns
    );
    println!(
        "train_step TGAT attention attribution (share of dense step time): \
         unfused {:.1}% -> fused {:.1}%",
        100.0 * single.ts_tgat_att_share_unfused,
        100.0 * single.ts_tgat_att_share_fused
    );
    println!(
        "train_step loss bit-identical: fused == unfused, and across thread counts \
         (trajectory hash {})",
        single.ts_traj_hash
    );

    // Audit engine timing: the full-workspace interprocedural analysis
    // (walk + lex + parse + call graph + taint) gates CI ahead of tier-1,
    // so it must stay cheap — the budget is 5 s single-threaded.
    let audit_root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    // audit-allow(no-wallclock-outside-obs): timing the audit analysis itself; reported, not fed back
    let audit_start = std::time::Instant::now();
    let audit = benchtemp_audit::run_audit(&audit_root).expect("walk workspace");
    let audit_ms = audit_start.elapsed().as_secs_f64() * 1e3;
    const AUDIT_BUDGET_MS: f64 = 5000.0;
    assert!(audit.ok(), "workspace audit must pass under timing");
    assert!(
        audit_ms <= AUDIT_BUDGET_MS,
        "full-workspace audit took {audit_ms:.0} ms, budget {AUDIT_BUDGET_MS:.0} ms"
    );
    println!(
        "audit: full workspace in {audit_ms:.0} ms (budget {AUDIT_BUDGET_MS:.0} ms) — \
         {} files, {} fns, {} edges, resolved ratio {:.2}",
        audit.graph.files_parsed,
        audit.graph.functions,
        audit.graph.edges,
        audit.graph.resolved_ratio()
    );

    if smoke {
        println!("smoke mode: all kernels and determinism assertions passed; skipping JSON");
        return;
    }

    let report = json!({
        "host_cores": host_cores,
        "matmul_256": {
            "seed_ns_single_thread": single.seed_ns,
            "kernel_ns_single_thread": single.kernel_ns,
            "kernel_ns_multi_thread": multi.kernel_ns,
            "single_thread_speedup": matmul_speedup,
            "single_thread_target": 2.0,
        },
        "eval": {
            "events_per_sec_1_thread": single.events_per_sec,
            "events_per_sec_4_threads": multi.events_per_sec,
            "speedup": eval_speedup,
            "speedup_target": 1.5,
            "speedup_target_applies": eval_target_applies,
            "speedup_target_skip_reason": eval_skip_reason,
            "threads": [single.threads, multi.threads],
            "metrics_bit_identical": true,
        },
        "ranking": {
            "workload": "filtered-negative candidate-set build (Random pool, collision filtering) over the test split, plus the pessimistic-tie MRR/Hits kernel on deterministic scores",
            "rank_negatives": single.rank_k,
            "queries": single.rank_queries,
            "build_queries_per_sec_single_thread": rank_build_qps,
            "metric_queries_per_sec_single_thread": rank_metric_qps,
            "candidate_sets_bit_identical": true,
            "mrr_bit_identical": true,
        },
        "neighbor_sampling": {
            "workload": "TemporalSafe k=10 over every event endpoint at its own timestamp",
            "seed_samples_per_sec_single_thread": seed_sps,
            "csr_samples_per_sec_single_thread": csr_sps,
            "single_thread_speedup": sampling_speedup,
            "single_thread_target": 2.0,
            "mixed_strategy_csr_samples_per_sec": mixed_csr_sps,
            "mixed_strategy_speedup": mixed_speedup,
            "frontier_slots_per_sec_1_thread": frontier_sps_1,
            "frontier_slots_per_sec_4_threads": frontier_sps_4,
            "samples_bit_identical": true,
        },
        "gather": {
            "workload": "hop-1 frontier slot features (duplicates + padding zeros), 64 cols: allocating per-element scalar loop vs allocating per-row gather_rows vs run-length-coalesced gather_rows_into reusing its output buffer",
            "rows_per_pass": gather_rows,
            "coalesced_runs": single.gather_runs,
            "scalar_rows_per_sec_single_thread": gather_scalar_rps,
            "per_row_rows_per_sec_single_thread": gather_perrow_rps,
            "coalesced_rows_per_sec_single_thread": gather_coalesced_rps,
            "single_thread_speedup": gather_speedup,
            "single_thread_target": 2.0,
            "single_thread_target_applies": gather_target_applies,
            "single_thread_target_skip_reason": gather_skip_reason,
            "average_run_length": gather_avg_run,
            "rows_bit_identical": true,
        },
        "store": {
            "workload": "sampling graph bulk-loaded into the paged on-disk store; mixed-strategy and TemporalSafe passes re-run through the paged backend at a 64 KiB page-cache budget (evicting) and a 64 MiB budget (fully cached)",
            "bulk_load_events_per_sec": store_bulk_eps,
            "paged_samples_per_sec_64kib_budget": store_tiny_sps,
            "paged_samples_per_sec_64mib_budget": store_big_sps,
            "resident_samples_per_sec": resident_sps,
            "evictions_at_64kib_budget": single.store_evictions,
            "cache_resident_bytes_at_64kib_budget": single.store_cache_bytes,
            "paged_bit_identical_to_resident": true,
            "paged_bit_identical_across_threads": true,
        },
        "tracing": {
            "workload": "TemporalSafe sampling pass with a dense+sampling span pair per batch",
            "plain_ns_single_thread": single.trace_plain_ns,
            "inert_span_ns_single_thread": single.trace_inert_ns,
            "recorder_ns_single_thread": single.trace_rec_ns,
            "jsonl_trace_ns_single_thread": single.trace_on_ns,
            "inert_overhead_ratio": inert_ratio,
            "inert_overhead_target": 1.0,
            "recorder_overhead_ratio": rec_ratio,
            "jsonl_trace_overhead_ratio": traced_ratio,
            "jsonl_trace_overhead_target": 1.03,
        },
        "train_step": {
            "workload": "100-event train_batch (forward + backward + Adam) after warming temporal state on the graph prefix",
            "tgat_unfused_ns_single_thread": single.ts_tgat_unfused_ns,
            "tgat_fused_ns_single_thread": single.ts_tgat_fused_ns,
            "tgat_fused_speedup": tgat_speedup,
            "tgat_attention_share_of_dense_unfused": single.ts_tgat_att_share_unfused,
            "tgat_attention_share_of_dense_fused": single.ts_tgat_att_share_fused,
            "tgat_attention_ns_single_thread": single.ts_tgat_fused_ns * single.ts_tgat_att_share_fused,
            "tgn_unfused_ns_single_thread": single.ts_tgn_unfused_ns,
            "tgn_fused_ns_single_thread": single.ts_tgn_fused_ns,
            "tgn_fused_speedup": tgn_speedup,
            "single_thread_target": 1.5,
            "loss_bit_identical": true,
        },
        "audit": {
            "workload": "full-workspace static analysis: walk + lex + token rules + item parse + call-graph resolution + interprocedural taint, single thread",
            "full_workspace_ms": audit_ms,
            "budget_ms": AUDIT_BUDGET_MS,
            "within_budget": audit_ms <= AUDIT_BUDGET_MS,
            "files_parsed": audit.graph.files_parsed,
            "functions": audit.graph.functions,
            "edges": audit.graph.edges,
            "resolved_call_ratio": audit.graph.resolved_ratio(),
        },
        "sanitizer": {
            "workload": "full eval pass (batched gather + parallel matmul forward)",
            "plain_ns_single_thread": single.pass_ns,
            "sanitize_off_ns_single_thread": single.san_off_ns,
            "sanitize_on_ns_single_thread": single.san_on_ns,
            "off_overhead_ratio": san_off_ratio,
            "off_overhead_target": 1.0,
            "on_overhead_ratio": san_on_ratio,
            "scores_bit_identical": true,
        },
    });
    save_json(std::path::Path::new("."), "BENCH_kernels.json", &report);
}
