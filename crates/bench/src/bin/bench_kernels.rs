//! Kernel-throughput benchmark for the parallel runtime PR: compares the
//! register-blocked matmul against the seed's branchy kernel (reproduced
//! inline below as the baseline), and measures pipeline-eval throughput at
//! one vs four worker threads while asserting the runtime's determinism
//! contract — the metrics must be bit-identical at any thread count.
//!
//! The pool reads `BENCHTEMP_THREADS` once per process, so each thread
//! count runs in a child process (this same binary, re-invoked with
//! `BENCHTEMP_KERNELS_CHILD=1`). The parent merges the child reports into
//! `BENCH_kernels.json`.

use std::process::Command;

use benchtemp_bench::{save_json, timing};
use benchtemp_core::evaluator::auc_ap_pos_neg;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::temporal_graph::TemporalGraph;
use benchtemp_tensor::nn::Mlp;
use benchtemp_tensor::{init, pool, Graph, Matrix, ParamStore};
use benchtemp_util::json;

const NODE_DIM: usize = 32;
const HIDDEN: usize = 96;
const BATCH: usize = 200;

/// The seed repository's matmul, verbatim: row-major accumulation with a
/// zero-skip branch in the k loop and no register blocking. The baseline
/// the ≥2× single-thread target is measured against.
fn seed_matmul(lhs: &Matrix, rhs: &Matrix) -> Matrix {
    assert_eq!(lhs.cols(), rhs.rows());
    let n = rhs.cols();
    let mut out = Matrix::zeros(lhs.rows(), n);
    for i in 0..lhs.rows() {
        let a_row = lhs.row(i);
        let out_row = &mut out.row_mut(i)[..];
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = rhs.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }
    out
}

/// Score every (src, dst) pair through a fixed MLP — the eval hot path:
/// batched feature gather, parallel matmul forward, sigmoid.
struct EvalWorkload {
    graph: TemporalGraph,
    store: ParamStore,
    mlp: Mlp,
}

impl EvalWorkload {
    fn new() -> Self {
        let mut cfg = GeneratorConfig::small("kernels", 11);
        cfg.num_edges = 6_000;
        cfg.node_dim = NODE_DIM;
        let graph = cfg.generate();
        let mut store = ParamStore::new();
        let mut rng = init::rng(5);
        let mlp = Mlp::new(&mut store, &mut rng, "edge", 2 * NODE_DIM, HIDDEN, 1);
        EvalWorkload { graph, store, mlp }
    }

    fn score_batch(&self, srcs: &[usize], dsts: &[usize]) -> Vec<f32> {
        let mut x = Matrix::zeros(srcs.len(), 2 * NODE_DIM);
        for (r, (&s, &d)) in srcs.iter().zip(dsts).enumerate() {
            x.row_mut(r)[..NODE_DIM].copy_from_slice(self.graph.node_features.row(s));
            x.row_mut(r)[NODE_DIM..].copy_from_slice(self.graph.node_features.row(d));
        }
        let mut g = Graph::new(&self.store);
        let xv = g.input(x);
        let logits = self.mlp.forward(&mut g, xv);
        let probs = g.sigmoid(logits);
        let m = g.value(probs);
        (0..m.rows()).map(|r| m.get(r, 0)).collect()
    }

    /// One full eval pass: every event scored against its positive and a
    /// deterministic negative destination. Returns (pos, neg) scores.
    fn eval_pass(&self) -> (Vec<f32>, Vec<f32>) {
        let g = &self.graph;
        let items = g.num_nodes - g.num_users;
        let mut pos = Vec::with_capacity(g.events.len());
        let mut neg = Vec::with_capacity(g.events.len());
        for batch in g.events.chunks(BATCH) {
            let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
            let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
            let negs: Vec<usize> = batch
                .iter()
                .enumerate()
                .map(|(i, _)| g.num_users + (i * 7) % items)
                .collect();
            pos.extend(self.score_batch(&srcs, &dsts));
            neg.extend(self.score_batch(&srcs, &negs));
        }
        (pos, neg)
    }
}

/// Child-process body: print one `KCHILD` line with all measurements.
fn run_child() {
    let mut rng = init::rng(1);
    let a = init::randn(256, 256, 1.0, &mut rng);
    let b = init::randn(256, 256, 1.0, &mut rng);
    let seed_ns = timing::measure(&mut || std::hint::black_box(seed_matmul(&a, &b)));
    let kernel_ns = timing::measure(&mut || std::hint::black_box(a.matmul(&b)));

    let w = EvalWorkload::new();
    let events = w.graph.events.len();
    let pass_ns = timing::measure(&mut || std::hint::black_box(w.eval_pass()));
    let events_per_sec = events as f64 / (pass_ns / 1e9);

    let (pos, neg) = w.eval_pass();
    let (auc, ap) = auc_ap_pos_neg(&pos, &neg);

    println!(
        "KCHILD threads {} seed_ns {} kernel_ns {} events_per_sec {} auc {:016x} ap {:016x}",
        pool().threads(),
        seed_ns,
        kernel_ns,
        events_per_sec,
        auc.to_bits(),
        ap.to_bits()
    );
}

#[derive(Debug)]
struct ChildReport {
    threads: usize,
    seed_ns: f64,
    kernel_ns: f64,
    events_per_sec: f64,
    auc_bits: String,
    ap_bits: String,
}

fn spawn_child(threads: usize) -> ChildReport {
    let exe = std::env::current_exe().expect("current exe");
    let out = Command::new(exe)
        .env("BENCHTEMP_KERNELS_CHILD", "1")
        .env("BENCHTEMP_THREADS", threads.to_string())
        .output()
        .expect("spawn bench child");
    assert!(
        out.status.success(),
        "child with BENCHTEMP_THREADS={threads} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("KCHILD "))
        .unwrap_or_else(|| panic!("no KCHILD line from child:\n{stdout}"));
    let f: Vec<&str> = line.split_whitespace().collect();
    let field = |key: &str| {
        f.iter()
            .position(|&w| w == key)
            .map(|i| f[i + 1].to_string())
            .unwrap_or_else(|| panic!("missing {key} in: {line}"))
    };
    ChildReport {
        threads: field("threads").parse().unwrap(),
        seed_ns: field("seed_ns").parse().unwrap(),
        kernel_ns: field("kernel_ns").parse().unwrap(),
        events_per_sec: field("events_per_sec").parse().unwrap(),
        auc_bits: field("auc"),
        ap_bits: field("ap"),
    }
}

fn main() {
    if std::env::var("BENCHTEMP_KERNELS_CHILD").is_ok() {
        run_child();
        return;
    }

    println!("== Kernel throughput: seed baseline vs register-blocked parallel runtime ==");
    let single = spawn_child(1);
    let multi = spawn_child(4);

    // The runtime contract: metrics must not depend on the thread count.
    assert_eq!(
        (&single.auc_bits, &single.ap_bits),
        (&multi.auc_bits, &multi.ap_bits),
        "eval metrics must be bit-identical across thread counts"
    );

    let matmul_speedup = single.seed_ns / single.kernel_ns;
    let eval_speedup = multi.events_per_sec / single.events_per_sec;
    println!(
        "matmul 256x256x256 (1 thread): seed {:.0} ns -> kernel {:.0} ns  ({matmul_speedup:.2}x)",
        single.seed_ns, single.kernel_ns
    );
    println!(
        "matmul 256x256x256 (4 threads): kernel {:.0} ns",
        multi.kernel_ns
    );
    println!(
        "eval throughput: {:.0} ev/s (1 thread) -> {:.0} ev/s (4 threads)  ({eval_speedup:.2}x)",
        single.events_per_sec, multi.events_per_sec
    );
    println!(
        "metrics bit-identical across thread counts: auc {} ap {}",
        single.auc_bits, single.ap_bits
    );

    let report = json!({
        "host_cores": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "matmul_256": {
            "seed_ns_single_thread": single.seed_ns,
            "kernel_ns_single_thread": single.kernel_ns,
            "kernel_ns_multi_thread": multi.kernel_ns,
            "single_thread_speedup": matmul_speedup,
            "single_thread_target": 2.0,
        },
        "eval": {
            "events_per_sec_1_thread": single.events_per_sec,
            "events_per_sec_4_threads": multi.events_per_sec,
            "speedup": eval_speedup,
            "speedup_target": 1.5,
            "threads": [single.threads, multi.threads],
            "metrics_bit_identical": true,
        },
    });
    save_json(std::path::Path::new("."), "BENCH_kernels.json", &report);
}
