//! Table 23 — ablation of NeurTW's neural-ODE component on a
//! large-granularity dataset (CanParl, yearly ticks) vs a tiny-granularity
//! one (USLegis, timestamps 0..11): removing NODEs should hurt CanParl far
//! more than USLegis (Appendix H).

use benchtemp_bench::{run_lp_seed, save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let mut auc = TableBuilder::new();
    let mut ap = TableBuilder::new();

    for dataset in [BenchDataset::CanParl, BenchDataset::UsLegis] {
        for variant in ["NeurTW", "NeurTW-noNODE"] {
            for seed in 0..protocol.seeds as u64 {
                let run = run_lp_seed(variant, dataset, &protocol, seed);
                eprintln!(
                    "{variant} on {} seed {seed}: trans AUC {:.4}",
                    dataset.name(),
                    run.transductive.auc
                );
                for setting in Setting::all() {
                    let m = run.metrics_for(setting);
                    let row = format!("{} / {}", dataset.name(), setting.name());
                    auc.add(&row, variant, m.auc);
                    ap.add(&row, variant, m.ap);
                }
            }
        }
    }

    println!(
        "{}",
        auc.render(
            "Table 23 — NeurTW NODEs ablation, ROC AUC",
            "Dataset/Setting"
        )
    );
    println!(
        "{}",
        ap.render("Table 23 — NeurTW NODEs ablation, AP", "Dataset/Setting")
    );
    save_json(
        &protocol.out_dir,
        "table23_nodes_ablation.json",
        &json!({
            "auc": auc.to_entries(),
            "ap": ap.to_entries(),
        }),
    );
}
