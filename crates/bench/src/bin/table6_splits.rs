//! Tables 6 & 7 — DataLoader split statistics: nodes/edges per training,
//! validation, transductive/inductive/New-Old/New-New test sets plus the
//! unseen-node counts (LP), and the plain chronological NC splits.

use benchtemp_bench::{render_table, save_json, Protocol};
use benchtemp_core::dataloader::{LinkPredSplit, NodeClassSplit};
use benchtemp_graph::datasets::BenchDataset;

fn main() {
    let protocol = Protocol::from_args();
    let mut stats = Vec::new();

    // ---- Table 6: link-prediction splits ----
    let headers: Vec<String> = [
        "Dataset",
        "Train n/e",
        "Val n/e",
        "Test n/e",
        "Ind-Val n/e",
        "Ind-Test n/e",
        "NO-Test n/e",
        "NN-Test n/e",
        "Unseen",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for d in protocol.select_datasets(&BenchDataset::all15()) {
        let g = d.config(protocol.scale, 42).generate();
        let split = LinkPredSplit::new(&g, 0);
        let s = split.stats(&g);
        let ne = |x: &benchtemp_core::dataloader::SetStats| format!("{}/{}", x.nodes, x.edges);
        rows.push(vec![
            s.dataset.clone(),
            ne(&s.training),
            ne(&s.validation),
            ne(&s.transductive_test),
            ne(&s.inductive_validation),
            ne(&s.inductive_test),
            ne(&s.new_old_test),
            ne(&s.new_new_test),
            s.unseen_nodes.to_string(),
        ]);
        stats.push(s);
    }
    println!(
        "{}",
        render_table("Table 6: link-prediction split statistics", &headers, &rows)
    );

    // ---- Table 7: node-classification splits ----
    let headers: Vec<String> = ["Dataset", "Train n/e", "Val n/e", "Test n/e"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for d in [
        BenchDataset::Reddit,
        BenchDataset::Wikipedia,
        BenchDataset::Mooc,
    ] {
        let g = d.config(protocol.scale, 42).generate();
        let split = NodeClassSplit::new(&g);
        let ne = |evs: &[benchtemp_graph::Interaction]| {
            format!("{}/{}", g.active_nodes(evs).len(), evs.len())
        };
        rows.push(vec![
            d.name().to_string(),
            ne(&split.train),
            ne(&split.val),
            ne(&split.test),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 7: node-classification split statistics",
            &headers,
            &rows
        )
    );

    save_json(&protocol.out_dir, "table6_splits.json", &stats);
}
