//! Tables 17, 18, 20 — the Appendix-F evaluation on the six newly added
//! datasets: ROC AUC (Table 17) and AP (Table 18) per setting with the
//! **Average Rank** metric over the four large-scale datasets, plus the
//! efficiency block (Table 20).

use benchtemp_bench::{run_lp_seed, save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_core::leaderboard::Leaderboard;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo::PAPER_MODELS;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&PAPER_MODELS);
    let datasets = protocol.select_datasets(&BenchDataset::new6());

    let mut auc: Vec<(Setting, TableBuilder)> = Setting::all()
        .iter()
        .map(|&s| (s, TableBuilder::new()))
        .collect();
    let mut ap: Vec<(Setting, TableBuilder)> = Setting::all()
        .iter()
        .map(|&s| (s, TableBuilder::new()))
        .collect();
    let mut runtime = TableBuilder::new();
    let mut rss = TableBuilder::new();
    let mut state = TableBuilder::new();
    let mut leaderboard = Leaderboard::new();

    for &dataset in &datasets {
        for model in &models {
            let mut per_setting: Vec<Vec<f64>> = vec![Vec::new(); 4];
            // Per-stage wall-clock from the obs profile, surfaced in the
            // leaderboard JSON alongside the quality metrics.
            let mut per_stage: [Vec<f64>; 4] = Default::default();
            // Peak RSS per seed (MB); seeds where /proc/self/status is
            // unavailable simply contribute nothing.
            let mut per_rss: Vec<f64> = Vec::new();
            for seed in 0..protocol.seeds as u64 {
                let run = run_lp_seed(model, dataset, &protocol, seed);
                eprintln!(
                    "{model} on {} seed {seed}: trans AUC {:.4}",
                    dataset.name(),
                    run.transductive.auc
                );
                let ds = dataset.name();
                for (i, setting) in Setting::all().iter().enumerate() {
                    let m = run.metrics_for(*setting);
                    auc[i].1.add(ds, model, m.auc);
                    ap[i].1.add(ds, model, m.ap);
                    per_setting[i].push(m.auc);
                }
                runtime.add(ds, model, run.efficiency.runtime_per_epoch_secs);
                if let Some(b) = run.efficiency.peak_rss_bytes {
                    rss.add(ds, model, b as f64 / 1e6);
                    per_rss.push(b as f64 / 1e6);
                }
                state.add(ds, model, run.efficiency.model_state_bytes as f64 / 1e6);
                let s = &run.efficiency.stages;
                for (acc, v) in
                    per_stage
                        .iter_mut()
                        .zip([s.train_secs, s.val_secs, s.test_secs, s.job_secs])
                {
                    acc.push(v);
                }
            }
            for (i, setting) in Setting::all().iter().enumerate() {
                leaderboard.push_runs(
                    model,
                    dataset.name(),
                    "link_prediction",
                    setting.name(),
                    "AUC",
                    &per_setting[i],
                );
            }
            for (metric, values) in ["train_secs", "val_secs", "test_secs", "job_secs"]
                .iter()
                .zip(&per_stage)
            {
                leaderboard.push_runs(
                    model,
                    dataset.name(),
                    "link_prediction",
                    "Efficiency",
                    metric,
                    values,
                );
            }
            if !per_rss.is_empty() {
                leaderboard.push_runs(
                    model,
                    dataset.name(),
                    "link_prediction",
                    "Efficiency",
                    "peak_rss_mb",
                    &per_rss,
                );
            }
        }
    }

    // Average Rank over the large-scale datasets (Table 17's extra metric).
    let large: Vec<&str> = BenchDataset::large4().iter().map(|d| d.name()).collect();
    for (setting, table) in &auc {
        println!(
            "{}",
            table.render(
                &format!("Table 17 ({}) — ROC AUC, new datasets", setting.name()),
                "Dataset"
            )
        );
        let ranks = leaderboard.average_rank(&large, "link_prediction", setting.name(), "AUC");
        println!(
            "Average Rank ({}, large-scale): {:?}",
            setting.name(),
            ranks
        );
    }
    for (setting, table) in &ap {
        println!(
            "{}",
            table.render(
                &format!("Table 18 ({}) — AP, new datasets", setting.name()),
                "Dataset"
            )
        );
    }
    println!(
        "{}",
        runtime.render_plain("Table 20 — Runtime (s/epoch), new datasets", "Dataset")
    );
    println!(
        "{}",
        rss.render_plain("Table 20 — Peak RSS (MB)", "Dataset")
    );
    println!(
        "{}",
        state.render_plain("Table 20 — Model state (MB)", "Dataset")
    );

    leaderboard
        .save(&protocol.out_dir.join("leaderboard_new_datasets.json"))
        .expect("save");
    save_json(
        &protocol.out_dir,
        "table17_new_datasets.json",
        &json!({
            "auc": auc.iter().map(|(s, t)| json!({"setting": s.name(), "cells": t.to_entries()})).collect::<Vec<_>>(),
            "ap": ap.iter().map(|(s, t)| json!({"setting": s.name(), "cells": t.to_entries()})).collect::<Vec<_>>(),
            "table20_runtime": runtime.to_entries(),
            "table20_rss_mb": rss.to_entries(),
            "table20_state_mb": state.to_entries(),
        }),
    );
}
