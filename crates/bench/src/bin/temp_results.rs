//! Tables 13, 14, 15 — the TeMP model (Appendix E): link-prediction AUC/AP
//! across the four settings on all fifteen datasets, LP efficiency, and
//! node-classification AUC + efficiency on the labelled datasets.

use benchtemp_bench::{run_lp_seed, save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_core::pipeline::train_node_classification;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let datasets = protocol.select_datasets(&BenchDataset::all15());

    // ---- Table 13: AUC & AP per setting ----
    let mut auc = TableBuilder::new();
    let mut ap = TableBuilder::new();
    let mut eff = TableBuilder::new();
    for &dataset in &datasets {
        for seed in 0..protocol.seeds as u64 {
            let run = run_lp_seed("TeMP", dataset, &protocol, seed);
            eprintln!(
                "TeMP on {} seed {seed}: trans AUC {:.4}",
                dataset.name(),
                run.transductive.auc
            );
            let ds = dataset.name();
            for setting in Setting::all() {
                let m = run.metrics_for(setting);
                auc.add(ds, setting.name(), m.auc);
                ap.add(ds, setting.name(), m.ap);
            }
            eff.add(
                ds,
                "Runtime (s/epoch)",
                run.efficiency.runtime_per_epoch_secs,
            );
            eff.add(ds, "Epoch", run.efficiency.epochs_to_converge as f64);
            if let Some(b) = run.efficiency.peak_rss_bytes {
                eff.add(ds, "RSS (MB)", b as f64 / 1e6);
            }
            eff.add(
                ds,
                "State (MB)",
                run.efficiency.model_state_bytes as f64 / 1e6,
            );
            eff.add(ds, "Util (%)", run.efficiency.compute_utilization * 100.0);
        }
    }
    println!(
        "{}",
        auc.render_plain("Table 13 — TeMP link-prediction ROC AUC", "Dataset")
    );
    println!(
        "{}",
        ap.render_plain("Table 13 — TeMP link-prediction AP", "Dataset")
    );
    println!(
        "{}",
        eff.render_plain("Table 14 — TeMP LP efficiency", "Dataset")
    );

    // ---- Table 15: TeMP node classification ----
    let mut nc = TableBuilder::new();
    for dataset in [
        BenchDataset::Reddit,
        BenchDataset::Wikipedia,
        BenchDataset::Mooc,
    ] {
        for seed in 0..protocol.seeds as u64 {
            let graph = dataset.config(protocol.scale, seed ^ 0xda7a).generate();
            let split = benchtemp_core::dataloader::LinkPredSplit::new(&graph, seed);
            let mut model = zoo::build("TeMP", protocol.model_config(seed), &graph);
            let _ = benchtemp_core::pipeline::train_link_prediction(
                model.as_mut(),
                &graph,
                &split,
                &protocol.train_config(seed),
            );
            let run =
                train_node_classification(model.as_mut(), &graph, &protocol.train_config(seed));
            let ds = dataset.name();
            nc.add(ds, "AUC", run.auc);
            nc.add(
                ds,
                "Runtime (s/epoch)",
                run.efficiency.runtime_per_epoch_secs,
            );
            nc.add(ds, "Epoch", run.efficiency.epochs_to_converge as f64);
            nc.add(
                ds,
                "State (MB)",
                run.efficiency.model_state_bytes as f64 / 1e6,
            );
        }
    }
    println!(
        "{}",
        nc.render_plain("Table 15 — TeMP node classification", "Dataset")
    );

    save_json(
        &protocol.out_dir,
        "temp_tables13_15.json",
        &json!({
            "table13_auc": auc.to_entries(),
            "table13_ap": ap.to_entries(),
            "table14_efficiency": eff.to_entries(),
            "table15_nc": nc.to_entries(),
        }),
    );
}
