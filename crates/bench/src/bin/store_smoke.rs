//! CI smoke check for the paged temporal store (DESIGN.md §16).
//!
//! Bulk-loads a generated benchmark preset whose resident footprint is far
//! above the configured page-cache budget, trains a real link-prediction
//! job through the paged backend, and fails unless
//!
//! * every eval metric is bit-identical to the same job trained on the
//!   fully resident CSR backend (same seed, same RNG streams),
//! * the page cache actually evicted during training (the budget bound
//!   was exercised, not merely configured),
//! * the cache's resident bytes never exceeded the budget, and
//! * peak RSS was recorded for the paged run (graceful `None` is only
//!   acceptable off Linux).
//!
//! Prints `STORE_SMOKE_OK` on success so `ci.sh` can grep for it.

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, PagedStoreConfig, TrainConfig};
use benchtemp_graph::datasets::{resident_bytes_report, BenchDataset};
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;
use benchtemp_obs::counters::{STORE_CACHE_RESIDENT_BYTES, STORE_PAGE_EVICTIONS};

const CACHE_BUDGET: usize = 256 * 1024;

fn main() {
    // Capacity-planning table: which presets would exceed a given cache
    // budget when run resident (satellite of DESIGN.md §16).
    print!("{}", resident_bytes_report(0.05));

    // Wikipedia at 2% scale: ~3.1k events × 172-dim edge features ≈ 2.5 MiB
    // of store columns — an order of magnitude over the 256 KiB budget, so
    // training must stream pages in and out the whole way.
    let ds = BenchDataset::Wikipedia;
    let graph = ds.config(0.02, 7).generate();
    println!(
        "store_smoke: {} at 0.02 scale, {} events, estimated resident {:.2} MiB, \
         cache budget {:.0} KiB",
        ds.name(),
        graph.num_events(),
        ds.resident_bytes_estimate(0.02) as f64 / (1 << 20) as f64,
        CACHE_BUDGET as f64 / 1024.0
    );
    let split = LinkPredSplit::new(&graph, 11);
    let model_cfg = ModelConfig {
        embed_dim: 16,
        time_dim: 8,
        neighbors: 5,
        layers: 1,
        seed: 11,
        ..Default::default()
    };
    let cfg = TrainConfig {
        max_epochs: 2,
        seed: 11,
        ..TrainConfig::default()
    };

    let mut resident_model = zoo::build("TGN", model_cfg.clone(), &graph);
    let resident = train_link_prediction(resident_model.as_mut(), &graph, &split, &cfg);

    let paged_cfg = TrainConfig {
        paged_store: Some(PagedStoreConfig {
            dir: None,
            cache_budget_bytes: Some(CACHE_BUDGET),
        }),
        ..cfg
    };
    let ev0 = STORE_PAGE_EVICTIONS.get();
    let mut paged_model = zoo::build("TGN", model_cfg, &graph);
    let paged = train_link_prediction(paged_model.as_mut(), &graph, &split, &paged_cfg);
    let evictions = STORE_PAGE_EVICTIONS.get() - ev0;

    for (name, r, p) in [
        ("transductive", &resident.transductive, &paged.transductive),
        ("inductive", &resident.inductive, &paged.inductive),
        ("new_old", &resident.new_old, &paged.new_old),
        ("new_new", &resident.new_new, &paged.new_new),
    ] {
        assert_eq!(
            (r.auc.to_bits(), r.ap.to_bits()),
            (p.auc.to_bits(), p.ap.to_bits()),
            "{name}: paged training must be bit-identical to resident"
        );
    }
    assert!(
        evictions > 0,
        "no evictions: the {CACHE_BUDGET}-byte budget was never exercised"
    );
    let max_cache = STORE_CACHE_RESIDENT_BYTES.get();
    assert!(
        max_cache <= CACHE_BUDGET as u64,
        "cache resident bytes {max_cache} exceeded the {CACHE_BUDGET}-byte budget"
    );
    match paged.efficiency.peak_rss_bytes {
        Some(rss) => println!(
            "paged run: peak RSS {:.1} MiB, {} evictions, cache high-water {} bytes",
            rss as f64 / (1 << 20) as f64,
            evictions,
            max_cache
        ),
        None => {
            if cfg!(target_os = "linux") {
                panic!("peak_rss_bytes must be recorded on Linux");
            }
        }
    }
    println!(
        "paged == resident: transductive auc bits {:016x}",
        paged.transductive.auc.to_bits()
    );
    println!("STORE_SMOKE_OK");
}
