//! Tables 26 & 27 — NAT under *historical* and *inductive* negative
//! sampling (Appendix J): the harder samplers should pull NAT's
//! near-saturated AUC/AP on Reddit/Wikipedia/Flights-style datasets well
//! below the random-sampler numbers.

use benchtemp_bench::{save_json, Protocol, TableBuilder};
use benchtemp_core::dataloader::Setting;
use benchtemp_core::sampler::NegativeStrategy;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let datasets = protocol.select_datasets(&[
        BenchDataset::Reddit,
        BenchDataset::Wikipedia,
        BenchDataset::Flights,
    ]);
    let strategies = [
        ("Random", NegativeStrategy::Random),
        ("Historical", NegativeStrategy::Historical),
        ("Inductive", NegativeStrategy::Inductive),
    ];

    let mut auc = TableBuilder::new();
    let mut ap = TableBuilder::new();
    for &dataset in &datasets {
        for (sname, strategy) in strategies {
            for seed in 0..protocol.seeds as u64 {
                let graph = dataset.config(protocol.scale, seed ^ 0xda7a).generate();
                let split = benchtemp_core::dataloader::LinkPredSplit::new(&graph, seed);
                let mut model =
                    benchtemp_models::zoo::build("NAT", protocol.model_config(seed), &graph);
                let mut cfg = protocol.train_config(seed);
                cfg.neg_strategy = strategy;
                let run = benchtemp_core::pipeline::train_link_prediction(
                    model.as_mut(),
                    &graph,
                    &split,
                    &cfg,
                );
                eprintln!(
                    "NAT/{sname} on {} seed {seed}: trans AUC {:.4}",
                    dataset.name(),
                    run.transductive.auc
                );
                for setting in Setting::all() {
                    let m = run.metrics_for(setting);
                    let row = format!("{} / {}", sname, dataset.name());
                    auc.add(&row, setting.name(), m.auc);
                    ap.add(&row, setting.name(), m.ap);
                }
            }
        }
    }

    println!(
        "{}",
        auc.render_plain(
            "Table 26 — NAT ROC AUC by negative-sampling strategy",
            "Sampler/Dataset"
        )
    );
    println!(
        "{}",
        ap.render_plain(
            "Table 27 — NAT AP by negative-sampling strategy",
            "Sampler/Dataset"
        )
    );
    save_json(
        &protocol.out_dir,
        "table26_negative_sampling.json",
        &json!({
            "auc": auc.to_entries(),
            "ap": ap.to_entries(),
        }),
    );
}
