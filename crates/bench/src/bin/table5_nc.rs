//! Tables 5 & 12 — node classification on the labelled datasets (Reddit,
//! Wikipedia, MOOC): test ROC AUC per model (Table 5) and the NC efficiency
//! block (Table 12). Protocol: self-supervised LP pre-training, then the
//! frozen-embedding decoder (§3.2.2).

use benchtemp_bench::{save_json, Protocol, TableBuilder};
use benchtemp_core::pipeline::train_node_classification;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo::{self, PAPER_MODELS};
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&PAPER_MODELS);
    let datasets = protocol.select_datasets(&[
        BenchDataset::Reddit,
        BenchDataset::Wikipedia,
        BenchDataset::Mooc,
    ]);

    let mut auc = TableBuilder::new();
    let mut runtime = TableBuilder::new();
    let mut epochs = TableBuilder::new();
    let mut rss = TableBuilder::new();
    let mut state = TableBuilder::new();
    let mut util = TableBuilder::new();
    let mut raw = Vec::new();

    for &dataset in &datasets {
        for model_name in &models {
            for seed in 0..protocol.seeds as u64 {
                let graph = dataset.config(protocol.scale, seed ^ 0xda7a).generate();
                // Pre-train self-supervised; reuse the LP harness so the
                // encoder is the trained one.
                let split = benchtemp_core::dataloader::LinkPredSplit::new(&graph, seed);
                let mut model = zoo::build(model_name, protocol.model_config(seed), &graph);
                let _ = benchtemp_core::pipeline::train_link_prediction(
                    model.as_mut(),
                    &graph,
                    &split,
                    &protocol.train_config(seed),
                );
                let run =
                    train_node_classification(model.as_mut(), &graph, &protocol.train_config(seed));
                eprintln!(
                    "{model_name} on {} seed {seed}: NC AUC {:.4}",
                    dataset.name(),
                    run.auc
                );
                let ds = dataset.name();
                auc.add(ds, model_name, run.auc);
                runtime.add(ds, model_name, run.efficiency.runtime_per_epoch_secs);
                epochs.add(ds, model_name, run.efficiency.epochs_to_converge as f64);
                if let Some(b) = run.efficiency.peak_rss_bytes {
                    rss.add(ds, model_name, b as f64 / 1e6);
                }
                state.add(
                    ds,
                    model_name,
                    run.efficiency.model_state_bytes as f64 / 1e6,
                );
                util.add(ds, model_name, run.efficiency.compute_utilization * 100.0);
                raw.push(run);
            }
        }
    }

    println!(
        "{}",
        auc.render("Table 5 — node classification ROC AUC", "Dataset")
    );
    println!(
        "{}",
        runtime.render_plain("Table 12 — NC runtime (s/epoch)", "Dataset")
    );
    println!("{}", epochs.render_plain("Table 12 — NC epochs", "Dataset"));
    println!(
        "{}",
        rss.render_plain("Table 12 — NC peak RSS (MB)", "Dataset")
    );
    println!(
        "{}",
        state.render_plain("Table 12 — NC model state (MB)", "Dataset")
    );
    println!(
        "{}",
        util.render("Table 12 — NC compute utilization (%)", "Dataset")
    );

    save_json(&protocol.out_dir, "table5_nc_auc.json", &auc.to_entries());
    save_json(
        &protocol.out_dir,
        "table12_nc_efficiency.json",
        &json!({
            "runtime_s_per_epoch": runtime.to_entries(),
            "epochs": epochs.to_entries(),
            "peak_rss_mb": rss.to_entries(),
            "model_state_mb": state.to_entries(),
            "utilization_pct": util.to_entries(),
        }),
    );
    save_json(&protocol.out_dir, "table5_raw_runs.json", &raw);
}
