//! Tables 19 & 21 — dynamic node classification on the eBay datasets:
//! ROC AUC per model with Average Rank (Table 19) and the NC efficiency
//! block for the new datasets (Table 21).

use benchtemp_bench::{save_json, Protocol, TableBuilder};
use benchtemp_core::leaderboard::Leaderboard;
use benchtemp_core::pipeline::train_node_classification;
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_models::zoo::{self, PAPER_MODELS};
use benchtemp_util::json;

fn main() {
    let protocol = Protocol::from_args();
    let models = protocol.select_models(&PAPER_MODELS);
    let datasets = protocol.select_datasets(&[BenchDataset::EbaySmall, BenchDataset::EbayLarge]);

    let mut auc = TableBuilder::new();
    let mut runtime = TableBuilder::new();
    let mut rss = TableBuilder::new();
    let mut state = TableBuilder::new();
    let mut leaderboard = Leaderboard::new();

    for &dataset in &datasets {
        for model_name in &models {
            let mut values = Vec::new();
            for seed in 0..protocol.seeds as u64 {
                let graph = dataset.config(protocol.scale, seed ^ 0xda7a).generate();
                let split = benchtemp_core::dataloader::LinkPredSplit::new(&graph, seed);
                let mut model = zoo::build(model_name, protocol.model_config(seed), &graph);
                let _ = benchtemp_core::pipeline::train_link_prediction(
                    model.as_mut(),
                    &graph,
                    &split,
                    &protocol.train_config(seed),
                );
                let run =
                    train_node_classification(model.as_mut(), &graph, &protocol.train_config(seed));
                eprintln!(
                    "{model_name} on {} seed {seed}: NC AUC {:.4}",
                    dataset.name(),
                    run.auc
                );
                let ds = dataset.name();
                auc.add(ds, model_name, run.auc);
                runtime.add(ds, model_name, run.efficiency.runtime_per_epoch_secs);
                if let Some(b) = run.efficiency.peak_rss_bytes {
                    rss.add(ds, model_name, b as f64 / 1e6);
                }
                state.add(
                    ds,
                    model_name,
                    run.efficiency.model_state_bytes as f64 / 1e6,
                );
                values.push(run.auc);
            }
            leaderboard.push_runs(
                model_name,
                dataset.name(),
                "node_classification",
                "Transductive",
                "AUC",
                &values,
            );
        }
    }

    println!(
        "{}",
        auc.render("Table 19 — eBay node classification ROC AUC", "Dataset")
    );
    let ds_names: Vec<&str> = datasets.iter().map(|d| d.name()).collect();
    let ranks = leaderboard.average_rank(&ds_names, "node_classification", "Transductive", "AUC");
    println!("Average Rank: {ranks:?}");
    println!(
        "{}",
        runtime.render_plain("Table 21 — NC runtime (s/epoch)", "Dataset")
    );
    println!(
        "{}",
        rss.render_plain("Table 21 — NC peak RSS (MB)", "Dataset")
    );
    println!(
        "{}",
        state.render_plain("Table 21 — NC model state (MB)", "Dataset")
    );

    let ranks_json: Vec<_> = ranks
        .iter()
        .map(|(m, r)| json!({ "model": m.as_str(), "rank": *r }))
        .collect();
    save_json(
        &protocol.out_dir,
        "table19_ebay_nc.json",
        &json!({
            "auc": auc.to_entries(),
            "average_rank": ranks_json,
            "table21_runtime": runtime.to_entries(),
            "table21_rss_mb": rss.to_entries(),
            "table21_state_mb": state.to_entries(),
        }),
    );
}
