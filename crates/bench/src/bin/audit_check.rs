//! CI negative self-test for the audit subsystem: proves the gate can
//! actually fail before ci.sh trusts its green.
//!
//! Four checks, all in-process:
//!   1. the workspace audit passes (same invocation ci.sh gates on),
//!   2. the seeded-violation fixture tree FAILS — every lint rule fires at
//!      least once, so a silently-broken rule can't rot into a no-op,
//!   3. the v2 fixture tree FAILS through the interprocedural rules alone —
//!      each cross-file bug is convicted with a call trace while every v1
//!      token rule stays silent on the same tree,
//!   4. the runtime sanitizer catches a deliberately overlapping chunk-slot
//!      claim (the race seed) and names the contested slots.
//!
//! Prints `AUDIT_CHECK_OK` and exits 0 only if all four hold.

use std::panic::catch_unwind;
use std::path::PathBuf;

use benchtemp_audit::rules;
use benchtemp_audit::run_audit;
use benchtemp_tensor::sanitize;

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);

    // 1. The workspace itself is clean.
    let ws = run_audit(&root).expect("walk workspace");
    let unwaivered: Vec<_> = ws.unwaivered().collect();
    assert!(
        unwaivered.is_empty() && ws.ok(),
        "workspace audit must pass, found: {unwaivered:?}"
    );
    println!(
        "audit_check: workspace clean ({} files, {} waived hit(s))",
        ws.files_scanned,
        ws.violations.len()
    );

    // 2. The seeded fixture fails, with every rule represented — the lint
    // driver's own negative control.
    let fixture = root.join("crates/audit/tests/fixtures");
    let fx = run_audit(&fixture).expect("walk fixture");
    assert!(!fx.ok(), "seeded fixture must fail the audit");
    for rule in [
        rules::RULE_HASH_ITER,
        rules::RULE_WALLCLOCK,
        rules::RULE_THREAD_SPAWN,
        rules::RULE_SAFETY_COMMENT,
        rules::RULE_ENV_REGISTRY,
        rules::RULE_UNFUSED_AFFINE,
        rules::RULE_PER_HEAD_ATTENTION,
        rules::RULE_SCALAR_GATHER,
        rules::RULE_WAIVER_SYNTAX,
    ] {
        assert!(
            fx.unwaivered().any(|v| v.rule == rule),
            "seeded fixture must trip `{rule}` — the rule has gone silent"
        );
    }
    println!(
        "audit_check: seeded fixture fails as designed ({} unwaivered hit(s), all 9 rules fire)",
        fx.unwaivered().count()
    );

    // 3. The v2 fixture: cross-file bugs the per-file token rules cannot
    // see. The interprocedural rules must convict each one with a trace,
    // and the v1 counterparts must stay silent — proving the new rules add
    // real coverage rather than re-reporting what v1 already catches.
    let fixture2 = root.join("crates/audit/tests/fixtures/v2");
    let fx2 = run_audit(&fixture2).expect("walk v2 fixture");
    assert!(!fx2.ok(), "seeded v2 fixture must fail the audit");
    for rule in [
        rules::RULE_DETERMINISM_TAINT,
        rules::RULE_ALLOC_REACH,
        rules::RULE_CLAIMED_WRITE,
    ] {
        assert!(
            fx2.unwaivered().any(|v| v.rule == rule),
            "v2 fixture must trip `{rule}` — the rule has gone silent"
        );
    }
    for rule in [
        rules::RULE_WALLCLOCK,
        rules::RULE_HASH_ITER,
        rules::RULE_ENV_REGISTRY,
    ] {
        assert!(
            !fx2.violations.iter().any(|v| v.rule == rule),
            "v1 rule `{rule}` fired on the v2 fixture — the seeded bugs are \
             no longer v2-only catches"
        );
    }
    assert!(
        fx2.unwaivered()
            .all(|v| v.rule == rules::RULE_CLAIMED_WRITE || !v.trace.is_empty()),
        "every reachability conviction must carry its call path"
    );
    println!(
        "audit_check: v2 fixture fails only interprocedurally ({} unwaivered hit(s), \
         {} fns / {} edges, resolved ratio {:.2})",
        fx2.unwaivered().count(),
        fx2.graph.functions,
        fx2.graph.edges,
        fx2.graph.resolved_ratio()
    );

    // 4. The sanitizer rejects an overlapping claim set. Chunks 0 and 1
    // both claim slots 5..10 — exactly the broken chunk arithmetic the
    // checker exists to catch.
    sanitize::set_forced(Some(true));
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the panic is expected; keep CI logs clean
    let r = catch_unwind(|| {
        sanitize::check_slot_claims("audit_check_seeded_race", &[(0, 0..10), (1, 5..15)]);
    });
    std::panic::set_hook(default_hook);
    sanitize::set_forced(None);
    let err = r.expect_err("overlapping claims must panic under BENCHTEMP_SANITIZE");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("overlap") && msg.contains("audit_check_seeded_race"),
        "sanitizer diagnostic must name the defect and the site: {msg:?}"
    );
    println!("audit_check: sanitizer caught the seeded overlapping-slot claim");

    println!("AUDIT_CHECK_OK");
}
