//! CI negative self-test for the audit subsystem: proves the gate can
//! actually fail before ci.sh trusts its green.
//!
//! Three checks, all in-process:
//!   1. the workspace audit passes (same invocation ci.sh gates on),
//!   2. the seeded-violation fixture tree FAILS — every lint rule fires at
//!      least once, so a silently-broken rule can't rot into a no-op,
//!   3. the runtime sanitizer catches a deliberately overlapping chunk-slot
//!      claim (the race seed) and names the contested slots.
//!
//! Prints `AUDIT_CHECK_OK` and exits 0 only if all three hold.

use std::panic::catch_unwind;
use std::path::PathBuf;

use benchtemp_audit::rules;
use benchtemp_audit::run_audit;
use benchtemp_tensor::sanitize;

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);

    // 1. The workspace itself is clean.
    let ws = run_audit(&root).expect("walk workspace");
    let unwaivered: Vec<_> = ws.unwaivered().collect();
    assert!(
        unwaivered.is_empty() && ws.ok(),
        "workspace audit must pass, found: {unwaivered:?}"
    );
    println!(
        "audit_check: workspace clean ({} files, {} waived hit(s))",
        ws.files_scanned,
        ws.violations.len()
    );

    // 2. The seeded fixture fails, with every rule represented — the lint
    // driver's own negative control.
    let fixture = root.join("crates/audit/tests/fixtures");
    let fx = run_audit(&fixture).expect("walk fixture");
    assert!(!fx.ok(), "seeded fixture must fail the audit");
    for rule in [
        rules::RULE_HASH_ITER,
        rules::RULE_WALLCLOCK,
        rules::RULE_THREAD_SPAWN,
        rules::RULE_SAFETY_COMMENT,
        rules::RULE_ENV_REGISTRY,
        rules::RULE_UNFUSED_AFFINE,
        rules::RULE_PER_HEAD_ATTENTION,
        rules::RULE_SCALAR_GATHER,
        rules::RULE_WAIVER_SYNTAX,
    ] {
        assert!(
            fx.unwaivered().any(|v| v.rule == rule),
            "seeded fixture must trip `{rule}` — the rule has gone silent"
        );
    }
    println!(
        "audit_check: seeded fixture fails as designed ({} unwaivered hit(s), all 9 rules fire)",
        fx.unwaivered().count()
    );

    // 3. The sanitizer rejects an overlapping claim set. Chunks 0 and 1
    // both claim slots 5..10 — exactly the broken chunk arithmetic the
    // checker exists to catch.
    sanitize::set_forced(Some(true));
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // the panic is expected; keep CI logs clean
    let r = catch_unwind(|| {
        sanitize::check_slot_claims("audit_check_seeded_race", &[(0, 0..10), (1, 5..15)]);
    });
    std::panic::set_hook(default_hook);
    sanitize::set_forced(None);
    let err = r.expect_err("overlapping claims must panic under BENCHTEMP_SANITIZE");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("overlap") && msg.contains("audit_check_seeded_race"),
        "sanitizer diagnostic must name the defect and the site: {msg:?}"
    );
    println!("audit_check: sanitizer caught the seeded overlapping-slot claim");

    println!("AUDIT_CHECK_OK");
}
