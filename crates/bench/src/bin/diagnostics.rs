//! Diagnostic workloads: the model zoo on T-GRAB-style synthetic streams,
//! each of which isolates ONE temporal-reasoning skill (see
//! `benchtemp_graph::generators::DiagnosticSkill`):
//!
//! * **periodicity** — decode the active phase from the timestamp,
//! * **delayed-effect** — carry a pending cause across a fixed lag,
//! * **long-range-memory** — recall a partner buried under a long
//!   distractor phase.
//!
//! Each stream runs through the *full* link-prediction pipeline with
//! filtered-negative ranking enabled, so the headline number per skill is
//! transductive MRR: by construction the temporal rule is the only signal
//! (edge features are pure noise), so MRR directly measures the skill.
//! Prints per-skill tables plus a per-skill zoo ranking, and saves
//! `diagnostics.json` with the recorded rankings.

use benchtemp_bench::{run_lp_seed_on, save_json, Protocol, TableBuilder};
use benchtemp_core::evaluator::mean_std;
use benchtemp_graph::generators::DiagnosticConfig;
use benchtemp_models::zoo::PAPER_MODELS;
use benchtemp_util::json;

fn main() {
    let mut protocol = Protocol::from_args();
    if protocol.rank_negatives == 0 {
        // Ranking is the whole point of the diagnostics; keep it on even if
        // the shared flag default was overridden to 0.
        eprintln!("diagnostics: --rank-negs 0 requested; forcing 20");
        protocol.rank_negatives = 20;
    }
    let models = protocol.select_models(&PAPER_MODELS);
    let skills = DiagnosticConfig::suite(protocol.scale, 0);

    let mut mrr = TableBuilder::new();
    let mut hits10 = TableBuilder::new();
    let mut auc = TableBuilder::new();
    // (skill, model) → per-seed transductive MRR, for the recorded ranking.
    let mut by_cell: std::collections::HashMap<(String, String), Vec<f64>> = Default::default();
    let mut raw_runs = Vec::new();

    let total_jobs = models.len() * skills.len() * protocol.seeds;
    let mut done = 0usize;
    for base in &skills {
        for model in &models {
            for seed in 0..protocol.seeds as u64 {
                // Fresh stream per seed, same skill: the rule is fixed, the
                // partner tables and event order vary.
                let cfg = DiagnosticConfig {
                    seed: seed ^ 0xd1a6,
                    ..base.clone()
                };
                let graph = cfg.generate();
                let run = run_lp_seed_on(model, &graph, &protocol, seed);
                done += 1;
                let t = &run.transductive;
                let r = t.ranking.as_ref().expect("ranking pass disabled");
                eprintln!(
                    "[{done}/{total_jobs}] {model} on {}: MRR {:.4}  AUC {:.4}",
                    cfg.name, r.mrr, t.auc
                );
                mrr.add(&cfg.name, model, r.mrr);
                hits10.add(&cfg.name, model, r.hits_at_10);
                auc.add(&cfg.name, model, t.auc);
                by_cell
                    .entry((cfg.name.clone(), model.clone()))
                    .or_default()
                    .push(r.mrr);
                raw_runs.push(run);
            }
        }
    }

    println!(
        "{}",
        mrr.render(
            &format!(
                "Diagnostics — transductive filtered-negative MRR (K={})",
                protocol.rank_negatives
            ),
            "Skill"
        )
    );
    println!("{}", hits10.render("Diagnostics — Hits@10", "Skill"));
    println!("{}", auc.render("Diagnostics — ROC AUC", "Skill"));

    // Per-skill zoo ranking by mean MRR (ties broken by name for a stable
    // record), printed and saved so regressions in a single skill are
    // visible as a rank flip, not just a metric drift.
    let mut skill_reports = Vec::new();
    for base in &skills {
        let mut ranked: Vec<(String, f64, f64)> = models
            .iter()
            .filter_map(|m| {
                let vals = by_cell.get(&(base.name.clone(), m.clone()))?;
                let (mean, std) = mean_std(vals);
                Some((m.clone(), mean, std))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let line = ranked
            .iter()
            .map(|(m, mean, _)| format!("{m} {mean:.4}"))
            .collect::<Vec<_>>()
            .join("  >  ");
        println!("{} ranking: {line}", base.name);
        skill_reports.push(json!({
            "skill": base.skill.name(),
            "dataset": base.name,
            "num_edges": base.num_edges as u64,
            "ranking": ranked
                .iter()
                .map(|(m, mean, std)| json!({
                    "model": m,
                    "mrr_mean": *mean,
                    "mrr_std": *std,
                }))
                .collect::<Vec<_>>(),
        }));
    }

    save_json(
        &protocol.out_dir,
        "diagnostics.json",
        &json!({
            "rank_negatives": protocol.rank_negatives as u64,
            "seeds": protocol.seeds as u64,
            "mrr": mrr.to_entries(),
            "hits_at_10": hits10.to_entries(),
            "auc": auc.to_entries(),
            "skills": skill_reports,
        }),
    );
    save_json(&protocol.out_dir, "diagnostics_raw_runs.json", &raw_runs);
}
