//! Tables 2 & 16 — dataset statistics of the generated benchmark datasets,
//! side by side with the paper's published counts, plus the Fig. 3 node
//! reindexing demonstration (Taobao-style shrink factor).

use benchtemp_bench::{render_table, save_json, Protocol};
use benchtemp_graph::datasets::BenchDataset;
use benchtemp_graph::reindex::{reindex_heterogeneous, shrink_factor, RawInteraction};
use benchtemp_graph::stats::DatasetStats;

fn main() {
    let protocol = Protocol::from_args();
    let mut all_stats = Vec::new();

    for (title, datasets) in [
        (
            "Table 2: dataset statistics (15 benchmark datasets)",
            BenchDataset::all15(),
        ),
        ("Table 16: newly added datasets", BenchDataset::new6()),
    ] {
        let headers: Vec<String> = [
            "Dataset",
            "Domain",
            "#Nodes",
            "#Edges",
            "AvgDeg",
            "Recur",
            "Bip",
            "Paper#Nodes",
            "Paper#Edges",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let mut rows = Vec::new();
        for d in protocol.select_datasets(&datasets) {
            let g = d.config(protocol.scale, 42).generate();
            let s = DatasetStats::compute(&g);
            let p = d.paper_stats();
            rows.push(vec![
                s.name.clone(),
                p.domain.to_string(),
                s.num_nodes.to_string(),
                s.num_edges.to_string(),
                format!("{:.2}", s.avg_degree),
                format!("{:.2}", s.recurrence_ratio),
                if s.bipartite { "hetero" } else { "homo" }.to_string(),
                p.nodes.to_string(),
                p.edges.to_string(),
            ]);
            all_stats.push(s);
        }
        println!("{}", render_table(title, &headers, &rows));
    }

    // ---- Fig. 3 reindexing demo ----
    let raw: Vec<RawInteraction> = (0..1000)
        .map(|i| RawInteraction {
            user: (i * 7919) % 5_162_993, // sparse raw ids, Taobao-style
            item: 5_000_000 + (i * 104_729) % 90_000,
            t: i as f64,
        })
        .collect();
    let rx = reindex_heterogeneous(&raw);
    println!(
        "\n== Fig. 3: node reindexing ==\nraw max id {} → {} contiguous nodes; \
         feature-matrix shrink factor {:.2}× (paper reports 62.53× on Taobao)",
        raw.iter().flat_map(|r| [r.user, r.item]).max().unwrap(),
        rx.num_nodes,
        shrink_factor(&raw, &rx)
    );

    save_json(&protocol.out_dir, "table2_stats.json", &all_stats);
}
