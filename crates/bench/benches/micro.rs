//! Criterion micro-benchmarks of the pipeline's hot components: tensor
//! kernels, neighbor lookup/sampling, walk sampling, negative sampling,
//! the chronological split, and the evaluator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::evaluator::{average_precision, roc_auc};
use benchtemp_core::pipeline::StreamContext;
use benchtemp_core::sampler::{EdgeSampler, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::{NeighborFinder, SamplingStrategy};
use benchtemp_models::walks::sample_walks;
use benchtemp_tensor::{init, Matrix, Tape};

fn graph() -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("bench", 7);
    cfg.num_users = 200;
    cfg.num_items = 100;
    cfg.num_edges = 20_000;
    cfg.generate()
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = init::rng(1);
    let a = init::randn(128, 128, 1.0, &mut rng);
    let b = init::randn(128, 128, 1.0, &mut rng);
    c.bench_function("tensor/matmul_128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });

    c.bench_function("tensor/forward_backward_mlp", |bench| {
        let x = init::randn(100, 64, 1.0, &mut rng);
        let w1 = init::xavier_uniform(64, 64, &mut rng);
        let w2 = init::xavier_uniform(64, 1, &mut rng);
        let targets = vec![1.0f32; 100];
        bench.iter(|| {
            let mut t = Tape::new();
            let xv = t.leaf(x.clone());
            let w1v = t.leaf(w1.clone());
            let w2v = t.leaf(w2.clone());
            let h = t.matmul(xv, w1v);
            let h = t.relu(h);
            let logits = t.matmul(h, w2v);
            let loss = t.bce_with_logits(logits, &targets);
            black_box(t.backward(loss))
        })
    });

    c.bench_function("tensor/grouped_attention_fwd_bwd", |bench| {
        let q = init::randn(100, 32, 1.0, &mut rng);
        let k = init::randn(1000, 32, 1.0, &mut rng);
        let v = init::randn(1000, 32, 1.0, &mut rng);
        let mask = vec![true; 1000];
        bench.iter(|| {
            let mut t = Tape::new();
            let qv = t.leaf(q.clone());
            let kv = t.leaf(k.clone());
            let vv = t.leaf(v.clone());
            let out = t.grouped_attention(qv, kv, vv, 10, &mask);
            let loss = t.mean_all(out);
            black_box(t.backward(loss))
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    let g = graph();
    c.bench_function("graph/generate_20k_events", |bench| {
        let mut cfg = GeneratorConfig::small("gen", 7);
        cfg.num_edges = 20_000;
        bench.iter(|| black_box(cfg.generate()))
    });
    c.bench_function("graph/neighbor_finder_build", |bench| {
        bench.iter(|| black_box(NeighborFinder::from_events(g.num_nodes, &g.events)))
    });

    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let mut rng = init::rng(3);
    c.bench_function("graph/sample_neighbors_most_recent", |bench| {
        bench.iter(|| {
            black_box(nf.sample_before(5, 800.0, 10, SamplingStrategy::MostRecent, &mut rng))
        })
    });
    c.bench_function("graph/sample_neighbors_temporal_safe", |bench| {
        bench.iter(|| {
            black_box(nf.sample_before(5, 800.0, 10, SamplingStrategy::TemporalSafe, &mut rng))
        })
    });

    let ctx = StreamContext { graph: &g, neighbors: &nf };
    c.bench_function("graph/sample_temporal_walks_m4_l3", |bench| {
        bench.iter(|| {
            black_box(sample_walks(&ctx, 5, 800.0, 4, 3, SamplingStrategy::Uniform, &mut rng))
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let g = graph();
    c.bench_function("pipeline/link_pred_split_20k", |bench| {
        bench.iter(|| black_box(LinkPredSplit::new(&g, 0)))
    });

    let split = LinkPredSplit::new(&g, 0);
    c.bench_function("pipeline/negative_sampler_batch200", |bench| {
        let mut sampler = EdgeSampler::new(&g, &split.train, NegativeStrategy::Random, 1);
        bench.iter(|| black_box(sampler.sample_batch(&g.events[..200])))
    });
    c.bench_function("pipeline/historical_sampler_build", |bench| {
        bench.iter_batched(
            || (),
            |_| black_box(EdgeSampler::new(&g, &split.train, NegativeStrategy::Historical, 1)),
            BatchSize::SmallInput,
        )
    });

    let mut rng = init::rng(9);
    let scores: Vec<f32> =
        (0..10_000).map(|_| init::standard_normal(&mut rng)).collect();
    let labels: Vec<f32> = (0..10_000).map(|i| (i % 2) as f32).collect();
    c.bench_function("evaluator/roc_auc_10k", |bench| {
        bench.iter(|| black_box(roc_auc(&labels, &scores)))
    });
    c.bench_function("evaluator/average_precision_10k", |bench| {
        bench.iter(|| black_box(average_precision(&labels, &scores)))
    });
    let _ = Matrix::zeros(1, 1);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tensor, bench_graph, bench_pipeline
}
criterion_main!(benches);
