//! Micro-benchmarks of the pipeline's hot components: tensor kernels,
//! neighbor lookup/sampling, walk sampling, negative sampling, the
//! chronological split, and the evaluator. Plain `harness = false` timers
//! (see `benchtemp_bench::timing`), so the workspace builds offline.

use std::hint::black_box;

use benchtemp_bench::timing;
use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::evaluator::{auc_ap, average_precision, roc_auc};
use benchtemp_core::pipeline::StreamContext;
use benchtemp_core::sampler::{EdgeSampler, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::{NeighborFinder, SampleScratch, SamplingStrategy};
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_models::walks::sample_walks;
use benchtemp_tensor::{init, Tape};

fn graph() -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("bench", 7);
    cfg.num_users = 200;
    cfg.num_items = 100;
    cfg.num_edges = 20_000;
    cfg.generate()
}

fn bench_tensor() {
    let mut rng = init::rng(1);
    let a = init::randn(128, 128, 1.0, &mut rng);
    let b = init::randn(128, 128, 1.0, &mut rng);
    timing::run("tensor/matmul_128", || black_box(a.matmul(&b)));

    let x = init::randn(100, 64, 1.0, &mut rng);
    let w1 = init::xavier_uniform(64, 64, &mut rng);
    let w2 = init::xavier_uniform(64, 1, &mut rng);
    let targets = vec![1.0f32; 100];
    timing::run("tensor/forward_backward_mlp", || {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let w1v = t.leaf(w1.clone());
        let w2v = t.leaf(w2.clone());
        let h = t.matmul(xv, w1v);
        let h = t.relu(h);
        let logits = t.matmul(h, w2v);
        let loss = t.bce_with_logits(logits, &targets);
        black_box(t.backward(loss))
    });

    let q = init::randn(100, 32, 1.0, &mut rng);
    let k = init::randn(1000, 32, 1.0, &mut rng);
    let v = init::randn(1000, 32, 1.0, &mut rng);
    let mask = vec![true; 1000];
    timing::run("tensor/grouped_attention_fwd_bwd", || {
        let mut t = Tape::new();
        let qv = t.leaf(q.clone());
        let kv = t.leaf(k.clone());
        let vv = t.leaf(v.clone());
        let out = t.grouped_attention(qv, kv, vv, 10, &mask);
        let loss = t.mean_all(out);
        black_box(t.backward(loss))
    });
}

fn bench_graph() {
    let g = graph();
    let mut gen_cfg = GeneratorConfig::small("gen", 7);
    gen_cfg.num_edges = 20_000;
    timing::run("graph/generate_20k_events", || {
        black_box(gen_cfg.generate())
    });
    timing::run("graph/neighbor_finder_build", || {
        black_box(NeighborFinder::from_events(g.num_nodes, &g.events))
    });

    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let mut rng = init::rng(3);
    timing::run("graph/sample_neighbors_most_recent", || {
        black_box(nf.sample_before(5, 800.0, 10, SamplingStrategy::MostRecent, &mut rng))
    });
    let mut rng = init::rng(3);
    timing::run("graph/sample_neighbors_temporal_safe", || {
        black_box(nf.sample_before(5, 800.0, 10, SamplingStrategy::TemporalSafe, &mut rng))
    });

    // Allocation-free path: scratch and output buffers reused across calls.
    let mut rng = init::rng(3);
    let mut scratch = SampleScratch::new();
    let mut out = Vec::new();
    timing::run("graph/sample_into_temporal_safe", || {
        nf.sample_into(
            5,
            800.0,
            10,
            SamplingStrategy::TemporalSafe,
            &mut rng,
            &mut scratch,
            &mut out,
        );
        black_box(out.len())
    });
    let mut rng = init::rng(3);
    timing::run("graph/sample_one_temporal_safe", || {
        black_box(nf.sample_one(
            5,
            800.0,
            SamplingStrategy::TemporalSafe,
            &mut rng,
            &mut scratch,
        ))
    });

    // Batched multi-hop frontier over 256 roots, k=10, 2 hops.
    let roots: Vec<usize> = (0..256).map(|i| i % g.num_nodes).collect();
    let times: Vec<f64> = (0..256).map(|i| 400.0 + i as f64).collect();
    timing::run("graph/sample_frontier_256x10x2", || {
        black_box(nf.sample_frontier(&roots, &times, 10, 2, SamplingStrategy::Uniform, 42))
    });

    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let mut rng = init::rng(3);
    timing::run("graph/sample_temporal_walks_m4_l3", || {
        black_box(sample_walks(
            &ctx,
            5,
            800.0,
            4,
            3,
            SamplingStrategy::Uniform,
            &mut rng,
        ))
    });
}

fn bench_pipeline() {
    let g = graph();
    timing::run("pipeline/link_pred_split_20k", || {
        black_box(LinkPredSplit::new(&g, 0))
    });

    let split = LinkPredSplit::new(&g, 0);
    let mut sampler = EdgeSampler::new(&g, &split.train, NegativeStrategy::Random, 1);
    timing::run("pipeline/negative_sampler_batch200", || {
        black_box(sampler.sample_batch(&g.events[..200]))
    });
    timing::run("pipeline/historical_sampler_build", || {
        black_box(EdgeSampler::new(
            &g,
            &split.train,
            NegativeStrategy::Historical,
            1,
        ))
    });

    let mut rng = init::rng(9);
    let scores: Vec<f32> = (0..10_000)
        .map(|_| init::standard_normal(&mut rng))
        .collect();
    let labels: Vec<f32> = (0..10_000).map(|i| (i % 2) as f32).collect();
    timing::run("evaluator/roc_auc_10k", || {
        black_box(roc_auc(&labels, &scores))
    });
    timing::run("evaluator/average_precision_10k", || {
        black_box(average_precision(&labels, &scores))
    });
    timing::run("evaluator/fused_auc_ap_10k", || {
        black_box(auc_ap(&labels, &scores))
    });
}

fn main() {
    bench_tensor();
    bench_graph();
    bench_pipeline();
}
