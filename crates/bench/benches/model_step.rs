//! Benchmark: one training step (forward + backward + Adam) per model on
//! an identical batch — the per-batch decomposition of Table 4's runtime
//! column. The expected ordering mirrors the paper's key claims:
//! EdgeBank ≪ NAT (fastest learned model, via N-caches) < the memory
//! family (JODIE < DyRep < TGN) ≪ the deep-attention / walk models
//! (TGAT, CAWN, NeurTW), with NeurTW the slowest.

use std::hint::black_box;

use benchtemp_bench::timing;
use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_graph::NeighborFinder;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo;

fn main() {
    let mut cfg = GeneratorConfig::small("step", 11);
    cfg.num_edges = 5_000;
    let g = cfg.generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let batch = &g.events[1_000..1_100];
    let negs: Vec<usize> = batch
        .iter()
        .enumerate()
        .map(|(i, _)| g.num_users + (i * 7) % (g.num_nodes - g.num_users))
        .collect();

    for name in zoo::ALL_MODELS {
        let mut model = zoo::build(
            name,
            ModelConfig {
                seed: 1,
                ..Default::default()
            },
            &g,
        );
        // Warm temporal state so the step is representative.
        let warm: Vec<usize> = g.events[..1_000].iter().map(|e| e.dst).collect();
        for (chunk, negs) in g.events[..1_000].chunks(200).zip(warm.chunks(200)) {
            let _ = model.eval_batch(&ctx, chunk, negs);
        }
        timing::run(&format!("model_train_batch100/{name}"), || {
            black_box(model.train_batch(&ctx, batch, &negs))
        });
    }
}
