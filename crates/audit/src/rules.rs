//! The eight workspace lint rules, each a pure function over one file's
//! token stream. See DESIGN.md §10 for the rationale behind every rule and
//! the precise waiver semantics.
//!
//! Rules operate on lexed tokens (not an AST), so their matching is
//! deliberately shallow and per-file: a `HashMap` smuggled across a file
//! boundary behind a type alias will not be seen. That trade keeps the
//! driver dependency-free and fast; the rules are a tripwire, not a proof.

use std::collections::BTreeSet;

use crate::lexer::{Tok, Token};

/// Rule identifiers — stable strings used in waivers and the JSON report.
pub const RULE_HASH_ITER: &str = "no-hashmap-iteration-in-numeric-path";
pub const RULE_WALLCLOCK: &str = "no-wallclock-outside-obs";
pub const RULE_THREAD_SPAWN: &str = "no-raw-thread-spawn";
pub const RULE_SAFETY_COMMENT: &str = "safety-comment-required";
pub const RULE_ENV_REGISTRY: &str = "env-read-registry";
pub const RULE_UNFUSED_AFFINE: &str = "no-unfused-affine-chain";
pub const RULE_PER_HEAD_ATTENTION: &str = "no-per-head-slice-attention";
pub const RULE_SCALAR_GATHER: &str = "no-scalar-gather-in-hot-path";
/// Pseudo-rule for malformed `audit-allow` comments (unknown rule name or
/// missing reason). Never waivable — a waiver that cannot be read is noise.
pub const RULE_WAIVER_SYNTAX: &str = "waiver-syntax";
// Interprocedural rules over the workspace call graph (see
// [`crate::interproc`]); hits carry full call-path traces.
pub const RULE_DETERMINISM_TAINT: &str = "determinism-taint-hot-path";
pub const RULE_ALLOC_REACH: &str = "hot-path-alloc-reachability";
pub const RULE_CLAIMED_WRITE: &str = "claimed-write-audit";

pub const ALL_RULES: [&str; 12] = [
    RULE_HASH_ITER,
    RULE_WALLCLOCK,
    RULE_THREAD_SPAWN,
    RULE_SAFETY_COMMENT,
    RULE_ENV_REGISTRY,
    RULE_UNFUSED_AFFINE,
    RULE_PER_HEAD_ATTENTION,
    RULE_SCALAR_GATHER,
    RULE_WAIVER_SYNTAX,
    RULE_DETERMINISM_TAINT,
    RULE_ALLOC_REACH,
    RULE_CLAIMED_WRITE,
];

/// One rule hit in one file.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Filled in by the driver when an `audit-allow` covers this hit.
    pub waived: bool,
    pub waive_reason: Option<String>,
    /// For interprocedural rules: the shortest call path from the entry
    /// point to the function containing the hit. Empty for token rules.
    pub trace: Vec<String>,
}

/// An `audit-allow` comment — the rule name in parentheses, then a colon
/// and a mandatory reason. Covers violations of that rule on its own line
/// and the line directly below it. The `audit-allow-file` form instead
/// covers every violation of that rule anywhere in the file.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
    /// True for the file-scoped waiver form (`audit-allow-file`, with the
    /// same rule-in-parens-then-reason syntax as the line form).
    pub file_scoped: bool,
    /// Set by the driver when the waiver actually absorbed a hit.
    pub used: bool,
}

fn violation(rule: &'static str, file: &str, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        message,
        waived: false,
        waive_reason: None,
        trace: Vec::new(),
    }
}

fn is_ident(t: &Tok, name: &str) -> bool {
    matches!(t, Tok::Ident(s) if s == name)
}

fn is_punct(t: &Tok, c: char) -> bool {
    matches!(t, Tok::Punct(p) if *p == c)
}

/// `tokens[i..]` starts with the given `::`-separated ident sequence, e.g.
/// `path_seq(toks, i, &["Instant", "now"])` matches `Instant::now`.
fn path_seq(toks: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut at = i;
    for (k, seg) in segs.iter().enumerate() {
        if at >= toks.len() || !is_ident(&toks[at].tok, seg) {
            return false;
        }
        at += 1;
        if k + 1 < segs.len() {
            if at + 1 >= toks.len()
                || !is_punct(&toks[at].tok, ':')
                || !is_punct(&toks[at + 1].tok, ':')
            {
                return false;
            }
            at += 2;
        }
    }
    true
}

/// Run every rule against one file. `code` is the token stream with
/// comments removed (multi-token patterns must not be split by comments);
/// `raw` keeps comments for the SAFETY-comment rule.
pub fn check_file(
    rel_path: &str,
    raw: &[Token],
    registry: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    let code: Vec<Token> = raw
        .iter()
        .filter(|t| !matches!(t.tok, Tok::Comment(_)))
        .cloned()
        .collect();
    hashmap_iteration(rel_path, &code, out);
    wallclock(rel_path, &code, out);
    thread_spawn(rel_path, &code, out);
    safety_comment(rel_path, raw, out);
    env_registry(rel_path, &code, registry, out);
    unfused_affine_chain(rel_path, &code, out);
    per_head_slice_attention(rel_path, &code, out);
    scalar_gather_in_hot_path(rel_path, &code, out);
}

/// `no-hashmap-iteration-in-numeric-path`
///
/// In `crates/core`, `crates/models`, and `crates/graph`, any binding or
/// field whose outermost declared type is `HashMap`/`HashSet` (or that is
/// initialised from `HashMap::…`/`HashSet::…`) must not be iterated:
/// `RandomState` makes the visit order differ across processes, and in
/// these crates iteration order reaches features, losses, or metrics.
/// Wrapped uses (`Vec<HashSet<…>>`) are not tracked — indexing the outer
/// `Vec` is ordered — and tracking is per-file by design.
fn hashmap_iteration(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    let scoped = ["crates/core/", "crates/models/", "crates/graph/"]
        .iter()
        .any(|p| rel_path.starts_with(p));
    if !scoped {
        return;
    }

    // Pass A: names whose declarations mention a hash collection.
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    for i in 0..code.len() {
        // `name: [&] path::to::HashMap<…>` — type ascription, field, or
        // fn parameter. Require a single `:` (not `::`).
        if i + 1 < code.len()
            && is_punct(&code[i + 1].tok, ':')
            && !(i + 2 < code.len() && is_punct(&code[i + 2].tok, ':'))
            && !(i >= 1 && is_punct(&code[i - 1].tok, ':'))
        {
            if let Tok::Ident(name) = &code[i].tok {
                if type_path_hits_hash(code, i + 2) {
                    tracked.insert(name.clone());
                }
            }
        }
        // `let [mut] name = path::to::HashMap::…` — inferred type.
        if is_ident(&code[i].tok, "let") {
            let mut j = i + 1;
            if j < code.len() && is_ident(&code[j].tok, "mut") {
                j += 1;
            }
            let Some(Tok::Ident(name)) = code.get(j).map(|t| &t.tok) else {
                continue;
            };
            if code.get(j + 1).is_some_and(|t| is_punct(&t.tok, '='))
                && type_path_hits_hash(code, j + 2)
            {
                tracked.insert(name.clone());
            }
        }
    }
    if tracked.is_empty() {
        return;
    }

    const ITER_METHODS: [&str; 10] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "drain",
        "into_iter",
        "into_keys",
        "into_values",
        "retain",
    ];

    // Pass B: iteration over a tracked name.
    for i in 0..code.len() {
        if let Tok::Ident(name) = &code[i].tok {
            if !tracked.contains(name) {
                continue;
            }
            // `name.iter()` and friends.
            if i + 2 < code.len() && is_punct(&code[i + 1].tok, '.') {
                if let Tok::Ident(m) = &code[i + 2].tok {
                    if ITER_METHODS.contains(&m.as_str()) {
                        out.push(violation(
                            RULE_HASH_ITER,
                            rel_path,
                            code[i].line,
                            format!(
                                "`{name}.{m}()` iterates a hash-based collection \
                                 (RandomState order); use BTreeMap/BTreeSet or a sorted drain"
                            ),
                        ));
                    }
                }
            }
            // `for … in [&[mut]] name {` — implicit IntoIterator.
            let before = i.checked_sub(1).map(|k| &code[k].tok);
            let amp = matches!(before, Some(t) if is_punct(t, '&'));
            let in_at = if amp {
                i.checked_sub(2)
            } else {
                i.checked_sub(1)
            };
            let preceded_by_in = in_at.is_some_and(|k| is_ident(&code[k].tok, "in"))
                || (amp
                    && i >= 3
                    && is_ident(&code[i - 1].tok, "mut")
                    && is_ident(&code[i - 3].tok, "in"));
            if preceded_by_in && code.get(i + 1).is_some_and(|t| is_punct(&t.tok, '{')) {
                out.push(violation(
                    RULE_HASH_ITER,
                    rel_path,
                    code[i].line,
                    format!(
                        "`for … in {name}` iterates a hash-based collection \
                         (RandomState order); use BTreeMap/BTreeSet or a sorted drain"
                    ),
                ));
            }
        }
    }
}

/// Starting at `i`, walk an optional `&`/`mut` prefix then a `seg(::seg)*`
/// path; true when any segment is `HashMap`/`HashSet` *before* generics
/// open. `Vec<HashSet<…>>` stops at `Vec` and returns false.
fn type_path_hits_hash(code: &[Token], mut i: usize) -> bool {
    while i < code.len() && (is_punct(&code[i].tok, '&') || is_ident(&code[i].tok, "mut")) {
        i += 1;
    }
    loop {
        match code.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(seg)) if seg == "HashMap" || seg == "HashSet" => return true,
            Some(Tok::Ident(_))
                if i + 2 < code.len()
                    && is_punct(&code[i + 1].tok, ':')
                    && is_punct(&code[i + 2].tok, ':') =>
            {
                i += 3;
            }
            _ => return false,
        }
    }
}

/// `no-wallclock-outside-obs`
///
/// `Instant::now` / `SystemTime` are allowed only in `crates/obs` and
/// `crates/core/src/efficiency.rs` — everywhere else wall-clock reads are
/// either dead weight or, worse, feed timing into logic and break
/// run-to-run comparability. Timing belongs to the observability layer.
fn wallclock(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    if rel_path.starts_with("crates/obs/") || rel_path == "crates/core/src/efficiency.rs" {
        return;
    }
    for i in 0..code.len() {
        if path_seq(code, i, &["Instant", "now"]) {
            out.push(violation(
                RULE_WALLCLOCK,
                rel_path,
                code[i].line,
                "`Instant::now()` outside crates/obs (timing belongs to the obs layer)".to_string(),
            ));
        }
        if is_ident(&code[i].tok, "SystemTime") {
            out.push(violation(
                RULE_WALLCLOCK,
                rel_path,
                code[i].line,
                "`SystemTime` outside crates/obs (timing belongs to the obs layer)".to_string(),
            ));
        }
    }
}

/// `no-raw-thread-spawn`
///
/// Only `pool.rs` may create OS threads (`thread::spawn` /
/// `thread::Builder`): every other parallel call site must go through the
/// deterministic pool so chunk arithmetic — and therefore results — never
/// depends on ad-hoc threading.
fn thread_spawn(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    if rel_path.ends_with("/pool.rs") {
        return;
    }
    for i in 0..code.len() {
        for target in ["spawn", "Builder"] {
            if path_seq(code, i, &["thread", target]) {
                out.push(violation(
                    RULE_THREAD_SPAWN,
                    rel_path,
                    code[i].line,
                    format!(
                        "`thread::{target}` outside pool.rs; use the deterministic \
                         ThreadPool so scheduling cannot reach results"
                    ),
                ));
            }
        }
    }
}

/// `safety-comment-required`
///
/// Every `unsafe` token must be preceded by a comment containing
/// `SAFETY:` — either in the contiguous comment block directly above, or
/// above the start of the line the `unsafe` sits on. The comment is the
/// proof obligation; code review enforces its quality, this rule enforces
/// its existence.
fn safety_comment(rel_path: &str, raw: &[Token], out: &mut Vec<Violation>) {
    for i in 0..raw.len() {
        if !is_ident(&raw[i].tok, "unsafe") {
            continue;
        }
        let line = raw[i].line;
        let mut documented = false;
        let mut j = i;
        while j > 0 {
            j -= 1;
            match &raw[j].tok {
                Tok::Comment(c) => {
                    if c.contains("SAFETY:") {
                        documented = true;
                        break;
                    }
                }
                // Code earlier on the same line is the statement prefix
                // (`let x = unsafe {…}`); keep walking up past it.
                _ if raw[j].line == line => continue,
                _ => break,
            }
        }
        if !documented {
            out.push(violation(
                RULE_SAFETY_COMMENT,
                rel_path,
                line,
                "`unsafe` without a `// SAFETY:` comment directly above".to_string(),
            ));
        }
    }
}

/// `env-read-registry`
///
/// Every `env::var` call site must pass a string literal naming a
/// `BENCHTEMP_*` variable listed in README.md's env registry table.
/// Undocumented environment inputs are invisible configuration — the exact
/// thing that makes two "identical" benchmark runs disagree.
fn env_registry(
    rel_path: &str,
    code: &[Token],
    registry: &BTreeSet<String>,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if !path_seq(code, i, &["env", "var"]) {
            continue;
        }
        // tokens: env(i) :(i+1) :(i+2) var(i+3) ((i+4) "NAME"(i+5)
        let line = code[i].line;
        let arg = code.get(i + 5).map(|t| &t.tok);
        match (code.get(i + 4).map(|t| &t.tok), arg) {
            (Some(p), Some(Tok::Str(name))) if is_punct(p, '(') => {
                if !name.starts_with("BENCHTEMP_") {
                    out.push(violation(
                        RULE_ENV_REGISTRY,
                        rel_path,
                        line,
                        format!("`env::var(\"{name}\")` reads a non-BENCHTEMP_* variable"),
                    ));
                } else if !registry.contains(name.as_str()) {
                    out.push(violation(
                        RULE_ENV_REGISTRY,
                        rel_path,
                        line,
                        format!("`env::var(\"{name}\")` is not in README.md's env registry table"),
                    ));
                }
            }
            _ => out.push(violation(
                RULE_ENV_REGISTRY,
                rel_path,
                line,
                "`env::var` with a non-literal name cannot be checked against the registry"
                    .to_string(),
            )),
        }
    }
}

/// `no-unfused-affine-chain`
///
/// In `crates/models/`, a `.matmul(…)` call followed shortly by an
/// `.add_row_broadcast(…)` call is the hand-rolled affine chain
/// (`x·W + b`, usually with an activation on top) that
/// `Tape::linear_affine` / `Linear::forward_act` replace with one fused
/// node — same bits, one buffer, one backward arm. Model code should not
/// grow new unfused copies of it. The matcher is a token-window heuristic
/// (`add_row_broadcast` within 40 code tokens of a preceding `matmul`), in
/// keeping with the tripwire-not-proof design of this driver; a genuinely
/// unrelated adjacency can carry an `audit-allow` waiver saying why.
fn unfused_affine_chain(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    if !rel_path.starts_with("crates/models/") {
        return;
    }
    const WINDOW: usize = 40;
    let mut last_matmul: Option<usize> = None;
    for i in 0..code.len() {
        // Method-call form only: `.name(` — a definition or doc mention of
        // either name is not a chain.
        let is_call = i >= 1
            && is_punct(&code[i - 1].tok, '.')
            && code.get(i + 1).is_some_and(|t| is_punct(&t.tok, '('));
        if !is_call {
            continue;
        }
        if is_ident(&code[i].tok, "matmul") {
            last_matmul = Some(i);
        } else if is_ident(&code[i].tok, "add_row_broadcast")
            && last_matmul.is_some_and(|m| i - m <= WINDOW)
        {
            out.push(violation(
                RULE_UNFUSED_AFFINE,
                rel_path,
                code[i].line,
                "`matmul` + `add_row_broadcast` chain; use the fused \
                 `Tape::linear_affine` (or `Linear::forward_act`) — same bits, \
                 one node"
                    .to_string(),
            ));
        }
    }
}

/// `no-per-head-slice-attention`
///
/// A `.slice_cols(…)` call followed shortly by a `.grouped_attention(…)`
/// call is the hand-rolled per-head attention chain (slice each head's
/// Q/K/V stripe, attend, concatenate) that the fused
/// `Tape::multi_head_grouped_attention` replaces with one node over
/// strided per-head views — same bits, no per-head buffer copies, one
/// backward arm. Only the tape's own unfused fallback
/// (`crates/tensor/src/tape.rs`) may spell the chain out. Same
/// token-window heuristic as `no-unfused-affine-chain`; a genuinely
/// unrelated adjacency can carry an `audit-allow` waiver saying why.
fn per_head_slice_attention(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    if rel_path == "crates/tensor/src/tape.rs" {
        return;
    }
    const WINDOW: usize = 40;
    let mut last_slice: Option<usize> = None;
    for i in 0..code.len() {
        // Method-call form only: `.name(` — a definition or doc mention of
        // either name is not a chain.
        let is_call = i >= 1
            && is_punct(&code[i - 1].tok, '.')
            && code.get(i + 1).is_some_and(|t| is_punct(&t.tok, '('));
        if !is_call {
            continue;
        }
        if is_ident(&code[i].tok, "slice_cols") {
            last_slice = Some(i);
        } else if is_ident(&code[i].tok, "grouped_attention")
            && last_slice.is_some_and(|m| i - m <= WINDOW)
        {
            out.push(violation(
                RULE_PER_HEAD_ATTENTION,
                rel_path,
                code[i].line,
                "`slice_cols` + `grouped_attention` per-head chain; use the \
                 fused `Tape::multi_head_grouped_attention` — same bits, no \
                 per-head copies, one node"
                    .to_string(),
            ));
        }
    }
}

/// `no-scalar-gather-in-hot-path`
///
/// In `crates/models/`, a `.gather_rows(…)` call is the allocating scalar
/// row-gather (one fresh `Matrix`, per-row copy loop) that
/// `Tape::gather_rows_from` replaces with a pool-granted, run-length
/// coalesced gather — same bits, zero steady-state allocations, and a
/// `tape.gather_coalesced_runs` counter for free. Frontier-shaped index
/// lists are exactly where the coalescing pays, so model code should not
/// grow new scalar copies of the pattern. Method-call form only (a
/// definition or doc mention is not a gather); a deliberate scalar
/// baseline — e.g. one kept for equivalence tests — can carry an
/// `audit-allow` waiver saying why.
fn scalar_gather_in_hot_path(rel_path: &str, code: &[Token], out: &mut Vec<Violation>) {
    if !rel_path.starts_with("crates/models/") {
        return;
    }
    for i in 0..code.len() {
        let is_call = i >= 1
            && is_punct(&code[i - 1].tok, '.')
            && code.get(i + 1).is_some_and(|t| is_punct(&t.tok, '('));
        if is_call && is_ident(&code[i].tok, "gather_rows") {
            out.push(violation(
                RULE_SCALAR_GATHER,
                rel_path,
                code[i].line,
                "`.gather_rows(…)` scalar gather in model code; use the \
                 coalesced `Tape::gather_rows_from` — same bits, pooled \
                 storage, no per-row copy loop"
                    .to_string(),
            ));
        }
    }
}

/// Extract `audit-allow` / `audit-allow-file` waivers from a file's
/// comments. Malformed waivers (unknown rule, missing reason) are reported
/// as `waiver-syntax` violations.
pub fn collect_waivers(
    rel_path: &str,
    raw: &[Token],
    waivers: &mut Vec<Waiver>,
    out: &mut Vec<Violation>,
) {
    for t in raw {
        let Tok::Comment(c) = &t.tok else { continue };
        // The file form is probed first; the line form's needle ends in an
        // open paren where the file form has `-file`, so a comment can only
        // ever match one of the two.
        const FILE_FORM: &str = concat!("audit-allow-file", "(");
        const LINE_FORM: &str = concat!("audit-allow", "(");
        let (at, file_scoped) = match c.find(FILE_FORM) {
            Some(at) => (at + FILE_FORM.len(), true),
            None => match c.find(LINE_FORM) {
                Some(at) => (at + LINE_FORM.len(), false),
                None => continue,
            },
        };
        let form = if file_scoped {
            "audit-allow-file"
        } else {
            "audit-allow"
        };
        let rest = &c[at..];
        let Some(close) = rest.find(')') else {
            out.push(violation(
                RULE_WAIVER_SYNTAX,
                rel_path,
                t.line,
                format!("unclosed `{form}(` waiver"),
            ));
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) || rule == RULE_WAIVER_SYNTAX {
            out.push(violation(
                RULE_WAIVER_SYNTAX,
                rel_path,
                t.line,
                format!("`{form}({rule})` names no known rule"),
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.push(violation(
                RULE_WAIVER_SYNTAX,
                rel_path,
                t.line,
                format!("`{form}({rule})` has no reason; a waiver must say why"),
            ));
            continue;
        }
        waivers.push(Waiver {
            rule,
            file: rel_path.to_string(),
            line: t.line,
            reason: reason.to_string(),
            file_scoped,
            used: false,
        });
    }
}

/// Mark violations covered by a waiver of the same rule in the same file —
/// line waivers cover their own line and the line directly below; file
/// waivers cover the whole file. Line waivers are matched first so the
/// specific annotation absorbs the hit (and is marked used) before a
/// blanket file waiver would.
pub fn apply_waivers(violations: &mut [Violation], waivers: &mut [Waiver]) {
    for v in violations.iter_mut() {
        if v.rule == RULE_WAIVER_SYNTAX {
            continue;
        }
        let line_hit = waivers.iter_mut().find(|w| {
            !w.file_scoped
                && w.rule == v.rule
                && w.file == v.file
                && (v.line == w.line || v.line == w.line + 1)
        });
        let w = match line_hit {
            Some(w) => w,
            None => {
                let Some(w) = waivers
                    .iter_mut()
                    .find(|w| w.file_scoped && w.rule == v.rule && w.file == v.file)
                else {
                    continue;
                };
                w
            }
        };
        v.waived = true;
        v.waive_reason = Some(w.reason.clone());
        w.used = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel_path: &str, src: &str) -> Vec<Violation> {
        let raw = lex(src);
        let mut out = Vec::new();
        let registry: BTreeSet<String> = ["BENCHTEMP_THREADS".to_string()].into_iter().collect();
        check_file(rel_path, &raw, &registry, &mut out);
        out
    }

    #[test]
    fn hash_iteration_flagged_only_in_scoped_crates() {
        let src = "struct S { seen: HashMap<u32, f64> }\n\
                   fn f(s: &S) -> usize { s.seen.keys().count() }\n";
        let hits = run("crates/models/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_HASH_ITER);
        assert_eq!(hits[0].line, 2);
        // Same source outside core/models/graph: clean.
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_tracks_inferred_let_bindings_and_for_loops() {
        let src = "fn f() {\n\
                   let mut m = std::collections::HashMap::new();\n\
                   m.insert(1, 2);\n\
                   for (k, v) in &m { drop((k, v)); }\n\
                   }\n";
        let hits = run("crates/core/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn wrapped_hash_collections_are_not_tracked() {
        let src = "fn f(per_user: Vec<HashSet<usize>>, b: BTreeMap<u32, u32>) {\n\
                   for s in &per_user { drop(s); }\n\
                   for x in &b { drop(x); }\n\
                   }\n";
        assert!(run("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn membership_checks_on_hash_collections_are_fine() {
        let src = "fn f(seen: HashSet<u32>) -> bool { seen.contains(&3) && seen.len() > 1 }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_allowed_only_in_obs_and_efficiency() {
        let src = "fn f() { let t = Instant::now(); drop(t); }\n";
        assert_eq!(run("crates/core/src/pipeline.rs", src).len(), 1);
        assert!(run("crates/obs/src/lib.rs", src).is_empty());
        assert!(run("crates/core/src/efficiency.rs", src).is_empty());
        // Mentioning the type without reading the clock is fine.
        assert!(run("crates/core/src/x.rs", "use std::time::Instant;\n").is_empty());
    }

    #[test]
    fn thread_spawn_allowed_only_in_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(run("crates/obs/src/lib.rs", src).len(), 1);
        assert!(run("crates/tensor/src/pool.rs", src).is_empty());
        let builder = "fn f() { std::thread::Builder::new(); }\n";
        assert_eq!(run("crates/graph/src/x.rs", builder).len(), 1);
    }

    #[test]
    fn safety_comment_satisfied_by_block_above_or_statement_prefix() {
        let keyword = "uns\u{0061}fe"; // assembled so this file itself stays clean
        let undocumented = format!("fn f() {{ {keyword} {{ }} }}\n");
        let hits = run("crates/tensor/src/x.rs", &undocumented);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_SAFETY_COMMENT);

        let direct = format!("// SAFETY: fine\n{keyword} fn g() {{}}\n");
        assert!(run("crates/tensor/src/x.rs", &direct).is_empty());

        let multiline = format!(
            "// SAFETY: the barrier below blocks until\n// every job has completed.\n\
             let t: Box<u8> = {keyword} {{ std::mem::transmute(x) }};\n"
        );
        assert!(run("crates/tensor/src/x.rs", &multiline).is_empty());

        let stale = format!("// SAFETY: for the other one\nfn a() {{}}\n{keyword} fn b() {{}}\n");
        assert_eq!(run("crates/tensor/src/x.rs", &stale).len(), 1);
    }

    #[test]
    fn env_reads_must_be_registered_benchtemp_vars() {
        let ok = "fn f() { let _ = std::env::var(\"BENCHTEMP_THREADS\"); }\n";
        assert!(run("crates/tensor/src/pool.rs", ok).is_empty());

        let unregistered = "fn f() { let _ = std::env::var(\"BENCHTEMP_MYSTERY\"); }\n";
        let hits = run("crates/tensor/src/x.rs", unregistered);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("registry"));

        let foreign = "fn f() { let _ = std::env::var(\"HOME\"); }\n";
        assert_eq!(run("crates/core/src/x.rs", foreign).len(), 1);

        let dynamic = "fn f(n: &str) { let _ = std::env::var(n); }\n";
        let hits = run("crates/core/src/x.rs", dynamic);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("non-literal"));

        // Other env:: functions are not var reads.
        let tempdir = "fn f() { let _ = std::env::temp_dir(); }\n";
        assert!(run("crates/core/src/x.rs", tempdir).is_empty());
    }

    #[test]
    fn unfused_affine_chain_flagged_only_in_models() {
        let src = "fn f(g: &mut Tape, x: Var, w: Var, b: Var) -> Var {\n\
                   let h = g.matmul(x, w);\n\
                   let a = g.add_row_broadcast(h, b);\n\
                   g.relu(a)\n\
                   }\n";
        let hits = run("crates/models/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_UNFUSED_AFFINE);
        assert_eq!(hits[0].line, 3);
        // The tape's own fallback implementation (crates/tensor) is exempt.
        assert!(run("crates/tensor/src/tape.rs", src).is_empty());
    }

    #[test]
    fn unfused_affine_chain_needs_both_calls_nearby() {
        let only_broadcast = "fn f(g: &mut Tape, h: Var, b: Var) -> Var {\n\
                              g.add_row_broadcast(h, b)\n\
                              }\n";
        assert!(run("crates/models/src/x.rs", only_broadcast).is_empty());

        let only_matmul = "fn f(g: &mut Tape, x: Var, w: Var) -> Var { g.matmul(x, w) }\n";
        assert!(run("crates/models/src/x.rs", only_matmul).is_empty());

        // Far apart (> 40 code tokens between the calls): separate
        // computations, not a chain.
        let filler = "let z0 = 0; let z1 = 0; let z2 = 0; let z3 = 0; let z4 = 0;\n\
                      let z5 = 0; let z6 = 0; let z7 = 0; let z8 = 0; let z9 = 0;\n";
        let far = format!(
            "fn f(g: &mut Tape, x: Var, w: Var, h: Var, b: Var) {{\n\
             let m = g.matmul(x, w);\n{filler}\
             let a = g.add_row_broadcast(h, b);\n\
             drop((m, a));\n\
             }}\n"
        );
        assert!(run("crates/models/src/x.rs", &far).is_empty());

        // Definition/mention of the names is not a call chain.
        let defs = "fn matmul() {}\nfn add_row_broadcast() {}\n";
        assert!(run("crates/models/src/x.rs", defs).is_empty());
    }

    #[test]
    fn per_head_slice_attention_flagged_outside_tape() {
        let src = "fn f(g: &mut Tape, q: Var, k: Var, v: Var, m: &[bool]) -> Var {\n\
                   let qh = g.slice_cols(q, 0, 4);\n\
                   let kh = g.slice_cols(k, 0, 4);\n\
                   let vh = g.slice_cols(v, 0, 4);\n\
                   g.grouped_attention(qh, kh, vh, 3, m)\n\
                   }\n";
        let hits = run("crates/models/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_PER_HEAD_ATTENTION);
        assert_eq!(hits[0].line, 5);
        // Unlike the affine rule this fires anywhere in the workspace…
        assert_eq!(run("crates/tensor/src/nn.rs", src).len(), 1);
        // …except the tape's own unfused fallback.
        assert!(run("crates/tensor/src/tape.rs", src).is_empty());
    }

    #[test]
    fn per_head_slice_attention_needs_both_calls_nearby() {
        // A lone grouped_attention (single-head use) is fine.
        let single = "fn f(g: &mut Tape, q: Var, k: Var, v: Var, m: &[bool]) -> Var {\n\
                      g.grouped_attention(q, k, v, 3, m)\n\
                      }\n";
        assert!(run("crates/models/src/x.rs", single).is_empty());

        // slice_cols on its own is fine too.
        let slice = "fn f(g: &mut Tape, x: Var) -> Var { g.slice_cols(x, 0, 4) }\n";
        assert!(run("crates/models/src/x.rs", slice).is_empty());

        // Far apart (> 40 code tokens): separate computations, not a chain.
        let filler = "let z0 = 0; let z1 = 0; let z2 = 0; let z3 = 0; let z4 = 0;\n\
                      let z5 = 0; let z6 = 0; let z7 = 0; let z8 = 0; let z9 = 0;\n";
        let far = format!(
            "fn f(g: &mut Tape, x: Var, q: Var, k: Var, v: Var, m: &[bool]) {{\n\
             let s = g.slice_cols(x, 0, 4);\n{filler}\
             let a = g.grouped_attention(q, k, v, 3, m);\n\
             drop((s, a));\n\
             }}\n"
        );
        assert!(run("crates/models/src/x.rs", &far).is_empty());

        // Definition/mention of the names is not a call chain.
        let defs = "fn slice_cols() {}\nfn grouped_attention() {}\n";
        assert!(run("crates/models/src/x.rs", defs).is_empty());
    }

    #[test]
    fn scalar_gather_flagged_only_in_models() {
        let src = "fn f(m: &Matrix, ids: &[usize]) -> Matrix {\n\
                   m.gather_rows(ids)\n\
                   }\n";
        let hits = run("crates/models/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, RULE_SCALAR_GATHER);
        assert_eq!(hits[0].line, 2);
        // The tensor crate owns the primitive — its definition, tests, and
        // the tape's unfused fallback are all out of scope.
        assert!(run("crates/tensor/src/matrix.rs", src).is_empty());
        assert!(run("crates/tensor/src/tape.rs", src).is_empty());
    }

    #[test]
    fn scalar_gather_requires_method_call_form() {
        // Definition/mention of the name is not a gather.
        let defs = "fn gather_rows() {}\nconst GATHER: &str = \"gather_rows\";\n";
        assert!(run("crates/models/src/x.rs", defs).is_empty());
        // The coalesced tape entry point is the sanctioned spelling.
        let fused = "fn f(g: &mut Graph, m: &Matrix, ids: &[usize]) -> Var {\n\
                     g.gather_rows_from(m, ids)\n\
                     }\n";
        assert!(run("crates/models/src/x.rs", fused).is_empty());
    }

    #[test]
    fn waivers_cover_own_line_and_next_and_require_reasons() {
        let src = "fn f() {\n\
                   // audit-allow(no-wallclock-outside-obs): timeout guard, not results\n\
                   let t = Instant::now();\n\
                   let u = Instant::now();\n\
                   drop((t, u));\n\
                   }\n";
        let raw = lex(src);
        let mut violations = Vec::new();
        let registry = BTreeSet::new();
        check_file("crates/core/src/x.rs", &raw, &registry, &mut violations);
        let mut waivers = Vec::new();
        collect_waivers("crates/core/src/x.rs", &raw, &mut waivers, &mut violations);
        apply_waivers(&mut violations, &mut waivers);
        assert_eq!(violations.len(), 2);
        // Line 3 (directly below the waiver) is covered; line 4 is not.
        assert!(violations.iter().any(|v| v.line == 3 && v.waived));
        assert!(violations.iter().any(|v| v.line == 4 && !v.waived));
        assert!(waivers[0].used);
    }

    #[test]
    fn file_waiver_covers_whole_file_and_line_waiver_wins() {
        let src = "// audit-allow-file(no-wallclock-outside-obs): harness timing helpers\n\
                   fn f() {\n\
                   let t = Instant::now();\n\
                   // audit-allow(no-wallclock-outside-obs): this one specifically\n\
                   let u = Instant::now();\n\
                   let v = Instant::now();\n\
                   drop((t, u, v));\n\
                   }\n";
        let raw = lex(src);
        let mut violations = Vec::new();
        let registry = BTreeSet::new();
        check_file("crates/core/src/x.rs", &raw, &registry, &mut violations);
        let mut waivers = Vec::new();
        collect_waivers("crates/core/src/x.rs", &raw, &mut waivers, &mut violations);
        apply_waivers(&mut violations, &mut waivers);
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| v.waived), "{violations:?}");
        // The specific line waiver absorbed line 5; the file waiver the rest.
        let line5 = violations.iter().find(|v| v.line == 5).unwrap();
        assert_eq!(line5.waive_reason.as_deref(), Some("this one specifically"));
        let line3 = violations.iter().find(|v| v.line == 3).unwrap();
        assert_eq!(
            line3.waive_reason.as_deref(),
            Some("harness timing helpers")
        );
        assert!(waivers.iter().all(|w| w.used));
    }

    #[test]
    fn unused_file_waivers_are_reported_like_line_waivers() {
        let src = "// audit-allow-file(no-raw-thread-spawn): nothing spawns here\n\
                   fn f() {}\n";
        let raw = lex(src);
        let mut violations = Vec::new();
        let mut waivers = Vec::new();
        collect_waivers("crates/core/src/x.rs", &raw, &mut waivers, &mut violations);
        apply_waivers(&mut violations, &mut waivers);
        assert_eq!(waivers.len(), 1);
        assert!(waivers[0].file_scoped);
        assert!(
            !waivers[0].used,
            "unused file waiver must surface as unused"
        );
    }

    #[test]
    fn malformed_waivers_are_violations() {
        let src = "// audit-allow(no-such-rule): whatever\n\
                   // audit-allow(no-wallclock-outside-obs):\n\
                   // audit-allow-file(no-such-rule): whatever\n\
                   // audit-allow-file(no-raw-thread-spawn):\n";
        let raw = lex(src);
        let mut violations = Vec::new();
        let mut waivers = Vec::new();
        collect_waivers("crates/core/src/x.rs", &raw, &mut waivers, &mut violations);
        assert!(waivers.is_empty());
        assert_eq!(violations.len(), 4);
        assert!(violations.iter().all(|v| v.rule == RULE_WAIVER_SYNTAX));
    }
}
