//! A hand-rolled Rust lexer — just enough to lint safely.
//!
//! The audit rules need to see identifiers, punctuation, string-literal
//! contents, and comments, with line numbers, and they must never mistake
//! the inside of a string or comment for code (or vice versa). That is the
//! entire scope: no `syn`, no spans, no keywords table. The tricky cases a
//! naive regex pass gets wrong — `"// not a comment"`, nested `/* /* */ */`,
//! raw strings `r#".."#`, lifetimes vs char literals — are handled here.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the rules match names like `unsafe` directly).
    Ident(String),
    /// String literal (cooked, byte, or raw); payload is the raw text
    /// between the quotes, escapes untouched — enough to match env names.
    Str(String),
    /// Character literal (payload dropped; rules never need it).
    Char,
    /// Lifetime like `'a` / `'static`.
    Lifetime,
    /// Numeric literal (payload dropped).
    Num,
    /// `//...` or `/*...*/` comment, full text including markers.
    Comment(String),
    /// Any other single character: `:`, `.`, `(`, `&`, …
    Punct(char),
}

/// Lex `src` into tokens. Never fails: unterminated constructs are closed
/// by end-of-file, because a linter must degrade gracefully, not crash on
/// the code it is inspecting.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    // Byte char literal `b'x'` — same shape as a char.
                    self.bump();
                    self.char_or_lifetime(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.raw_ident_ahead() => self.raw_ident(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::Comment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(Tok::Comment(text), line);
    }

    /// At `"` (opening quote already peeked, not consumed).
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(Tok::Str(text), line);
    }

    /// Is the cursor at a raw identifier `r#name`? (A raw *string* `r#"…"#`
    /// wins first in `run`, so here `#` must be followed by an ident start.)
    fn raw_ident_ahead(&self) -> bool {
        self.peek(1) == Some('#') && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
    }

    /// Lex `r#name` as the identifier `name`: the `r#` escape exists only to
    /// use keywords as names, so symbol matching wants the bare spelling.
    fn raw_ident(&mut self, line: u32) {
        self.bump(); // 'r'
        self.bump(); // '#'
        self.ident(line);
    }

    /// Is the cursor at `r"`, `r#…#"`, `br"`, or `br#…#"`?
    fn raw_string_ahead(&self) -> bool {
        let mut at = 1; // past the 'r' or 'b'
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            at = 2;
        }
        while self.peek(at) == Some('#') {
            at += 1;
        }
        self.peek(at) == Some('"')
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // Need `hashes` trailing #s to close.
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        text.push(c);
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(Tok::Str(text), line);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime): scan an ident-like
    /// run after the quote; a closing quote right after makes it a char.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                self.bump(); // the escaped character (enough for \n, \', \\, \0; \x41 and \u close on the quote scan below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if c.is_alphanumeric() || c == '_' => {
                let mut len = 0usize;
                while self
                    .peek(len)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    len += 1;
                }
                if self.peek(len) == Some('\'') {
                    for _ in 0..=len {
                        self.bump();
                    }
                    self.push(Tok::Char, line);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Char, line);
            }
            None => self.push(Tok::Char, line),
        }
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                // Covers 0x1f, 1_000, 1e9, suffixes like 3usize.
                let at_exp_sign = (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit());
                self.bump();
                if at_exp_sign {
                    self.bump(); // the sign
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` yes; `1..3` and `1.method()` no.
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Num, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn comment_markers_inside_strings_stay_strings() {
        let toks = kinds(r#"let x = "// not a comment";"#);
        assert!(toks.iter().all(|t| !matches!(t, Tok::Comment(_))));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Tok::Str(s) if s == "// not a comment")));
    }

    #[test]
    fn strings_inside_comments_stay_comments() {
        let toks = kinds("// has \"quotes\" inside\nx");
        assert!(matches!(&toks[0], Tok::Comment(c) if c.contains("quotes")));
        assert!(matches!(&toks[1], Tok::Ident(i) if i == "x"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[0], Tok::Comment(c) if c.contains("still outer")));
        assert!(matches!(&toks[1], Tok::Ident(i) if i == "after"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " and // slash"#;"###);
        assert!(toks
            .iter()
            .any(|t| matches!(t, Tok::Str(s) if s.contains("// slash"))));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let nl = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| matches!(t, Tok::Lifetime)).count();
        let chars = toks.iter().filter(|t| matches!(t, Tok::Char)).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("a\n/* two\nlines */\nb\n\"s1\ns2\"\nc");
        let find = |name: &str| {
            toks.iter()
                .find(|t| matches!(&t.tok, Tok::Ident(i) if i == name))
                .unwrap()
                .line
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("c"), 7);
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let toks = kinds("let r#type = r#match.r#fn(); type_ok");
        let idents: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, ["let", "type", "match", "fn", "type_ok"]);
        // No stray `#` puncts survive from the raw-ident escape.
        assert!(toks.iter().all(|t| !matches!(t, Tok::Punct('#'))));
    }

    #[test]
    fn raw_identifier_does_not_break_raw_strings() {
        // `r#"…"#` must still lex as a raw string, not as `r#` + ident.
        let toks = kinds(r###"let a = r#"text"#; let r#b = 1;"###);
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s == "text")));
        assert!(toks.iter().any(|t| matches!(t, Tok::Ident(i) if i == "b")));
    }

    #[test]
    fn byte_and_raw_byte_strings_keep_their_payload() {
        let toks = kinds(r###"let a = b"magic\x00"; let b = br#"raw // bytes"#;"###);
        assert!(toks
            .iter()
            .any(|t| matches!(t, Tok::Str(s) if s.contains("magic"))));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Tok::Str(s) if s == "raw // bytes")));
        // No comment was minted from the `//` inside the raw byte string.
        assert!(toks.iter().all(|t| !matches!(t, Tok::Comment(_))));
    }

    #[test]
    fn byte_char_literals_are_chars_not_idents() {
        let toks = kinds("let nl = b'\\n'; let x = b'a'; after");
        let chars = toks.iter().filter(|t| matches!(t, Tok::Char)).count();
        assert_eq!(chars, 2);
        // The `b` prefix must not leak as a one-letter identifier.
        assert!(toks.iter().all(|t| !matches!(t, Tok::Ident(i) if i == "b")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Tok::Ident(i) if i == "after")));
    }

    #[test]
    fn shift_right_in_nested_generics_splits_into_two_closes() {
        // The parser closes nested generics one `>` at a time, so `>>` must
        // arrive as two puncts (the lexer never glues multi-char operators).
        let toks = kinds("let v: Vec<Vec<u32>> = make(); a >> b");
        let gts = toks.iter().filter(|t| matches!(t, Tok::Punct('>'))).count();
        assert_eq!(gts, 4, "two generic closes + the real shift operator");
    }

    #[test]
    fn numbers_do_not_eat_range_or_method_dots() {
        let toks = kinds("1..3; 1.5; x.iter()");
        let puncts = toks.iter().filter(|t| matches!(t, Tok::Punct('.'))).count();
        // Two dots from `1..3`, one from `x.iter`.
        assert_eq!(puncts, 3);
    }
}
