//! CLI for the workspace audit: `cargo run -p benchtemp-audit`.
//!
//! Walks the workspace (default: the repo root containing this crate),
//! prints a per-rule summary plus every unwaivered violation, writes
//! `AUDIT_report.json` at the root, and exits non-zero when the gate
//! fails — the ci.sh hook point.
//!
//! Flags:
//!   --root <dir>   audit a different tree (used by the negative self-test)
//!   --json <path>  write the report somewhere else ("-" for stdout only)

use std::path::PathBuf;
use std::process::ExitCode;

use benchtemp_audit::run_audit;

fn main() -> ExitCode {
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_out = Some(p),
                None => {
                    eprintln!("--json needs a path (or `-` for stdout)");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` (expected --root <dir> / --json <path>)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.canonicalize().unwrap_or(root);
    let report = match run_audit(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    println!(
        "benchtemp-audit: {} files, {} violation(s) ({} waived), {} waiver(s)",
        report.files_scanned,
        report.violations.len(),
        report.violations.iter().filter(|v| v.waived).count(),
        report.waivers.len(),
    );
    for rule in benchtemp_audit::rules::ALL_RULES {
        let hits = report.violations.iter().filter(|v| v.rule == rule).count();
        let waived = report
            .violations
            .iter()
            .filter(|v| v.rule == rule && v.waived)
            .count();
        println!("  {rule:<42} {:>3} hit(s), {waived:>3} waived", hits);
    }
    for v in report.unwaivered() {
        println!("VIOLATION {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
    }
    for w in report.waivers.iter().filter(|w| !w.used) {
        println!(
            "note: unused waiver {}:{} [{}] ({})",
            w.file, w.line, w.rule, w.reason
        );
    }
    if !report.registry_found {
        println!("VIOLATION README.md:0 [env-read-registry] registry markers missing");
    }
    match report.protocol.verify() {
        Ok(()) => println!(
            "protocol model: 2x3 clean ({} states, every terminal completes), seeded bug \
             caught ({} deadlock state(s))",
            report.protocol.correct.states, report.protocol.buggy.deadlocks,
        ),
        Err(e) => println!("VIOLATION crates/tensor/src/pool.rs:0 [protocol-model] {e}"),
    }

    let text = report.to_json().to_string_pretty();
    let dest = json_out.unwrap_or_else(|| root.join("AUDIT_report.json").display().to_string());
    if dest == "-" {
        println!("{text}");
    } else if let Err(e) = std::fs::write(&dest, text + "\n") {
        eprintln!("audit: cannot write {dest}: {e}");
        return ExitCode::from(2);
    } else {
        println!("report: {dest}");
    }

    if report.ok() {
        println!("AUDIT_OK");
        ExitCode::SUCCESS
    } else {
        println!(
            "AUDIT_FAILED: {} unwaivered violation(s)",
            report.unwaivered().count()
        );
        ExitCode::FAILURE
    }
}
