//! `benchtemp-audit` — static enforcement of the workspace's determinism
//! and safety invariants, plus a model checker for the pool's batch
//! protocol. See DESIGN.md §10 for the full rule catalogue and rationale.
//!
//! The driver walks every `crates/*/src/**/*.rs` and `crates/*/tests/**/*.rs`
//! (skipping `fixtures/` directories), lexes each file with the hand-rolled
//! lexer in [`lexer`], runs the five rules in [`rules`], applies inline
//! `audit-allow` waivers, and emits a machine-readable JSON report. Any
//! unwaivered violation — or a failure of the [`interleave`] protocol
//! check — makes [`AuditReport::ok`] false, which the CLI turns into a
//! non-zero exit for CI.

pub mod interleave;
pub mod interproc;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use benchtemp_util::json;
use benchtemp_util::json::Json;

use rules::{Violation, Waiver, ALL_RULES};

/// Markers delimiting the env-var registry table in README.md. Everything
/// that looks like `BENCHTEMP_[A-Z0-9_]+` between them is a documented
/// variable.
pub const REGISTRY_BEGIN: &str = "<!-- benchtemp-env-registry:begin -->";
pub const REGISTRY_END: &str = "<!-- benchtemp-env-registry:end -->";

/// Everything one audit run learned.
pub struct AuditReport {
    /// Workspace root that was walked.
    pub root: PathBuf,
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub waivers: Vec<Waiver>,
    /// Documented `BENCHTEMP_*` variables from README.md.
    pub registry: BTreeSet<String>,
    /// False when README.md or its registry markers are missing.
    pub registry_found: bool,
    pub protocol: interleave::ProtocolReport,
    /// Call-graph statistics from the interprocedural pass (over
    /// `crates/*/src` only — integration tests are not part of the graph).
    pub graph: resolve::GraphStats,
}

impl AuditReport {
    pub fn unwaivered(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.waived)
    }

    /// The CI gate: no unwaivered violations, a readable registry, and a
    /// protocol model check that both passes and catches its seeded bug.
    pub fn ok(&self) -> bool {
        self.unwaivered().count() == 0 && self.registry_found && self.protocol.verify().is_ok()
    }

    pub fn to_json(&self) -> Json {
        let rule_summary: Vec<Json> = ALL_RULES
            .iter()
            .map(|rule| {
                let hits = self.violations.iter().filter(|v| v.rule == *rule).count();
                let waived = self
                    .violations
                    .iter()
                    .filter(|v| v.rule == *rule && v.waived)
                    .count();
                json!({
                    "rule": *rule,
                    "hits": hits,
                    "waived": waived,
                    "unwaivered": hits - waived,
                })
            })
            .collect();
        let violations: Vec<Json> = self
            .violations
            .iter()
            .map(|v| {
                let trace: Vec<Json> = v.trace.iter().map(|s| Json::Str(s.clone())).collect();
                json!({
                    "rule": v.rule,
                    "file": v.file.as_str(),
                    "line": v.line,
                    "message": v.message.as_str(),
                    "waived": v.waived,
                    "reason": v.waive_reason.as_deref(),
                    "trace": Json::Arr(trace),
                })
            })
            .collect();
        let waivers: Vec<Json> = self
            .waivers
            .iter()
            .map(|w| {
                json!({
                    "rule": w.rule.as_str(),
                    "file": w.file.as_str(),
                    "line": w.line,
                    "scope": if w.file_scoped { "file" } else { "line" },
                    "reason": w.reason.as_str(),
                    "used": w.used,
                })
            })
            .collect();
        let registry: Vec<Json> = self.registry.iter().map(|v| Json::Str(v.clone())).collect();
        json!({
            "schema": "benchtemp-audit/v2",
            "files_scanned": self.files_scanned,
            "ok": self.ok(),
            "call_graph": {
                "files_parsed": self.graph.files_parsed,
                "functions": self.graph.functions,
                "edges": self.graph.edges,
                "calls_total": self.graph.calls_total,
                "calls_resolved": self.graph.calls_resolved,
                "calls_external": self.graph.calls_external,
                "calls_unknown": self.graph.calls_unknown,
                "resolved_call_ratio": self.graph.resolved_ratio(),
            },
            "rules": rule_summary,
            "violations": violations,
            "waivers": waivers,
            "env_registry": { "found": self.registry_found, "vars": Json::Arr(registry) },
            "protocol_model": protocol_json(&self.protocol),
        })
    }
}

fn exploration_json(e: &interleave::Exploration) -> Json {
    json!({
        "states": e.states,
        "transitions": e.transitions,
        "terminals": e.terminals,
        "deadlocks": e.deadlocks,
        "completions": e.completions,
        "panics_observed": e.panics_observed,
        "lost_jobs": e.lost_jobs,
    })
}

fn protocol_json(p: &interleave::ProtocolReport) -> Json {
    json!({
        "instance": "2 workers x 3 jobs",
        "correct": exploration_json(&p.correct),
        "panic_middle_job": exploration_json(&p.panic),
        "notify_before_decrement": exploration_json(&p.buggy),
        "verified": p.verify().is_ok(),
    })
}

/// Parse the documented env vars out of README text. `None` when the
/// markers are absent.
pub fn parse_registry(readme: &str) -> Option<BTreeSet<String>> {
    let begin = readme.find(REGISTRY_BEGIN)?;
    let end = readme[begin..].find(REGISTRY_END)? + begin;
    let table = &readme[begin..end];
    let mut vars = BTreeSet::new();
    let bytes = table.as_bytes();
    let mut i = 0;
    while let Some(at) = table[i..].find("BENCHTEMP_") {
        let start = i + at;
        let mut stop = start + "BENCHTEMP_".len();
        while stop < bytes.len()
            && (bytes[stop].is_ascii_uppercase()
                || bytes[stop].is_ascii_digit()
                || bytes[stop] == b'_')
        {
            stop += 1;
        }
        // A bare "BENCHTEMP_" prefix with no name is not a variable.
        if stop > start + "BENCHTEMP_".len() {
            vars.insert(table[start..stop].to_string());
        }
        i = stop;
    }
    Some(vars)
}

/// Collect every auditable `.rs` file under `root/crates`, sorted so the
/// report order is stable across filesystems. Directories named `fixtures`
/// are skipped — they hold deliberately-violating sources for self-tests.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "tests"] {
            let start = dir.join(sub);
            if start.is_dir() {
                walk(&start, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            walk(&path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Path relative to `root`, with forward slashes (rule scoping and report
/// stability both key off this form).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Audit the workspace rooted at `root`: walk, lex, lint, waive, and
/// model-check. IO errors abort; rule hits never do.
pub fn run_audit(root: &Path) -> std::io::Result<AuditReport> {
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let (registry, registry_found) = match parse_registry(&readme) {
        Some(vars) => (vars, true),
        None => (BTreeSet::new(), false),
    };

    let files = collect_files(root)?;
    let mut violations = Vec::new();
    let mut waivers = Vec::new();
    if !registry_found {
        violations.push(Violation {
            rule: rules::RULE_ENV_REGISTRY,
            file: "README.md".to_string(),
            line: 0,
            message: "env registry markers not found in README.md".to_string(),
            waived: false,
            waive_reason: None,
            trace: Vec::new(),
        });
    }
    let mut parsed: Vec<parser::ParsedFile> = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let raw = lexer::lex(&src);
        let rel = rel_path(root, path);
        rules::check_file(&rel, &raw, &registry, &mut violations);
        rules::collect_waivers(&rel, &raw, &mut waivers, &mut violations);
        // The call graph covers library/binary sources only: integration
        // tests allocate and read clocks at will, and their helper names
        // would pollute method-union resolution.
        if rel.starts_with("crates/") && rel.contains("/src/") {
            parsed.push(parser::parse_file(&rel, &raw));
        }
    }
    let ws = resolve::Workspace::build(parsed);
    interproc::check(&ws, &mut violations);
    let mut seen = std::collections::BTreeSet::new();
    violations.retain(|v| seen.insert((v.rule, v.file.clone(), v.line, v.message.clone())));
    rules::apply_waivers(&mut violations, &mut waivers);
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Ok(AuditReport {
        root: root.to_path_buf(),
        files_scanned: files.len(),
        violations,
        waivers,
        registry,
        registry_found,
        protocol: interleave::check_pool_protocol(),
        graph: ws.stats.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_parser_extracts_vars_between_markers() {
        let readme = format!(
            "# Title\nBENCHTEMP_OUTSIDE ignored\n{}\n\
             | `BENCHTEMP_THREADS` | pool size |\n\
             | `BENCHTEMP_TRACE` | trace path |\n{}\ntail BENCHTEMP_AFTER\n",
            REGISTRY_BEGIN, REGISTRY_END
        );
        let vars = parse_registry(&readme).unwrap();
        assert!(vars.contains("BENCHTEMP_THREADS"));
        assert!(vars.contains("BENCHTEMP_TRACE"));
        assert!(!vars.contains("BENCHTEMP_OUTSIDE"));
        assert!(!vars.contains("BENCHTEMP_AFTER"));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn registry_parser_rejects_missing_markers() {
        assert!(parse_registry("no markers here").is_none());
        assert!(
            parse_registry(REGISTRY_BEGIN).is_none(),
            "end marker required"
        );
    }

    #[test]
    fn report_json_shape_is_stable() {
        let report = AuditReport {
            root: PathBuf::from("."),
            files_scanned: 0,
            violations: Vec::new(),
            waivers: Vec::new(),
            registry: BTreeSet::new(),
            registry_found: true,
            protocol: interleave::check_pool_protocol(),
            graph: resolve::GraphStats::default(),
        };
        let j = report.to_json();
        assert_eq!(
            j.get("schema").unwrap().as_str(),
            Some("benchtemp-audit/v2")
        );
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("rules").unwrap().as_array().unwrap().len(),
            ALL_RULES.len()
        );
        let cg = j.get("call_graph").unwrap();
        assert!(cg.get("functions").is_some());
        assert!(cg.get("edges").is_some());
        assert!(cg.get("resolved_call_ratio").is_some());
        let proto = j.get("protocol_model").unwrap();
        assert_eq!(proto.get("verified").unwrap().as_bool(), Some(true));
        // Round-trips through the util parser.
        let text = j.to_string_pretty();
        assert!(benchtemp_util::json::parse(&text).is_ok());
    }
}
