//! Workspace symbol index, heuristic name resolution, and the call graph.
//!
//! Built from every [`crate::parser::ParsedFile`] under `crates/*/src`, the
//! [`Workspace`] resolves each recorded call to the workspace function(s)
//! it may reach. Resolution is *heuristic and over-approximate on purpose*:
//! when a method receiver's type cannot be inferred, the call links to every
//! workspace method of that name, so reachability-based rules err toward
//! flagging (a false positive costs one reasoned waiver; a false negative
//! costs a nondeterministic benchmark). The tiers, in order:
//!
//! 1. receiver type known (param / local / `self` / `self.field` via the
//!    struct index) → inherent + trait-impl methods on that type, type
//!    aliases chased first;
//! 2. qualified paths: `Self::f`, `Type::f`, `crate::m::f`,
//!    `benchtemp_x::…::f`, `module::f`, with `use`-edges applied to the
//!    first segment;
//! 3. free calls: same file → same crate → `use`-import → workspace-unique;
//! 4. method calls with unknown receivers: union of all same-name workspace
//!    methods;
//! 5. otherwise: *external* when the leading segment or method name is a
//!    known std shape, *unknown* when nothing matches.
//!
//! Soundness caveats (trait objects, shadowed names, macro-generated items)
//! are catalogued in DESIGN.md §15.

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{Call, Callee, FnDef, ParsedFile, Recv, TypePath};

/// Index of one function in [`Workspace::fns`] (flat across files).
pub type FnId = usize;

/// Where a call ended up after resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// One or more workspace functions (union for ambiguous receivers).
    Workspace(Vec<FnId>),
    /// A known non-workspace callee (std / core); the segments are kept so
    /// taint rules can match sinks like `Instant::now`.
    External,
    /// Nothing matched — counted against the resolved-call ratio.
    Unknown,
}

/// One resolved call edge, kept per function in call order.
#[derive(Debug, Clone)]
pub struct Edge {
    pub call_index: usize,
    pub resolution: Resolution,
}

/// Aggregate call-graph statistics for the report.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    pub files_parsed: usize,
    pub functions: usize,
    /// Workspace-to-workspace edges (deduplicated per caller/callee pair).
    pub edges: usize,
    pub calls_total: usize,
    pub calls_resolved: usize,
    pub calls_external: usize,
    pub calls_unknown: usize,
}

impl GraphStats {
    /// Share of calls that either resolved to a workspace function or were
    /// recognized as external std shapes — the complement is the resolver's
    /// blind spot.
    pub fn resolved_ratio(&self) -> f64 {
        if self.calls_total == 0 {
            return 1.0;
        }
        (self.calls_resolved + self.calls_external) as f64 / self.calls_total as f64
    }
}

/// A function's stable display path: `benchtemp_tensor::tape::Tape::matmul`.
pub fn fn_path(ws: &Workspace, id: FnId) -> String {
    let (file_idx, fn_idx) = ws.fns[id];
    let file = &ws.files[file_idx];
    let def = &file.fns[fn_idx];
    let mut parts: Vec<&str> = vec![&file.crate_name];
    for m in &file.module {
        parts.push(m);
    }
    for m in &def.module {
        parts.push(m);
    }
    if let Some(ty) = &def.self_ty {
        parts.push(ty);
    }
    parts.push(&def.name);
    parts.join("::")
}

pub struct Workspace {
    pub files: Vec<ParsedFile>,
    /// Flat function list: `fns[id] = (file index, fn index within file)`.
    pub fns: Vec<(usize, usize)>,
    /// Resolved edges per function, same indexing as `fns`.
    pub edges: Vec<Vec<Edge>>,
    pub stats: GraphStats,

    free_by_name: BTreeMap<String, Vec<FnId>>,
    method_by_type: BTreeMap<(String, String), Vec<FnId>>,
    method_by_name: BTreeMap<String, Vec<FnId>>,
    aliases: BTreeMap<String, TypePath>,
    struct_fields: BTreeMap<(String, String), TypePath>,
    crate_names: BTreeSet<String>,
}

/// Leading path segments that mark a callee as non-workspace std/core.
const EXTERNAL_ROOTS: [&str; 36] = [
    "std",
    "core",
    "alloc",
    "Vec",
    "VecDeque",
    "Box",
    "String",
    "str",
    "Arc",
    "Rc",
    "Cell",
    "RefCell",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Option",
    "Result",
    "Some",
    "None",
    "Ok",
    "Err",
    "Instant",
    "Duration",
    "SystemTime",
    "Ordering",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU8",
    "AtomicBool",
    "OnceLock",
    "Mutex",
    "Condvar",
    "PathBuf",
    "Path",
];

/// Free-function names from the std prelude (called bare).
const EXTERNAL_FREE: [&str; 6] = ["drop", "panic", "todo", "unimplemented", "matches", "print"];

/// Method names that are std-intrinsic when no workspace method matches.
/// (Workspace methods of the same name still win — `iter` on a workspace
/// type resolves to it.)
const EXTERNAL_METHODS: [&str; 60] = [
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "clone",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "map",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "rev",
    "zip",
    "enumerate",
    "chain",
    "flat_map",
    "filter_map",
    "find",
    "position",
    "any",
    "all",
    "count",
    "take",
    "skip",
    "step_by",
    "chunks",
    "chunks_mut",
    "split_at",
    "split_at_mut",
    "copy_from_slice",
    "fill",
    "sort",
    "sort_by",
    "sort_unstable",
    "binary_search",
    "unwrap",
    "unwrap_or",
    "expect",
    "as_ref",
    "as_mut",
    "abs",
    "sqrt",
];

impl Workspace {
    pub fn build(files: Vec<ParsedFile>) -> Workspace {
        let mut ws = Workspace {
            files,
            fns: Vec::new(),
            edges: Vec::new(),
            stats: GraphStats::default(),
            free_by_name: BTreeMap::new(),
            method_by_type: BTreeMap::new(),
            method_by_name: BTreeMap::new(),
            aliases: BTreeMap::new(),
            struct_fields: BTreeMap::new(),
            crate_names: BTreeSet::new(),
        };

        for (fi, file) in ws.files.iter().enumerate() {
            ws.crate_names.insert(file.crate_name.clone());
            for (ni, def) in file.fns.iter().enumerate() {
                let id = ws.fns.len();
                ws.fns.push((fi, ni));
                match &def.self_ty {
                    Some(ty) => {
                        ws.method_by_type
                            .entry((ty.clone(), def.name.clone()))
                            .or_default()
                            .push(id);
                        ws.method_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None if def.trait_of.is_some() => {
                        // Trait declaration / default body: addressable as a
                        // method of unknown receiver type.
                        ws.method_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                    None => {
                        ws.free_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                }
            }
            for (name, target) in &file.aliases {
                ws.aliases.entry(name.clone()).or_insert(target.clone());
            }
            for s in &file.structs {
                for (fname, ty) in &s.fields {
                    ws.struct_fields
                        .entry((s.name.clone(), fname.clone()))
                        .or_insert(ty.clone());
                }
            }
        }

        ws.stats.files_parsed = ws.files.len();
        ws.stats.functions = ws.fns.len();

        // Resolve every call of every function.
        let mut all_edges: Vec<Vec<Edge>> = Vec::with_capacity(ws.fns.len());
        let mut edge_pairs: BTreeSet<(FnId, FnId)> = BTreeSet::new();
        for id in 0..ws.fns.len() {
            let (fi, ni) = ws.fns[id];
            let calls = &ws.files[fi].fns[ni].calls;
            let mut edges = Vec::with_capacity(calls.len());
            for (ci, call) in calls.iter().enumerate() {
                let resolution = ws.resolve_call(fi, ni, call);
                ws.stats.calls_total += 1;
                match &resolution {
                    Resolution::Workspace(targets) => {
                        ws.stats.calls_resolved += 1;
                        for t in targets {
                            edge_pairs.insert((id, *t));
                        }
                    }
                    Resolution::External => ws.stats.calls_external += 1,
                    Resolution::Unknown => ws.stats.calls_unknown += 1,
                }
                edges.push(Edge {
                    call_index: ci,
                    resolution,
                });
            }
            all_edges.push(edges);
        }
        ws.edges = all_edges;
        ws.stats.edges = edge_pairs.len();
        ws
    }

    pub fn fn_def(&self, id: FnId) -> &FnDef {
        let (fi, ni) = self.fns[id];
        &self.files[fi].fns[ni]
    }

    pub fn file_of(&self, id: FnId) -> &ParsedFile {
        &self.files[self.fns[id].0]
    }

    /// Chase `use`-renames and type aliases from a syntactic type path down
    /// to a terminal type name (last segment). Alias chains are capped to
    /// guard against cycles.
    pub fn resolve_type_name(&self, file: &ParsedFile, ty: &TypePath) -> Option<String> {
        let mut name = ty.last()?.to_string();
        // A `use` of the name may rename it: `use x::HashMap as Map`.
        if ty.0.len() == 1 {
            if let Some((_, full)) = file.uses.iter().find(|(l, _)| *l == name) {
                if let Some(last) = full.last() {
                    name = last.clone();
                }
            }
        }
        for _ in 0..8 {
            match self.aliases.get(&name) {
                Some(target) => {
                    let next = target.last()?.to_string();
                    if next == name {
                        break;
                    }
                    name = next;
                }
                None => break,
            }
        }
        Some(name)
    }

    /// The declared type of `name` inside `def` (param or local), if any.
    fn local_type<'b>(&self, def: &'b FnDef, name: &str) -> Option<&'b TypePath> {
        def.locals
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .or_else(|| def.params.iter().find(|(n, _)| n == name).map(|(_, t)| t))
    }

    fn resolve_call(&self, file_idx: usize, fn_idx: usize, call: &Call) -> Resolution {
        let file = &self.files[file_idx];
        let def = &file.fns[fn_idx];
        match &call.callee {
            Callee::Mac(_) => Resolution::External,
            Callee::Path(segs) => self.resolve_path_call(file, segs),
            Callee::Method { recv, name } => self.resolve_method_call(file, def, recv, name),
        }
    }

    fn resolve_path_call(&self, file: &ParsedFile, segs: &[String]) -> Resolution {
        let name = segs.last().expect("path call has segments").clone();
        if segs.len() == 1 {
            // Bare call: same file (any module), then `use` import, then
            // same crate, then workspace-unique.
            if let Some(ids) = self.free_by_name.get(&name) {
                let same_file: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|id| std::ptr::eq(self.file_of(*id), file))
                    .collect();
                if !same_file.is_empty() {
                    return Resolution::Workspace(same_file);
                }
                if let Some((_, full)) = file.uses.iter().find(|(l, _)| *l == name) {
                    return self.resolve_full_path(file, full);
                }
                let same_crate: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|id| self.file_of(*id).crate_name == file.crate_name)
                    .collect();
                if !same_crate.is_empty() {
                    return Resolution::Workspace(same_crate);
                }
                if ids.len() == 1 {
                    return Resolution::Workspace(ids.clone());
                }
            }
            if let Some((_, full)) = file.uses.iter().find(|(l, _)| *l == name) {
                return self.resolve_full_path(file, full);
            }
            if EXTERNAL_FREE.contains(&name.as_str()) {
                return Resolution::External;
            }
            return Resolution::Unknown;
        }

        // Qualified call. Apply a `use`-rename to the first segment, then
        // dispatch on what the leading segment is.
        let mut segs: Vec<String> = segs.to_vec();
        if let Some((_, full)) = file.uses.iter().find(|(l, _)| *l == segs[0]) {
            let mut widened = full.clone();
            widened.extend(segs[1..].iter().cloned());
            segs = widened;
        }
        self.resolve_full_path(file, &segs)
    }

    /// Resolve a fully-spelled path (`use`-expansion already applied).
    fn resolve_full_path(&self, file: &ParsedFile, segs: &[String]) -> Resolution {
        let name = segs.last().expect("non-empty path").clone();
        let first = segs[0].as_str();

        if first == "Self" {
            if let Some(ty) = &file.fns.iter().find_map(|d| d.self_ty.clone()) {
                // `Self::f` — methods of the current impl type. (The fn's
                // own self_ty is checked first below; this is the fallback.)
                if let Some(ids) = self.method_by_type.get(&(ty.clone(), name.clone())) {
                    return Resolution::Workspace(ids.clone());
                }
            }
        }

        // Penultimate segment as a type: `Type::method` / `alias::method`.
        if segs.len() >= 2 {
            let penult = &segs[segs.len() - 2];
            if penult.chars().next().is_some_and(char::is_uppercase) {
                let ty = self
                    .resolve_type_name(file, &TypePath(vec![penult.clone()]))
                    .unwrap_or_else(|| penult.clone());
                if ty == "Self" {
                    // `Self::method` inside an impl — try every fn's impl
                    // type in this file that matches.
                    for d in &file.fns {
                        if let Some(sty) = &d.self_ty {
                            if let Some(ids) = self.method_by_type.get(&(sty.clone(), name.clone()))
                            {
                                return Resolution::Workspace(ids.clone());
                            }
                        }
                    }
                } else if let Some(ids) = self.method_by_type.get(&(ty.clone(), name.clone())) {
                    return Resolution::Workspace(ids.clone());
                }
            }
        }

        if EXTERNAL_ROOTS.contains(&first) {
            return Resolution::External;
        }

        // Crate-qualified free fn: `benchtemp_x::…::f` / `crate::…::f`.
        let target_crate = if first == "crate" || first == "self" || first == "super" {
            Some(file.crate_name.clone())
        } else if self.crate_names.contains(first) {
            Some(first.to_string())
        } else {
            None
        };
        if let Some(krate) = target_crate {
            if let Some(ids) = self.free_by_name.get(&name) {
                let in_crate: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|id| self.file_of(*id).crate_name == krate)
                    .collect();
                if !in_crate.is_empty() {
                    return Resolution::Workspace(in_crate);
                }
            }
            // `benchtemp_x::Type::method` with the type re-exported at the
            // crate root was handled by the penultimate-segment branch.
            return Resolution::Unknown;
        }

        // `module::f` — a sibling module of the same crate.
        if let Some(ids) = self.free_by_name.get(&name) {
            let penult = &segs[segs.len() - 2];
            let matching: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|id| {
                    let f = self.file_of(*id);
                    f.crate_name == file.crate_name
                        && (f.module.last() == Some(penult)
                            || self.fn_def(*id).module.last() == Some(penult))
                })
                .collect();
            if !matching.is_empty() {
                return Resolution::Workspace(matching);
            }
        }
        Resolution::Unknown
    }

    /// Infer the terminal type name of a method receiver, chasing `use`
    /// renames and type aliases. `None` when the spelling is not a plain
    /// param/local/`self`/`self.field` receiver or its type is unknown.
    pub fn receiver_type(&self, file: &ParsedFile, def: &FnDef, recv: &Recv) -> Option<String> {
        match recv {
            Recv::Slf => def.self_ty.clone(),
            Recv::SelfField(field) => def.self_ty.as_ref().and_then(|ty| {
                self.struct_fields
                    .get(&(ty.clone(), field.clone()))
                    .and_then(|ft| self.resolve_type_name(file, ft))
            }),
            Recv::Name(n) => self
                .local_type(def, n)
                .and_then(|ty| self.resolve_type_name(file, ty)),
            Recv::Expr => None,
        }
    }

    fn resolve_method_call(
        &self,
        file: &ParsedFile,
        def: &FnDef,
        recv: &Recv,
        name: &str,
    ) -> Resolution {
        // Receivers spelled in SCREAMING_CASE are statics — atomics,
        // OnceLocks, counters. Their methods (`load`, `store`, `get_or_init`)
        // are std shapes; unioning them with same-name workspace methods
        // (e.g. a workspace `load`) would invent absurd cross-crate edges.
        if let Recv::Name(n) = recv {
            if !n.is_empty()
                && n.chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                return Resolution::External;
            }
        }

        // Tier 1: infer the receiver type.
        let recv_ty = self.receiver_type(file, def, recv);

        if let Some(ty) = recv_ty {
            if let Some(ids) = self.method_by_type.get(&(ty.clone(), name.to_string())) {
                return Resolution::Workspace(ids.clone());
            }
            // Known receiver type, but the method is not defined on it in
            // the workspace: a std container/iterator method.
            if EXTERNAL_ROOTS.contains(&ty.as_str()) || EXTERNAL_METHODS.contains(&name) {
                return Resolution::External;
            }
            // The type is a workspace type whose method we cannot see
            // (macro-generated, derive, deref) — fall through to the union.
        }

        // Tier 4: unknown receiver — union every workspace method.
        if let Some(ids) = self.method_by_name.get(name) {
            // Prefer impls over bodyless trait signatures when both exist.
            let with_body: Vec<FnId> = ids
                .iter()
                .copied()
                .filter(|id| self.fn_def(*id).body.is_some())
                .collect();
            return Resolution::Workspace(if with_body.is_empty() {
                ids.clone()
            } else {
                with_body
            });
        }
        if EXTERNAL_METHODS.contains(&name) {
            return Resolution::External;
        }
        Resolution::Unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(path, src)| parse_file(path, &lex(src)))
                .collect(),
        )
    }

    fn id_of(ws: &Workspace, path_suffix: &str) -> FnId {
        (0..ws.fns.len())
            .find(|id| fn_path(ws, *id).ends_with(path_suffix))
            .unwrap_or_else(|| panic!("no fn matching {path_suffix}"))
    }

    fn targets_of(ws: &Workspace, caller: FnId, call_name: &str) -> Vec<String> {
        let (fi, ni) = ws.fns[caller];
        let def = &ws.files[fi].fns[ni];
        let mut out = Vec::new();
        for e in &ws.edges[caller] {
            let callee = &def.calls[e.call_index].callee;
            let matches_name = match callee {
                Callee::Path(p) => p.last().map(String::as_str) == Some(call_name),
                Callee::Method { name, .. } => name == call_name,
                Callee::Mac(m) => m == call_name,
            };
            if matches_name {
                if let Resolution::Workspace(ids) = &e.resolution {
                    out.extend(ids.iter().map(|t| fn_path(ws, *t)));
                }
            }
        }
        out
    }

    #[test]
    fn free_fn_resolution_prefers_same_file_then_crate() {
        let ws = build(&[
            (
                "crates/core/src/a.rs",
                "fn helper() {}\nfn caller() { helper(); other(); }\n",
            ),
            ("crates/core/src/b.rs", "pub fn other() {}\n"),
            ("crates/graph/src/c.rs", "pub fn other() {}\n"),
        ]);
        let caller = id_of(&ws, "a::caller");
        assert_eq!(
            targets_of(&ws, caller, "helper"),
            ["benchtemp_core::a::helper"]
        );
        // Same-crate `other` wins over the graph-crate one.
        assert_eq!(
            targets_of(&ws, caller, "other"),
            ["benchtemp_core::b::other"]
        );
    }

    #[test]
    fn cross_crate_resolution_via_use_edge() {
        let ws = build(&[
            (
                "crates/models/src/m.rs",
                "use benchtemp_graph::neighbors::expand;\n\
                 fn go() { expand(); }\n",
            ),
            ("crates/graph/src/neighbors.rs", "pub fn expand() {}\n"),
        ]);
        let go = id_of(&ws, "m::go");
        assert_eq!(
            targets_of(&ws, go, "expand"),
            ["benchtemp_graph::neighbors::expand"]
        );
    }

    #[test]
    fn method_resolution_by_receiver_type() {
        let ws = build(&[
            (
                "crates/tensor/src/m.rs",
                "pub struct Matrix;\n\
                 impl Matrix { pub fn rows(&self) -> usize { 0 } }\n\
                 pub struct Other;\n\
                 impl Other { pub fn rows(&self) -> usize { 1 } }\n",
            ),
            (
                "crates/models/src/u.rs",
                "use benchtemp_tensor::Matrix;\n\
                 fn go(m: &Matrix) -> usize { m.rows() }\n",
            ),
        ]);
        let go = id_of(&ws, "u::go");
        assert_eq!(
            targets_of(&ws, go, "rows"),
            ["benchtemp_tensor::m::Matrix::rows"]
        );
    }

    #[test]
    fn unknown_receiver_unions_all_candidates() {
        let ws = build(&[
            (
                "crates/tensor/src/m.rs",
                "pub struct A;\nimpl A { pub fn poke(&self) {} }\n\
                 pub struct B;\nimpl B { pub fn poke(&self) {} }\n",
            ),
            (
                "crates/models/src/u.rs",
                "fn go(x: &impl Pokeable) { x.thing().poke(); }\n",
            ),
        ]);
        let go = id_of(&ws, "u::go");
        let mut t = targets_of(&ws, go, "poke");
        t.sort();
        assert_eq!(
            t,
            [
                "benchtemp_tensor::m::A::poke",
                "benchtemp_tensor::m::B::poke"
            ]
        );
    }

    #[test]
    fn type_alias_chain_resolves_receiver() {
        let ws = build(&[
            (
                "crates/graph/src/alias.rs",
                "pub type Cache = HashMap<u32, f32>;\n",
            ),
            (
                "crates/graph/src/u.rs",
                "use crate::alias::Cache;\n\
                 fn go(c: &Cache) -> usize { c.len() }\n",
            ),
        ]);
        let file = &ws.files[1];
        let resolved = ws.resolve_type_name(file, &TypePath(vec!["Cache".into()]));
        assert_eq!(resolved.as_deref(), Some("HashMap"));
    }

    #[test]
    fn self_field_methods_resolve_via_struct_index() {
        let ws = build(&[(
            "crates/models/src/m.rs",
            "pub struct Inner;\n\
             impl Inner { pub fn work(&self) {} }\n\
             pub struct Outer { inner: Inner }\n\
             impl Outer { pub fn go(&self) { self.inner.work(); } }\n",
        )]);
        let go = id_of(&ws, "Outer::go");
        assert_eq!(
            targets_of(&ws, go, "work"),
            ["benchtemp_models::m::Inner::work"]
        );
    }

    #[test]
    fn stats_track_resolution_classes() {
        let ws = build(&[(
            "crates/core/src/a.rs",
            "fn helper() {}\n\
             fn go() { helper(); std::mem::drop(1); mystery_external(); }\n",
        )]);
        assert_eq!(ws.stats.functions, 2);
        assert_eq!(ws.stats.calls_total, 3);
        assert_eq!(ws.stats.calls_resolved, 1);
        assert_eq!(ws.stats.calls_external, 1);
        assert_eq!(ws.stats.calls_unknown, 1);
        assert!(ws.stats.resolved_ratio() > 0.6 && ws.stats.resolved_ratio() < 0.7);
    }
}
