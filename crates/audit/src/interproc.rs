//! The three interprocedural rules over the workspace call graph.
//!
//! Where the token rules in [`crate::rules`] look at one file at a time,
//! these walk the [`crate::resolve::Workspace`] call graph, so a wallclock
//! read or an allocation hidden one (or five) calls away from a hot entry
//! point is found *by construction*. Every hit carries the full shortest
//! call path from the entry that reaches it, so the report shows not just
//! "what" but "how you get there". Waivers apply exactly as for the token
//! rules: a line or file `audit-allow` at the *sink* covers the hit.
//!
//! Because name resolution is heuristic and over-approximate (unknown
//! method receivers union every same-name workspace method), these rules
//! err toward flagging; the cost of a false positive is one reasoned
//! waiver, the cost of a false negative is a nondeterministic benchmark.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::Tok;
use crate::parser::{Callee, ParsedFile};
use crate::resolve::{fn_path, FnId, Resolution, Workspace};
use crate::rules::{Violation, RULE_ALLOC_REACH, RULE_CLAIMED_WRITE, RULE_DETERMINISM_TAINT};

/// Hot entry points for the determinism-taint rule: `(impl type, fn name)`.
/// `None` matches any (or no) impl type. These are the functions whose
/// transitive callees decide benchmark results — training steps, frontier
/// sampling, tape op execution, and ranking scoring.
pub const HOT_ENTRIES: [(Option<&str>, &str); 7] = [
    (None, "train_batch"),
    (None, "sample_frontier"),
    (None, "score_candidates"),
    (Some("Tape"), "backward"),
    (Some("Tape"), "linear_affine"),
    (Some("Tape"), "time_encode_fused"),
    (Some("Tape"), "multi_head_grouped_attention"),
];

/// Functions the counting-allocator tests pin as zero-alloc after warm-up
/// (`crates/tensor/tests/alloc_free_forward.rs`,
/// `crates/graph/tests/alloc_free.rs`). The alloc-reachability rule walks
/// everything these can call.
pub const ZERO_ALLOC_PINNED: [(Option<&str>, &str); 8] = [
    (Some("Graph"), "new"),
    (Some("Graph"), "input_from"),
    (Some("Graph"), "value"),
    (Some("Mlp"), "forward"),
    (Some("MultiHeadAttention"), "forward"),
    (None, "gather_rows_from"),
    (Some("NeighborFinder"), "sample_into"),
    (Some("NeighborFinder"), "sample_one"),
];

const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Allocating method names from the issue's sink list.
const ALLOC_METHODS: [&str; 3] = ["to_vec", "collect", "clone"];

/// Run all three interprocedural rules, appending hits (with traces).
pub fn check(ws: &Workspace, out: &mut Vec<Violation>) {
    determinism_taint(ws, out);
    alloc_reachability(ws, out);
    claimed_writes(ws, out);
}

/// All workspace functions matching the `(impl type, name)` specs.
fn match_roots(ws: &Workspace, specs: &[(Option<&str>, &str)]) -> Vec<FnId> {
    (0..ws.fns.len())
        .filter(|id| {
            let def = ws.fn_def(*id);
            specs.iter().any(|(ty, name)| {
                def.name == *name && ty.is_none_or(|t| def.self_ty.as_deref() == Some(t))
            })
        })
        .collect()
}

/// Multi-source BFS over workspace call edges. Returns `reached → parent`
/// (roots map to themselves), so every reachable function has a shortest
/// call path back to some root.
fn reach(ws: &Workspace, roots: &[FnId]) -> BTreeMap<FnId, FnId> {
    let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &r in roots {
        if parent.insert(r, r).is_none() {
            queue.push_back(r);
        }
    }
    while let Some(id) = queue.pop_front() {
        for edge in &ws.edges[id] {
            if let Resolution::Workspace(targets) = &edge.resolution {
                for &t in targets {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(id);
                        queue.push_back(t);
                    }
                }
            }
        }
    }
    parent
}

/// Shortest call path `entry → … → id` as display paths.
fn trace_to(ws: &Workspace, parent: &BTreeMap<FnId, FnId>, id: FnId) -> Vec<String> {
    let mut path = vec![id];
    let mut at = id;
    while let Some(&p) = parent.get(&at) {
        if p == at {
            break;
        }
        path.push(p);
        at = p;
    }
    path.reverse();
    path.into_iter().map(|f| fn_path(ws, f)).collect()
}

fn hit(
    rule: &'static str,
    file: &ParsedFile,
    line: u32,
    message: String,
    trace: Vec<String>,
    out: &mut Vec<Violation>,
) {
    out.push(Violation {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        waived: false,
        waive_reason: None,
        trace,
    });
}

/// `determinism-taint-hot-path`
///
/// Anything transitively reachable from a [`HOT_ENTRIES`] function must not
/// read wall clocks (`Instant::now` / `SystemTime::now` — sanctioned only
/// inside `crates/obs/`, the observability layer), read the environment
/// (`env::var`), iterate hash-ordered collections (receiver type resolved
/// through aliases and `use` renames), or spawn raw threads (sanctioned
/// only in `pool.rs`). The v1 token rules check some of these per file
/// with per-file sanctioning lists; this closes the cross-file holes.
fn determinism_taint(ws: &Workspace, out: &mut Vec<Violation>) {
    let roots = match_roots(ws, &HOT_ENTRIES);
    let parent = reach(ws, &roots);
    for &id in parent.keys() {
        let file = ws.file_of(id);
        let def = ws.fn_def(id);
        let in_obs = file.rel_path.starts_with("crates/obs/");
        let in_pool = file.rel_path.ends_with("/pool.rs");
        for call in &def.calls {
            match &call.callee {
                Callee::Path(segs) => {
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    let clock = segs.iter().any(|s| s == "Instant" || s == "SystemTime");
                    if last == "now" && clock && !in_obs {
                        hit(
                            RULE_DETERMINISM_TAINT,
                            file,
                            call.line,
                            format!(
                                "wallclock read `{}` is reachable from hot entry `{}` \
                                 ({} calls deep); timing belongs to crates/obs",
                                segs.join("::"),
                                trace_root(ws, &parent, id),
                                depth_of(&parent, id),
                            ),
                            trace_to(ws, &parent, id),
                            out,
                        );
                    }
                    if last == "var" && segs.iter().any(|s| s == "env") {
                        let what = call
                            .str_arg
                            .as_deref()
                            .map(|v| format!("env::var(\"{v}\")"))
                            .unwrap_or_else(|| "env::var".to_string());
                        hit(
                            RULE_DETERMINISM_TAINT,
                            file,
                            call.line,
                            format!(
                                "`{what}` is reachable from hot entry `{}`; environment \
                                 reads inside hot paths are invisible run-to-run inputs",
                                trace_root(ws, &parent, id),
                            ),
                            trace_to(ws, &parent, id),
                            out,
                        );
                    }
                    if (last == "spawn" || last == "Builder")
                        && segs.iter().any(|s| s == "thread")
                        && !in_pool
                    {
                        hit(
                            RULE_DETERMINISM_TAINT,
                            file,
                            call.line,
                            format!(
                                "raw `thread::{last}` is reachable from hot entry `{}`; \
                                 all hot-path parallelism must go through the \
                                 deterministic pool",
                                trace_root(ws, &parent, id),
                            ),
                            trace_to(ws, &parent, id),
                            out,
                        );
                    }
                }
                Callee::Method { recv, name } if HASH_ITER_METHODS.contains(&name.as_str()) => {
                    let ty = ws.receiver_type(file, def, recv);
                    if matches!(ty.as_deref(), Some("HashMap") | Some("HashSet")) {
                        hit(
                            RULE_DETERMINISM_TAINT,
                            file,
                            call.line,
                            format!(
                                "`.{name}()` iterates a {} (RandomState order) and is \
                                 reachable from hot entry `{}`; the receiver type was \
                                 resolved through aliases the per-file rule cannot see",
                                ty.as_deref().unwrap_or("hash collection"),
                                trace_root(ws, &parent, id),
                            ),
                            trace_to(ws, &parent, id),
                            out,
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

fn trace_root(ws: &Workspace, parent: &BTreeMap<FnId, FnId>, id: FnId) -> String {
    let mut at = id;
    while let Some(&p) = parent.get(&at) {
        if p == at {
            break;
        }
        at = p;
    }
    fn_path(ws, at)
}

fn depth_of(parent: &BTreeMap<FnId, FnId>, id: FnId) -> usize {
    let mut at = id;
    let mut d = 0;
    while let Some(&p) = parent.get(&at) {
        if p == at {
            break;
        }
        d += 1;
        at = p;
    }
    d
}

/// `hot-path-alloc-reachability`
///
/// From the functions the counting-allocator tests pin as zero-alloc
/// ([`ZERO_ALLOC_PINNED`]), every reachable allocating call is flagged:
/// `Vec::new` / `Box::new` path calls, `.to_vec()` / `.collect()` /
/// `.clone()` methods, and `format!` / `vec!` macros. The runtime tests
/// spot-check one warm input shape; this covers every call path, so
/// cold-start or grow-on-miss allocations carry explicit waivers saying
/// when they fire.
fn alloc_reachability(ws: &Workspace, out: &mut Vec<Violation>) {
    let roots = match_roots(ws, &ZERO_ALLOC_PINNED);
    let parent = reach(ws, &roots);
    for &id in parent.keys() {
        let file = ws.file_of(id);
        let def = ws.fn_def(id);
        for call in &def.calls {
            let sink: Option<String> = match &call.callee {
                Callee::Path(segs) if segs.len() >= 2 => {
                    let last = segs.last().map(String::as_str).unwrap_or("");
                    let penult = &segs[segs.len() - 2];
                    ((penult == "Vec" || penult == "Box")
                        && (last == "new" || last == "with_capacity" || last == "from"))
                        .then(|| format!("{penult}::{last}"))
                }
                Callee::Method { name, .. } if ALLOC_METHODS.contains(&name.as_str()) => {
                    Some(format!(".{name}()"))
                }
                Callee::Mac(m) if m == "format" || m == "vec" => Some(format!("{m}!")),
                _ => None,
            };
            if let Some(sink) = sink {
                hit(
                    RULE_ALLOC_REACH,
                    file,
                    call.line,
                    format!(
                        "allocating call `{sink}` is reachable from zero-alloc-pinned \
                         `{}` ({} calls deep); either it must be a cold/grow path \
                         (waive with when it fires) or the pin is broken",
                        trace_root(ws, &parent, id),
                        depth_of(&parent, id),
                    ),
                    trace_to(ws, &parent, id),
                    out,
                );
            }
        }
    }
}

/// `claimed-write-audit`
///
/// In every function that calls `scope_run_claimed`, mutable writes inside
/// closures must target bindings introduced *inside* a closure (task-local
/// views carved out of the claim partition — `map` params, closure `let`s,
/// `for` patterns). A write whose base binding is captured from the
/// enclosing function body bypasses the claim partition entirely: every
/// task would hit the same buffer, which is exactly the overlap the
/// sanitizer's claims are meant to rule out. `self` writes inside task
/// closures are flagged for the same reason.
fn claimed_writes(ws: &Workspace, out: &mut Vec<Violation>) {
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, def) in file.fns.iter().enumerate() {
            let calls_claimed = def.calls.iter().any(|c| match &c.callee {
                Callee::Path(p) => p.last().is_some_and(|s| s == "scope_run_claimed"),
                Callee::Method { name, .. } => name == "scope_run_claimed",
                Callee::Mac(_) => false,
            });
            if !calls_claimed {
                continue;
            }
            let Some(body) = def.body else { continue };
            let _ = (fi, ni);
            scan_closure_writes(file, body, out);
        }
    }
}

/// Linear scan of one fn body: track closure extents and the bindings each
/// introduces, then validate every assignment found inside a closure.
fn scan_closure_writes(file: &ParsedFile, (start, end): (usize, usize), out: &mut Vec<Violation>) {
    let code = &file.code;
    let punct =
        |i: usize, c: char| matches!(code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    let ident = |i: usize| match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };

    // Active closure scopes: (extent end, bindings).
    let mut scopes: Vec<(usize, BTreeSet<String>)> = Vec::new();

    let mut i = start;
    while i < end {
        scopes.retain(|(stop, _)| i < *stop);

        // Closure start: `|` in expression position (or after `move`).
        let is_closure_bar = punct(i, '|')
            && (ident(i.wrapping_sub(1)) == Some("move")
                || i == start
                || matches!(
                    code.get(i - 1).map(|t| &t.tok),
                    Some(Tok::Punct('('))
                        | Some(Tok::Punct(','))
                        | Some(Tok::Punct('='))
                        | Some(Tok::Punct('{'))
                        | Some(Tok::Punct(';'))
                        | Some(Tok::Punct(':'))
                ));
        if is_closure_bar {
            let mut bindings = BTreeSet::new();
            // Params: idents up to the closing `|`, skipping ascribed types
            // (after `:` until `,` at paren depth 0) and `mut`/`_`.
            let mut j = i + 1;
            let mut paren = 0usize;
            let mut in_type = false;
            while j < end && !(paren == 0 && punct(j, '|')) {
                match code.get(j).map(|t| &t.tok) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('<')) => {
                        paren += 1
                    }
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('>')) => {
                        paren = paren.saturating_sub(1)
                    }
                    Some(Tok::Punct(':')) => in_type = true,
                    Some(Tok::Punct(',')) if paren == 0 => in_type = false,
                    Some(Tok::Ident(p)) if !in_type && p != "mut" && p != "_" => {
                        bindings.insert(p.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            // Body extent: a braced block, or up to the next `,`/`)`/`;` at
            // this nesting level for expression-bodied closures.
            let mut k = j + 1;
            let stop = if punct(k, '{') {
                let mut depth = 0usize;
                while k < end {
                    if punct(k, '{') {
                        depth += 1;
                    } else if punct(k, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                k + 1
            } else {
                let mut depth = 0isize;
                while k < end {
                    match code.get(k).map(|t| &t.tok) {
                        Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => {
                            depth += 1
                        }
                        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}'))
                            if depth == 0 =>
                        {
                            break
                        }
                        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => {
                            depth -= 1
                        }
                        Some(Tok::Punct(',')) | Some(Tok::Punct(';')) if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                k
            };
            scopes.push((stop, bindings));
            i = j + 1;
            continue;
        }

        // Bindings introduced inside a closure body join its scope.
        if !scopes.is_empty() {
            if ident(i) == Some("let") {
                // Pattern idents bind; a `:` switches to type position
                // (idents there are type names, not bindings). Consume
                // through the statement's own `=` so it is not mistaken
                // for an assignment below.
                let mut j = i + 1;
                let mut in_type = false;
                while j < end && !punct(j, '=') && !punct(j, ';') {
                    if punct(j, ':') {
                        in_type = true;
                    }
                    if !in_type {
                        if let Some(b) = ident(j) {
                            if b != "mut" && b != "_" {
                                scopes.last_mut().unwrap().1.insert(b.to_string());
                            }
                        }
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            if ident(i) == Some("for") {
                // `for <pattern> in …` — pattern idents bind per iteration.
                let mut j = i + 1;
                while j < end && ident(j) != Some("in") {
                    if let Some(b) = ident(j) {
                        if b != "mut" && b != "_" {
                            scopes.last_mut().unwrap().1.insert(b.to_string());
                        }
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }

        // Assignment inside a closure: `=` that is not `==`/`=>`/`<=`/`>=`/
        // `!=` and not the `=` of a `let`. Compound ops (`+=` …) count.
        if !scopes.is_empty() && punct(i, '=') {
            let next_breaks = punct(i + 1, '=') || punct(i + 1, '>');
            let prev_cmp =
                punct(i - 1, '=') || punct(i - 1, '!') || punct(i - 1, '<') || punct(i - 1, '>');
            if !next_breaks && !prev_cmp {
                // LHS end: step over a compound-op char.
                let mut l = i - 1;
                if matches!(
                    code.get(l).map(|t| &t.tok),
                    Some(Tok::Punct('+'))
                        | Some(Tok::Punct('-'))
                        | Some(Tok::Punct('*'))
                        | Some(Tok::Punct('/'))
                        | Some(Tok::Punct('%'))
                        | Some(Tok::Punct('&'))
                        | Some(Tok::Punct('|'))
                        | Some(Tok::Punct('^'))
                ) {
                    // `a *= b` — but a bare `let x = …` never lands here
                    // (handled above), so this is a compound write.
                    l -= 1;
                }
                if let Some(base) = lhs_base_ident(code, l, start) {
                    let closure_local = scopes.iter().any(|(_, b)| b.contains(&base));
                    if !closure_local {
                        out.push(Violation {
                            rule: RULE_CLAIMED_WRITE,
                            file: file.rel_path.clone(),
                            line: code[i].line,
                            message: format!(
                                "write to `{base}` inside a closure of a \
                                 `scope_run_claimed` caller, but `{base}` is captured \
                                 from the enclosing function — task writes must go \
                                 through per-task bindings carved from the claim \
                                 partition"
                            ),
                            waived: false,
                            waive_reason: None,
                            trace: Vec::new(),
                        });
                    }
                }
            }
        }
        i += 1;
    }
}

/// Walk an assignment LHS backwards from its last token to the base
/// identifier: `*name`, `name[i]`, `name.field`, `self.x[j]` → `name`/`self`.
/// `None` when the LHS is not a plain place expression.
fn lhs_base_ident(code: &[crate::lexer::Token], mut at: usize, floor: usize) -> Option<String> {
    loop {
        match code.get(at).map(|t| &t.tok) {
            Some(Tok::Punct(']')) | Some(Tok::Punct(')')) => {
                // Skip the balanced group backwards.
                let (open, close) = if matches!(code[at].tok, Tok::Punct(']')) {
                    ('[', ']')
                } else {
                    ('(', ')')
                };
                let mut depth = 0usize;
                while at > floor {
                    match &code[at].tok {
                        Tok::Punct(p) if *p == close => depth += 1,
                        Tok::Punct(p) if *p == open => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    at -= 1;
                }
                if at <= floor {
                    return None;
                }
                at -= 1;
            }
            Some(Tok::Ident(name)) => {
                // `x.name` keeps walking; a bare ident is the base.
                if at > floor && matches!(code[at - 1].tok, Tok::Punct('.')) {
                    if at - 1 == floor {
                        return None;
                    }
                    at -= 2;
                } else {
                    return Some(name.clone());
                }
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::resolve::Workspace;

    fn audit(files: &[(&str, &str)]) -> Vec<Violation> {
        let ws = Workspace::build(files.iter().map(|(p, s)| parse_file(p, &lex(s))).collect());
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn indirect_wallclock_is_tainted_with_full_trace() {
        let hits = audit(&[
            (
                "crates/models/src/train.rs",
                "use benchtemp_core::clockish::stamp;\n\
                 pub fn train_batch() { step(); }\n\
                 fn step() { stamp(); }\n",
            ),
            (
                "crates/core/src/clockish.rs",
                "pub fn stamp() -> u64 { let t = Instant::now(); 0 }\n",
            ),
        ]);
        let wall: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == RULE_DETERMINISM_TAINT)
            .collect();
        assert_eq!(wall.len(), 1, "{hits:?}");
        assert_eq!(wall[0].file, "crates/core/src/clockish.rs");
        assert_eq!(
            wall[0].trace,
            [
                "benchtemp_models::train::train_batch",
                "benchtemp_models::train::step",
                "benchtemp_core::clockish::stamp",
            ]
        );
    }

    #[test]
    fn wallclock_inside_obs_is_sanctioned() {
        let hits = audit(&[
            (
                "crates/models/src/train.rs",
                "pub fn train_batch() { benchtemp_obs::tick(); }\n",
            ),
            (
                "crates/obs/src/lib.rs",
                "pub fn tick() -> u64 { let t = Instant::now(); 0 }\n",
            ),
        ]);
        assert!(
            hits.iter().all(|v| v.rule != RULE_DETERMINISM_TAINT),
            "{hits:?}"
        );
    }

    #[test]
    fn aliased_hashmap_iteration_is_caught_via_resolved_type() {
        let hits = audit(&[
            (
                "crates/models/src/cache.rs",
                "pub type ScoreCache = HashMap<u64, f32>;\n",
            ),
            (
                "crates/models/src/rank.rs",
                "use crate::cache::ScoreCache;\n\
                 pub fn score_candidates(c: &ScoreCache) -> f32 {\n\
                 let mut s = 0.0;\n\
                 for v in c.values() { s += v; }\n\
                 s\n\
                 }\n",
            ),
        ]);
        let iter_hits: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == RULE_DETERMINISM_TAINT)
            .collect();
        assert_eq!(iter_hits.len(), 1, "{hits:?}");
        assert!(iter_hits[0].message.contains("HashMap"));
    }

    #[test]
    fn unreachable_sinks_are_not_flagged() {
        // Wallclock in a function no hot entry reaches: the per-file v1
        // rule's business, not taint's.
        let hits = audit(&[(
            "crates/core/src/cold.rs",
            "pub fn cold_report() { let t = Instant::now(); }\n",
        )]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn alloc_reachability_flags_indirect_to_vec() {
        let hits = audit(&[
            (
                "crates/graph/src/nf.rs",
                "pub struct NeighborFinder;\n\
                 impl NeighborFinder {\n\
                 pub fn sample_into(&self) { helper_pick(); }\n\
                 }\n",
            ),
            (
                "crates/graph/src/util.rs",
                "pub fn helper_pick() -> Vec<u32> { let xs = [1u32]; xs.to_vec() }\n",
            ),
        ]);
        let allocs: Vec<_> = hits.iter().filter(|v| v.rule == RULE_ALLOC_REACH).collect();
        assert_eq!(allocs.len(), 1, "{hits:?}");
        assert_eq!(allocs[0].file, "crates/graph/src/util.rs");
        assert_eq!(allocs[0].trace.len(), 2);
    }

    #[test]
    fn claimed_write_to_captured_buffer_is_flagged() {
        let hits = audit(&[(
            "crates/tensor/src/bad.rs",
            "pub fn broken_scatter(p: &ThreadPool, out: &mut [f32]) {\n\
             let claims = make_claims(out.len());\n\
             let mut tasks: Vec<TaskBox> = Vec::new();\n\
             tasks.push(Box::new(move || { out[0] = 1.0; }));\n\
             p.scope_run_claimed(\"broken\", &claims, tasks);\n\
             }\n",
        )]);
        let writes: Vec<_> = hits
            .iter()
            .filter(|v| v.rule == RULE_CLAIMED_WRITE)
            .collect();
        assert_eq!(writes.len(), 1, "{hits:?}");
        assert!(writes[0].message.contains("`out`"));
    }

    #[test]
    fn claimed_write_through_per_task_bindings_is_clean() {
        // The par_map shape: the written slot is bound by the map closure's
        // pattern (and an inner `for` pattern) — task-local by construction.
        let hits = audit(&[(
            "crates/tensor/src/good.rs",
            "pub fn fan_out(p: &ThreadPool, items: &[f32], out: &mut [Slot]) {\n\
             let claims = make_claims(items.len());\n\
             let tasks: Vec<TaskBox> = items\n\
             .chunks(4)\n\
             .zip(out.chunks_mut(4))\n\
             .map(|(src, dst)| {\n\
             let t: TaskBox = Box::new(move || {\n\
             for (s, d) in src.iter().zip(dst.iter_mut()) { *d = wrap(s); }\n\
             });\n\
             t\n\
             })\n\
             .collect();\n\
             p.scope_run_claimed(\"fan_out\", &claims, tasks);\n\
             }\n",
        )]);
        assert!(
            hits.iter().all(|v| v.rule != RULE_CLAIMED_WRITE),
            "{hits:?}"
        );
    }
}
