//! A dependency-free recursive-descent item parser over [`crate::lexer`]
//! tokens — just enough structure for interprocedural analysis.
//!
//! The parser builds, per file: the item tree (`mod` / `use` / `fn` /
//! `impl` / `trait` / `type` / `struct`), and for every function a list of
//! call expressions, its parameter and `let`-binding types, and the token
//! span of its body. It is *heuristic by design*: no expression AST, no
//! precedence, no macro expansion. The invariant it does keep — the one the
//! v1 token rules could not — is that every call is attributed to the
//! function (and `impl` type) that syntactically contains it, so a
//! workspace-level resolver can chain calls across files. Soundness caveats
//! are catalogued in DESIGN.md §15.
//!
//! `#[cfg(test)]` modules are skipped entirely: unit tests allocate and
//! read clocks at will, and nothing in a hot path can reach them.

use crate::lexer::{Tok, Token};

/// The outermost path of a type, generics stripped: `&mut Vec<f32>` →
/// `["Vec"]`, `graph::DegreeCache` → `["graph", "DegreeCache"]`. Empty for
/// shapes the parser does not model (tuples, slices, `impl Trait`, `dyn`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TypePath(pub Vec<String>);

impl TypePath {
    pub fn last(&self) -> Option<&str> {
        self.0.last().map(|s| s.as_str())
    }
}

/// How a method call's receiver was spelled — the resolver turns this into
/// a type when it can.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `name.method(…)` — a plain local/param receiver.
    Name(String),
    /// `self.field.method(…)` — a field of the `impl` type.
    SelfField(String),
    /// `self.method(…)`.
    Slf,
    /// Anything else (chained calls, index expressions, …).
    Expr,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `foo(…)`, `a::b::foo(…)`, `Type::assoc(…)`, `Self::f(…)`.
    Path(Vec<String>),
    /// `.method(…)` with the receiver spelling.
    Method { recv: Recv, name: String },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Mac(String),
}

#[derive(Debug, Clone)]
pub struct Call {
    pub callee: Callee,
    pub line: u32,
    /// First string literal directly after the opening paren, when present —
    /// enough to check `env::var("NAME")` against the registry.
    pub str_arg: Option<String>,
}

/// One function (free, inherent, trait-impl, or trait-default).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `impl` type this method belongs to (`impl Foo` / `impl Tr for Foo`
    /// both record `Foo`). `None` for free functions and trait signatures.
    pub self_ty: Option<String>,
    /// Trait name for `impl Tr for T` methods and `trait Tr { … }` bodies.
    pub trait_of: Option<String>,
    /// Inline-module path within the file (file-level module prefix is on
    /// [`ParsedFile`]).
    pub module: Vec<String>,
    pub line: u32,
    pub has_self: bool,
    /// Declared parameter types, pattern name → outermost type path.
    pub params: Vec<(String, TypePath)>,
    /// `let` bindings with a type ascription or a `Type::ctor(…)` /
    /// `Type { … }` initializer.
    pub locals: Vec<(String, TypePath)>,
    pub calls: Vec<Call>,
    /// Body token range in [`ParsedFile::code`] (after `{`, before the
    /// matching `}`). `None` for bodyless trait signatures.
    pub body: Option<(usize, usize)>,
}

#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// Named fields only — tuple structs record none.
    pub fields: Vec<(String, TypePath)>,
}

#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Repo-relative path with forward slashes.
    pub rel_path: String,
    /// Underscore crate name derived from `crates/<dir>/…` → `benchtemp_<dir>`.
    pub crate_name: String,
    /// Module path derived from the file's location under `src/`.
    pub module: Vec<String>,
    /// Comment-stripped token stream (spans in [`FnDef::body`] index this).
    pub code: Vec<Token>,
    /// `use` leaves: local name → full path (`Matrix` →
    /// `["benchtemp_tensor", "Matrix"]`).
    pub uses: Vec<(String, Vec<String>)>,
    /// `type Alias = Target;` declarations.
    pub aliases: Vec<(String, TypePath)>,
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
}

/// Crate name from a repo-relative path: `crates/tensor/src/…` →
/// `benchtemp_tensor`. Unknown layouts get the first path component.
pub fn crate_name_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(dir)) => format!("benchtemp_{}", dir.replace('-', "_")),
        (Some(first), _) => first.to_string(),
        _ => String::new(),
    }
}

/// Module path from the file's location under `src/`: `src/lib.rs`,
/// `src/main.rs`, and `src/bin/*` are the crate root; `src/a.rs` → `[a]`;
/// `src/a/b.rs` → `[a, b]`; `src/a/mod.rs` → `[a]`.
pub fn module_of(rel_path: &str) -> Vec<String> {
    let Some(at) = rel_path.find("/src/") else {
        return Vec::new();
    };
    let tail = &rel_path[at + "/src/".len()..];
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut segs: Vec<String> = tail.split('/').map(str::to_string).collect();
    if segs
        .last()
        .is_some_and(|s| s == "lib" || s == "main" || s == "mod")
    {
        segs.pop();
    }
    if segs.first().is_some_and(|s| s == "bin") {
        return Vec::new();
    }
    segs
}

/// Parse one file's token stream into its item tree.
pub fn parse_file(rel_path: &str, raw: &[Token]) -> ParsedFile {
    let code: Vec<Token> = raw
        .iter()
        .filter(|t| !matches!(t.tok, Tok::Comment(_)))
        .cloned()
        .collect();
    let mut p = Parser {
        code: &code,
        pos: 0,
        file: ParsedFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name_of(rel_path),
            module: module_of(rel_path),
            code: Vec::new(),
            uses: Vec::new(),
            aliases: Vec::new(),
            structs: Vec::new(),
            fns: Vec::new(),
        },
    };
    let mut module = Vec::new();
    p.items(&mut module, None, None, false);
    let mut file = p.file;
    file.code = code;
    file
}

struct Parser<'a> {
    code: &'a [Token],
    pos: usize,
    file: ParsedFile,
}

fn ident_of(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

impl<'a> Parser<'a> {
    fn tok(&self, at: usize) -> Option<&'a Token> {
        self.code.get(at)
    }

    fn ident(&self, at: usize) -> Option<&'a str> {
        ident_of(self.tok(at))
    }

    fn punct(&self, at: usize, c: char) -> bool {
        matches!(self.tok(at).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }

    fn line(&self, at: usize) -> u32 {
        self.tok(at).map(|t| t.line).unwrap_or(0)
    }

    /// Skip a balanced `open…close` group starting at `pos` (which must sit
    /// on `open`); leaves `pos` one past the matching close. EOF-tolerant.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct(p) if *p == open => depth += 1,
                Tok::Punct(p) if *p == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skip a generics group `<…>`, tolerating `->` inside fn-pointer types.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    if self.pos > 0 && self.punct(self.pos - 1, '-') {
                        // `->` return arrow inside the generic body.
                    } else {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skip to one past the next `;` at the current nesting level.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct(';') => {
                    self.pos += 1;
                    return;
                }
                Tok::Punct('{') => self.skip_balanced('{', '}'),
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                Tok::Punct('[') => self.skip_balanced('[', ']'),
                _ => self.pos += 1,
            }
        }
    }

    /// Parse an attribute `#[…]` / `#![…]` at `pos`; returns true when it is
    /// a `#[cfg(test)]`-style test gate.
    fn attribute_is_test_gate(&mut self) -> bool {
        self.pos += 1; // '#'
        if self.punct(self.pos, '!') {
            self.pos += 1;
        }
        let start = self.pos;
        if self.punct(self.pos, '[') {
            self.skip_balanced('[', ']');
        }
        let mut saw_cfg = false;
        let mut saw_test = false;
        for t in &self.code[start..self.pos] {
            if let Tok::Ident(i) = &t.tok {
                saw_cfg |= i == "cfg";
                saw_test |= i == "test";
            }
        }
        saw_cfg && saw_test
    }

    /// Parse items until the matching `}` (when `inside_block`) or EOF.
    fn items(
        &mut self,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
        trait_of: Option<&str>,
        inside_block: bool,
    ) {
        let mut skip_next_item = false;
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('}') if inside_block => {
                    self.pos += 1;
                    return;
                }
                Tok::Punct('#')
                    if self.punct(self.pos + 1, '[') || self.punct(self.pos + 1, '!') =>
                {
                    skip_next_item |= self.attribute_is_test_gate();
                }
                Tok::Ident(kw) => {
                    let kw = kw.clone();
                    let skipped = std::mem::take(&mut skip_next_item);
                    self.item(&kw, module, self_ty, trait_of, skipped);
                }
                _ => self.pos += 1,
            }
        }
    }

    fn item(
        &mut self,
        kw: &str,
        module: &mut Vec<String>,
        self_ty: Option<&str>,
        trait_of: Option<&str>,
        test_gated: bool,
    ) {
        match kw {
            "pub" => {
                self.pos += 1;
                if self.punct(self.pos, '(') {
                    self.skip_balanced('(', ')');
                }
            }
            "mod" => {
                let name = self.ident(self.pos + 1).unwrap_or("").to_string();
                self.pos += 2;
                if self.punct(self.pos, ';') {
                    self.pos += 1; // out-of-line module: covered by its own file
                } else if self.punct(self.pos, '{') {
                    if test_gated || name == "tests" {
                        self.skip_balanced('{', '}');
                    } else {
                        self.pos += 1;
                        module.push(name);
                        self.items(module, None, None, true);
                        module.pop();
                    }
                }
            }
            "use" => {
                self.pos += 1;
                self.parse_use();
            }
            "type" => {
                // `type X = Target;` — associated types inside traits have
                // no `=` and are skipped by the same path.
                let name = self.ident(self.pos + 1).map(str::to_string);
                self.pos += 2;
                if self.punct(self.pos, '<') {
                    self.skip_generics();
                }
                if self.punct(self.pos, '=') {
                    self.pos += 1;
                    let target = self.parse_type_path();
                    if let (Some(name), false) = (name, target.0.is_empty()) {
                        self.file.aliases.push((name, target));
                    }
                }
                self.skip_to_semi();
            }
            "struct" => self.parse_struct(test_gated),
            "enum" | "union" => {
                self.pos += 1;
                while let Some(t) = self.tok(self.pos) {
                    match &t.tok {
                        Tok::Punct('{') => {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        Tok::Punct(';') => {
                            self.pos += 1;
                            break;
                        }
                        Tok::Punct('<') => self.skip_generics(),
                        _ => self.pos += 1,
                    }
                }
            }
            "const" | "static" => {
                // `const fn` falls through to fn; `const X: T = …;` skips.
                if self.ident(self.pos + 1) == Some("fn") {
                    self.pos += 1;
                } else {
                    self.skip_to_semi();
                }
            }
            "unsafe" | "extern" | "async" | "default" => {
                self.pos += 1;
                if let Some(Tok::Str(_)) = self.tok(self.pos).map(|t| &t.tok) {
                    self.pos += 1; // extern "C"
                }
            }
            "impl" => self.parse_impl(module, test_gated),
            "trait" => self.parse_trait(module, test_gated),
            "fn" => self.parse_fn(module, self_ty, trait_of, test_gated),
            "macro_rules" => {
                self.pos += 1; // macro_rules
                if self.punct(self.pos, '!') {
                    self.pos += 1;
                }
                self.pos += 1; // name
                if self.punct(self.pos, '{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.skip_to_semi();
                }
            }
            _ => self.pos += 1,
        }
    }

    /// `use a::b::{c, d as e, f::g};` → leaf name → full path entries.
    fn parse_use(&mut self) {
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        self.skip_to_semi();
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.tok(self.pos).map(|t| &t.tok) {
                Some(Tok::Ident(seg)) => {
                    let seg = seg.clone();
                    self.pos += 1;
                    if self.punct(self.pos, ':') && self.punct(self.pos + 1, ':') {
                        self.pos += 2;
                        if self.punct(self.pos, '{') {
                            self.pos += 1;
                            prefix.push(seg);
                            // Group: comma-separated subtrees.
                            loop {
                                match self.tok(self.pos).map(|t| &t.tok) {
                                    Some(Tok::Punct('}')) => {
                                        self.pos += 1;
                                        break;
                                    }
                                    Some(Tok::Punct(',')) => self.pos += 1,
                                    Some(_) => self.use_tree(prefix),
                                    None => break,
                                }
                            }
                            prefix.truncate(depth_at_entry);
                            return;
                        }
                        prefix.push(seg);
                        continue;
                    }
                    // Leaf: optional `as rename`.
                    let mut local = seg.clone();
                    if self.ident(self.pos) == Some("as") {
                        local = self.ident(self.pos + 1).unwrap_or(&local).to_string();
                        self.pos += 2;
                    }
                    let mut full = prefix.clone();
                    full.push(seg);
                    if local != "_" {
                        self.file.uses.push((local, full));
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                Some(Tok::Punct('*')) => {
                    self.pos += 1; // glob: not modelled
                    prefix.truncate(depth_at_entry);
                    return;
                }
                Some(Tok::Punct('{')) => {
                    // `use {a, b};` bare group.
                    self.pos += 1;
                    loop {
                        match self.tok(self.pos).map(|t| &t.tok) {
                            Some(Tok::Punct('}')) => {
                                self.pos += 1;
                                break;
                            }
                            Some(Tok::Punct(',')) => self.pos += 1,
                            Some(_) => self.use_tree(prefix),
                            None => break,
                        }
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                _ => return,
            }
        }
    }

    /// A type at the cursor → its outermost path; stops before `,` `)` `;`
    /// `=` `{` `>` at this nesting level. `&`/`mut`/lifetimes skipped;
    /// tuples, slices, `impl`/`dyn` unmodelled (empty path).
    fn parse_type_path(&mut self) -> TypePath {
        loop {
            match self.tok(self.pos).map(|t| &t.tok) {
                Some(Tok::Punct('&')) | Some(Tok::Punct('*')) | Some(Tok::Lifetime) => {
                    self.pos += 1
                }
                Some(Tok::Ident(k)) if k == "mut" || k == "const" => self.pos += 1,
                _ => break,
            }
        }
        match self.tok(self.pos).map(|t| &t.tok) {
            Some(Tok::Punct('(')) => {
                self.skip_balanced('(', ')');
                return TypePath::default();
            }
            Some(Tok::Punct('[')) => {
                self.skip_balanced('[', ']');
                return TypePath::default();
            }
            Some(Tok::Ident(k)) if k == "impl" || k == "dyn" || k == "fn" => {
                // Bound soup — skip segments until a stop token.
                while let Some(t) = self.tok(self.pos) {
                    match &t.tok {
                        Tok::Punct('<') => self.skip_generics(),
                        Tok::Punct('(') => self.skip_balanced('(', ')'),
                        Tok::Punct(',')
                        | Tok::Punct(')')
                        | Tok::Punct(';')
                        | Tok::Punct('{')
                        | Tok::Punct('>')
                        | Tok::Punct('=') => break,
                        _ => self.pos += 1,
                    }
                }
                return TypePath::default();
            }
            _ => {}
        }
        let mut segs = Vec::new();
        while let Some(Tok::Ident(seg)) = self.tok(self.pos).map(|t| &t.tok) {
            segs.push(seg.clone());
            self.pos += 1;
            if self.punct(self.pos, '<') {
                self.skip_generics();
            }
            if self.punct(self.pos, ':') && self.punct(self.pos + 1, ':') {
                self.pos += 2;
            } else {
                break;
            }
        }
        TypePath(segs)
    }

    fn parse_struct(&mut self, test_gated: bool) {
        let line = self.line(self.pos);
        let name = self.ident(self.pos + 1).unwrap_or("").to_string();
        self.pos += 2;
        if self.punct(self.pos, '<') {
            self.skip_generics();
        }
        // Skip a where clause.
        while self.ident(self.pos) == Some("where")
            || (!self.punct(self.pos, '{')
                && !self.punct(self.pos, '(')
                && !self.punct(self.pos, ';')
                && self.tok(self.pos).is_some())
        {
            match self.tok(self.pos).map(|t| &t.tok) {
                Some(Tok::Punct('<')) => self.skip_generics(),
                _ => self.pos += 1,
            }
        }
        let mut fields = Vec::new();
        if self.punct(self.pos, '(') {
            self.skip_balanced('(', ')'); // tuple struct: fields unmodelled
            self.skip_to_semi();
        } else if self.punct(self.pos, '{') {
            self.pos += 1;
            loop {
                match self.tok(self.pos).map(|t| &t.tok) {
                    None | Some(Tok::Punct('}')) => {
                        self.pos += 1;
                        break;
                    }
                    Some(Tok::Punct('#')) => {
                        self.pos += 1;
                        if self.punct(self.pos, '[') {
                            self.skip_balanced('[', ']');
                        }
                    }
                    Some(Tok::Ident(k)) if k == "pub" => {
                        self.pos += 1;
                        if self.punct(self.pos, '(') {
                            self.skip_balanced('(', ')');
                        }
                    }
                    Some(Tok::Ident(fname)) if self.punct(self.pos + 1, ':') => {
                        let fname = fname.clone();
                        self.pos += 2;
                        let ty = self.parse_type_path();
                        fields.push((fname, ty));
                        // Consume through the field separator.
                        while let Some(t) = self.tok(self.pos) {
                            match &t.tok {
                                Tok::Punct(',') => {
                                    self.pos += 1;
                                    break;
                                }
                                Tok::Punct('}') => break,
                                Tok::Punct('<') => self.skip_generics(),
                                Tok::Punct('(') => self.skip_balanced('(', ')'),
                                Tok::Punct('[') => self.skip_balanced('[', ']'),
                                _ => self.pos += 1,
                            }
                        }
                    }
                    Some(_) => self.pos += 1,
                }
            }
        } else {
            self.pos += 1; // unit struct `;`
        }
        if !test_gated {
            self.file.structs.push(StructDef { name, line, fields });
        }
    }

    fn parse_impl(&mut self, module: &mut Vec<String>, test_gated: bool) {
        self.pos += 1; // impl
        if self.punct(self.pos, '<') {
            self.skip_generics();
        }
        let first = self.parse_type_path();
        let (self_ty, trait_of) = if self.ident(self.pos) == Some("for") {
            self.pos += 1;
            let target = self.parse_type_path();
            (target, first.last().map(str::to_string))
        } else {
            (first, None)
        };
        // Skip the where clause.
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('{') => break,
                Tok::Punct('<') => self.skip_generics(),
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                _ => self.pos += 1,
            }
        }
        if !self.punct(self.pos, '{') {
            return;
        }
        if test_gated {
            self.skip_balanced('{', '}');
            return;
        }
        self.pos += 1;
        let ty_name = self_ty.last().map(str::to_string);
        self.items(module, ty_name.as_deref(), trait_of.as_deref(), true);
    }

    fn parse_trait(&mut self, module: &mut Vec<String>, test_gated: bool) {
        let name = self.ident(self.pos + 1).unwrap_or("").to_string();
        self.pos += 2;
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('{') => break,
                Tok::Punct(';') => {
                    self.pos += 1;
                    return; // trait alias
                }
                Tok::Punct('<') => self.skip_generics(),
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                _ => self.pos += 1,
            }
        }
        if !self.punct(self.pos, '{') {
            return;
        }
        if test_gated {
            self.skip_balanced('{', '}');
            return;
        }
        self.pos += 1;
        self.items(module, None, Some(&name), true);
    }

    fn parse_fn(
        &mut self,
        module: &[String],
        self_ty: Option<&str>,
        trait_of: Option<&str>,
        test_gated: bool,
    ) {
        let line = self.line(self.pos);
        let name = self.ident(self.pos + 1).unwrap_or("").to_string();
        self.pos += 2;
        if self.punct(self.pos, '<') {
            self.skip_generics();
        }
        let mut def = FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            trait_of: trait_of.map(str::to_string),
            module: module.to_vec(),
            line,
            has_self: false,
            params: Vec::new(),
            locals: Vec::new(),
            calls: Vec::new(),
            body: None,
        };
        if self.punct(self.pos, '(') {
            self.parse_params(&mut def);
        }
        // Return type / where clause: scan to `{` or `;`.
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('{') | Tok::Punct(';') => break,
                Tok::Punct('<') => self.skip_generics(),
                Tok::Punct('(') => self.skip_balanced('(', ')'),
                Tok::Punct('[') => self.skip_balanced('[', ']'),
                _ => self.pos += 1,
            }
        }
        if self.punct(self.pos, ';') {
            self.pos += 1;
            if !test_gated {
                self.file.fns.push(def);
            }
            return;
        }
        if !self.punct(self.pos, '{') {
            return;
        }
        // Body: find the span, scan it for calls and locals.
        let open = self.pos;
        self.skip_balanced('{', '}');
        let body = (open + 1, self.pos.saturating_sub(1));
        if test_gated {
            return;
        }
        def.body = Some(body);
        scan_body(self.code, body, &mut def);
        self.file.fns.push(def);
    }

    fn parse_params(&mut self, def: &mut FnDef) {
        self.pos += 1; // '('
        let mut depth = 1usize;
        while let Some(t) = self.tok(self.pos) {
            match &t.tok {
                Tok::Punct('(') => {
                    depth += 1;
                    self.pos += 1;
                }
                Tok::Punct(')') => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                Tok::Punct('<') => self.skip_generics(),
                Tok::Punct('[') => self.skip_balanced('[', ']'),
                Tok::Ident(i) if depth == 1 && i == "self" => {
                    def.has_self = true;
                    self.pos += 1;
                }
                Tok::Ident(i)
                    if depth == 1
                        && i != "mut"
                        && self.punct(self.pos + 1, ':')
                        && !self.punct(self.pos + 2, ':') =>
                {
                    let pname = i.clone();
                    self.pos += 2;
                    let ty = self.parse_type_path();
                    def.params.push((pname, ty));
                }
                _ => self.pos += 1,
            }
        }
    }
}

/// Identifiers that look like calls but are control flow or binders.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "let", "move", "else",
    "where", "unsafe",
];

/// Scan a fn body span for calls and `let` bindings. Linear, lookback-based
/// — closures and nested blocks are scanned in place, so their calls belong
/// to the enclosing function (exactly what reachability wants: a task
/// closure's work is triggered by its dispatching function).
fn scan_body(code: &[Token], (start, end): (usize, usize), def: &mut FnDef) {
    let punct_at =
        |i: usize, c: char| i < code.len() && matches!(&code[i].tok, Tok::Punct(p) if *p == c);
    let ident_at = |i: usize| match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };

    let mut i = start;
    while i < end {
        let Some(name) = ident_at(i) else {
            i += 1;
            continue;
        };

        // `let [mut] name …` — type ascription or constructor-shaped init.
        if name == "let" {
            let mut j = i + 1;
            if ident_at(j) == Some("mut") {
                j += 1;
            }
            if let Some(bind) = ident_at(j) {
                if punct_at(j + 1, ':') && !punct_at(j + 2, ':') {
                    // Ascribed: parse the type with a throwaway cursor.
                    let mut sub = Parser {
                        code,
                        pos: j + 2,
                        file: ParsedFile {
                            rel_path: String::new(),
                            crate_name: String::new(),
                            module: Vec::new(),
                            code: Vec::new(),
                            uses: Vec::new(),
                            aliases: Vec::new(),
                            structs: Vec::new(),
                            fns: Vec::new(),
                        },
                    };
                    let ty = sub.parse_type_path();
                    if !ty.0.is_empty() {
                        def.locals.push((bind.to_string(), ty));
                    }
                } else if punct_at(j + 1, '=') && !punct_at(j + 2, '=') {
                    // `let x = Type::ctor(…)` / `let x = Type { … }`.
                    let mut segs = Vec::new();
                    let mut k = j + 2;
                    while let Some(seg) = ident_at(k) {
                        segs.push(seg.to_string());
                        if punct_at(k + 1, ':') && punct_at(k + 2, ':') {
                            k += 3;
                        } else {
                            k += 1;
                            break;
                        }
                    }
                    let ctor_call = punct_at(k, '(') && segs.len() >= 2;
                    let struct_lit = punct_at(k, '{') && segs.len() == 1;
                    if (ctor_call || struct_lit)
                        && segs[0].chars().next().is_some_and(char::is_uppercase)
                    {
                        let ty_len = if ctor_call {
                            segs.len() - 1
                        } else {
                            segs.len()
                        };
                        def.locals
                            .push((bind.to_string(), TypePath(segs[..ty_len].to_vec())));
                    }
                }
            }
            i += 1;
            continue;
        }

        if NON_CALL_KEYWORDS.contains(&name) {
            i += 1;
            continue;
        }

        // Macro call `name!(…)` (but not `!=`).
        if punct_at(i + 1, '!') && !punct_at(i + 2, '=') {
            def.calls.push(Call {
                callee: Callee::Mac(name.to_string()),
                line: code[i].line,
                str_arg: first_str_arg(code, i + 2),
            });
            i += 2;
            continue;
        }

        // Call position: optional turbofish `::<…>` then `(`.
        let mut after = i + 1;
        if punct_at(after, ':') && punct_at(after + 1, ':') && punct_at(after + 2, '<') {
            let mut depth = 0usize;
            let mut k = after + 2;
            while k < code.len() {
                match &code[k].tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            after = k + 1;
        }
        if !punct_at(after, '(') {
            i += 1;
            continue;
        }
        // Skip definitions (`fn name(` is consumed by the item parser, but
        // nested items inside bodies land here).
        if i >= 1 && ident_at(i - 1) == Some("fn") {
            i = after;
            continue;
        }

        let line = code[i].line;
        let str_arg = first_str_arg(code, after);

        if i >= 1 && punct_at(i - 1, '.') {
            // Method call: classify the receiver spelling.
            let recv = if i >= 2 {
                match ident_at(i - 2) {
                    Some("self") => Recv::Slf,
                    Some(field)
                        if i >= 4
                            && punct_at(i - 3, '.')
                            && ident_at(i - 4) == Some("self")
                            && !punct_at(i - 3 + 1, '(') =>
                    {
                        Recv::SelfField(field.to_string())
                    }
                    Some(r) => {
                        // Plain receiver only when `r` starts the expression
                        // (not itself a field access or call result).
                        if i >= 3 && (punct_at(i - 3, '.') || punct_at(i - 3, ')')) {
                            Recv::Expr
                        } else {
                            Recv::Name(r.to_string())
                        }
                    }
                    None => Recv::Expr,
                }
            } else {
                Recv::Expr
            };
            def.calls.push(Call {
                callee: Callee::Method {
                    recv,
                    name: name.to_string(),
                },
                line,
                str_arg,
            });
            i = after;
            continue;
        }

        // Path call: walk `seg::seg::name` backwards.
        let mut segs = vec![name.to_string()];
        let mut back = i;
        while back >= 3 && punct_at(back - 1, ':') && punct_at(back - 2, ':') {
            match ident_at(back - 3) {
                Some(seg) => {
                    segs.insert(0, seg.to_string());
                    back -= 3;
                }
                None => break,
            }
        }
        def.calls.push(Call {
            callee: Callee::Path(segs),
            line,
            str_arg,
        });
        i = after;
    }
}

/// The string literal directly after an opening paren, if any.
fn first_str_arg(code: &[Token], open: usize) -> Option<String> {
    match (
        code.get(open).map(|t| &t.tok),
        code.get(open + 1).map(|t| &t.tok),
    ) {
        (Some(Tok::Punct('(')), Some(Tok::Str(s))) => Some(s.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/tensor/src/x.rs", &lex(src))
    }

    #[test]
    fn crate_and_module_derivation() {
        assert_eq!(
            crate_name_of("crates/tensor/src/tape.rs"),
            "benchtemp_tensor"
        );
        assert_eq!(module_of("crates/tensor/src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_of("crates/tensor/src/tape.rs"), ["tape"]);
        assert_eq!(module_of("crates/core/src/datasets/mod.rs"), ["datasets"]);
        assert_eq!(
            module_of("crates/bench/src/bin/bench_kernels.rs"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn free_fn_with_calls_and_locals() {
        let f = parse(
            "fn go(x: &Matrix, k: usize) -> f32 {\n\
             let mut s = Scratch::new(k);\n\
             let t: Vec<f32> = helper(x);\n\
             s.fill(t.len());\n\
             inner::finish(&s)\n\
             }\n",
        );
        assert_eq!(f.fns.len(), 1);
        let go = &f.fns[0];
        assert_eq!(go.name, "go");
        assert_eq!(go.params.len(), 2);
        assert_eq!(go.params[0].1, TypePath(vec!["Matrix".into()]));
        assert!(go
            .locals
            .contains(&("s".into(), TypePath(vec!["Scratch".into()]))));
        assert!(go
            .locals
            .contains(&("t".into(), TypePath(vec!["Vec".into()]))));
        let callees: Vec<&Callee> = go.calls.iter().map(|c| &c.callee).collect();
        assert!(callees.contains(&&Callee::Path(vec!["Scratch".into(), "new".into()])));
        assert!(callees.contains(&&Callee::Path(vec!["helper".into()])));
        assert!(callees.contains(&&Callee::Method {
            recv: Recv::Name("s".into()),
            name: "fill".into()
        }));
        assert!(callees.contains(&&Callee::Path(vec!["inner".into(), "finish".into()])));
    }

    #[test]
    fn impl_and_trait_attribution() {
        let f = parse(
            "struct Widget { cache: HashMap<u32, f32> }\n\
             impl Widget {\n\
             fn poke(&self) { self.cache.len(); }\n\
             }\n\
             impl Display for Widget {\n\
             fn fmt(&self, f: &mut Formatter) -> Result { write!(f, \"w\") }\n\
             }\n\
             trait Runner {\n\
             fn run(&self);\n\
             fn twice(&self) { self.run(); self.run(); }\n\
             }\n",
        );
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.structs[0].fields[0].0, "cache");
        assert_eq!(f.structs[0].fields[0].1, TypePath(vec!["HashMap".into()]));
        let poke = f.fns.iter().find(|d| d.name == "poke").unwrap();
        assert_eq!(poke.self_ty.as_deref(), Some("Widget"));
        assert_eq!(poke.trait_of, None);
        let fmt = f.fns.iter().find(|d| d.name == "fmt").unwrap();
        assert_eq!(fmt.self_ty.as_deref(), Some("Widget"));
        assert_eq!(fmt.trait_of.as_deref(), Some("Display"));
        let run = f.fns.iter().find(|d| d.name == "run").unwrap();
        assert_eq!(run.self_ty, None);
        assert_eq!(run.trait_of.as_deref(), Some("Runner"));
        assert!(run.body.is_none());
        let twice = f.fns.iter().find(|d| d.name == "twice").unwrap();
        assert_eq!(twice.calls.len(), 2);
        assert!(matches!(
            &twice.calls[0].callee,
            Callee::Method { recv: Recv::Slf, name } if name == "run"
        ));
    }

    #[test]
    fn use_tree_flattening() {
        let f = parse(
            "use std::collections::{HashMap, HashSet};\n\
             use benchtemp_tensor::{Matrix, pool::ThreadPool as Pool};\n\
             use benchtemp_graph::neighbors::NeighborFinder;\n",
        );
        let find = |n: &str| f.uses.iter().find(|(l, _)| l == n).map(|(_, p)| p.clone());
        assert_eq!(
            find("HashMap").unwrap(),
            vec!["std", "collections", "HashMap"]
        );
        assert_eq!(
            find("Pool").unwrap(),
            vec!["benchtemp_tensor", "pool", "ThreadPool"]
        );
        assert_eq!(
            find("NeighborFinder").unwrap(),
            vec!["benchtemp_graph", "neighbors", "NeighborFinder"]
        );
    }

    #[test]
    fn type_aliases_and_self_field_receivers() {
        let f = parse(
            "type Cache = HashMap<u32, f32>;\n\
             struct S { seen: Cache }\n\
             impl S {\n\
             fn total(&self) -> usize { self.seen.keys().count() }\n\
             }\n",
        );
        assert_eq!(f.aliases[0].0, "Cache");
        assert_eq!(f.aliases[0].1, TypePath(vec!["HashMap".into()]));
        let total = f.fns.iter().find(|d| d.name == "total").unwrap();
        assert!(total.calls.iter().any(|c| matches!(
            &c.callee,
            Callee::Method { recv: Recv::SelfField(fld), name } if fld == "seen" && name == "keys"
        )));
    }

    #[test]
    fn cfg_test_modules_are_invisible() {
        let f = parse(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn helper() { std::thread::spawn(|| {}); }\n\
             #[test]\n\
             fn t() { helper(); }\n\
             }\n",
        );
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn macro_and_turbofish_calls() {
        let f = parse(
            "fn go(xs: &[usize]) -> Vec<usize> {\n\
             let v = xs.iter().copied().collect::<Vec<_>>();\n\
             assert!(v.len() > 0);\n\
             format!(\"n={}\", v.len());\n\
             v\n\
             }\n",
        );
        let go = &f.fns[0];
        assert!(go.calls.iter().any(|c| matches!(
            &c.callee,
            Callee::Method { name, .. } if name == "collect"
        )));
        assert!(go
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Mac(m) if m == "format")));
        assert!(go
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Mac(m) if m == "assert")));
    }

    #[test]
    fn env_var_string_argument_is_captured() {
        let f = parse("fn go() { let _ = std::env::var(\"BENCHTEMP_THREADS\"); }\n");
        let call = f.fns[0]
            .calls
            .iter()
            .find(|c| matches!(&c.callee, Callee::Path(p) if p.ends_with(&["env".into(), "var".into()])))
            .unwrap();
        assert_eq!(call.str_arg.as_deref(), Some("BENCHTEMP_THREADS"));
    }

    #[test]
    fn nested_generics_close_with_double_gt() {
        let f = parse("fn go(m: &mut Vec<Vec<HashMap<u32, Vec<f32>>>>) -> usize { m.len() }\n");
        let go = &f.fns[0];
        assert_eq!(go.params[0].1, TypePath(vec!["Vec".into()]));
        assert!(go.body.is_some(), "body must be found past the generics");
        assert!(go
            .calls
            .iter()
            .any(|c| matches!(&c.callee, Callee::Method { name, .. } if name == "len")));
    }
}
