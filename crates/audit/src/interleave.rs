//! Exhaustive-interleaving model checker for the pool's `Queue`/`Batch`
//! protocol (`crates/tensor/src/pool.rs`).
//!
//! The protocol's soundness argument ("`wait()` blocks until every job has
//! finished, so `'env` borrows cannot dangle") rests on the counter+condvar
//! batch barrier never losing a wakeup and never losing a job. Those are
//! exactly the properties a few hundred lines of test code cannot establish
//! by running threads — the schedules that break barriers show up once per
//! million runs. So this module checks them the loom way, hand-rolled:
//! model every lock-protected critical section as one atomic step, model
//! condvars faithfully (a sleeper wakes only when notified — no spurious
//! wakeups, which is *stricter* than std's contract, so absence of lost
//! wakeups here implies absence under std), and enumerate every schedule
//! for a small instance by DFS over the state graph.
//!
//! A deliberately broken variant ([`Mode::NotifyBeforeDecrement`] — the
//! classic "signal outside the predicate update" bug) must deadlock in at
//! least one schedule, proving the checker can actually see the failures
//! it claims to rule out.

use std::collections::BTreeSet;

/// Which variant of the protocol to explore.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// The protocol as implemented in `pool.rs`.
    Correct,
    /// The middle job panics; its panic must be carried to the submitter in
    /// every schedule while all other jobs still run (`catch_unwind`
    /// isolation).
    PanicMiddleJob,
    /// Bug seed: `finish_one` signals `done` *before* decrementing the
    /// counter, in a separate critical section. Must deadlock somewhere.
    NotifyBeforeDecrement,
}

/// Aggregate results of one exhaustive exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Exploration {
    /// Distinct protocol states reached.
    pub states: usize,
    /// State-graph edges traversed.
    pub transitions: usize,
    /// States with no enabled step.
    pub terminals: usize,
    /// Terminals where the submitter is still blocked — lost wakeup.
    pub deadlocks: usize,
    /// Terminals where the submitter returned from `wait()`.
    pub completions: usize,
    /// Completions that observed a carried panic.
    pub panics_observed: usize,
    /// Completions where some job never executed.
    pub lost_jobs: usize,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Worker {
    /// About to lock the queue and pop (top of `worker_loop`).
    Idle,
    /// Asleep on `Queue::available`; runnable only after a notify.
    SleepAvail,
    /// Executing job *n* (the `job()` call, outside both locks).
    Run(u8),
    /// About to run `finish_one` for job *n*.
    Finish(u8),
    /// Buggy mode only: notified already, decrement still pending.
    FinishDec(u8),
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Submitter {
    /// About to push all jobs and `notify_all` under the queue lock.
    Submit,
    /// Top of the `wait()` loop: lock `pending`, check, sleep or return.
    WaitCheck,
    /// Asleep on `Batch::done`; runnable only after a notify.
    SleepDone,
    /// Returned from `wait()`; panic slot has been inspected.
    Finished,
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct State {
    queue: Vec<u8>,
    pending: u8,
    workers: Vec<Worker>,
    sub: Submitter,
    panicked: bool,
    /// Bitmask of executed jobs (caps the instance at 8 jobs).
    jobs_run: u8,
}

#[derive(Clone, Copy, Debug)]
enum Step {
    Sub,
    Worker(usize),
}

fn enabled(st: &State) -> Vec<Step> {
    let mut steps = Vec::new();
    match st.sub {
        Submitter::Submit | Submitter::WaitCheck => steps.push(Step::Sub),
        Submitter::SleepDone | Submitter::Finished => {}
    }
    for (i, w) in st.workers.iter().enumerate() {
        match w {
            Worker::SleepAvail => {}
            _ => steps.push(Step::Worker(i)),
        }
    }
    steps
}

/// Apply one atomic step. Each arm is one critical section of the real
/// protocol; waking a sleeper is folded into the notifier's step, which is
/// how a condvar notify behaves (the sleeper still re-acquires the lock,
/// i.e. takes its own next step, before acting).
fn apply(st: &State, step: Step, mode: Mode, jobs: u8) -> State {
    let mut s = st.clone();
    match step {
        Step::Sub => match s.sub {
            Submitter::Submit => {
                // Push every job and notify_all(available), all under the
                // queue lock — one atomic step.
                s.queue.extend(0..jobs);
                for w in &mut s.workers {
                    if *w == Worker::SleepAvail {
                        *w = Worker::Idle;
                    }
                }
                s.sub = Submitter::WaitCheck;
            }
            Submitter::WaitCheck => {
                // wait(): lock pending, check, atomically release+sleep if
                // still positive.
                s.sub = if s.pending == 0 {
                    Submitter::Finished
                } else {
                    Submitter::SleepDone
                };
            }
            Submitter::SleepDone | Submitter::Finished => unreachable!("not enabled"),
        },
        Step::Worker(i) => match s.workers[i] {
            Worker::SleepAvail => unreachable!("not enabled"),
            Worker::Idle => {
                // Lock queue; pop a job or atomically release+sleep.
                s.workers[i] = if s.queue.is_empty() {
                    Worker::SleepAvail
                } else {
                    Worker::Run(s.queue.remove(0))
                };
            }
            Worker::Run(j) => {
                s.jobs_run |= 1 << j;
                if mode == Mode::PanicMiddleJob && j == jobs / 2 {
                    // catch_unwind stores the payload; worker survives.
                    s.panicked = true;
                }
                s.workers[i] = Worker::Finish(j);
            }
            Worker::Finish(_) => match mode {
                Mode::Correct | Mode::PanicMiddleJob => {
                    // finish_one(): decrement and (if zero) notify, all
                    // under the pending lock.
                    s.pending -= 1;
                    if s.pending == 0 && s.sub == Submitter::SleepDone {
                        s.sub = Submitter::WaitCheck;
                    }
                    s.workers[i] = Worker::Idle;
                }
                Mode::NotifyBeforeDecrement => {
                    // Bug: signal first (own critical section)…
                    if s.pending == 1 && s.sub == Submitter::SleepDone {
                        s.sub = Submitter::WaitCheck;
                    }
                    let Worker::Finish(j) = s.workers[i] else {
                        unreachable!()
                    };
                    s.workers[i] = Worker::FinishDec(j);
                }
            },
            Worker::FinishDec(_) => {
                // …then decrement in a second one. A submitter that went to
                // sleep between the two steps never hears about zero.
                s.pending -= 1;
                s.workers[i] = Worker::Idle;
            }
        },
    }
    s
}

/// Exhaustively explore every schedule of `workers` workers draining
/// `jobs` jobs through one batch. Panics on an internal inconsistency
/// (a completion with `pending != 0`); protocol *bugs* are reported in the
/// returned counts, not panicked on, so negative tests can assert on them.
pub fn explore(workers: usize, jobs: u8, mode: Mode) -> Exploration {
    assert!(jobs as usize <= 8, "jobs_run bitmask holds at most 8 jobs");
    assert!(workers >= 1 && jobs >= 1);
    let init = State {
        queue: Vec::new(),
        pending: jobs,
        workers: vec![Worker::Idle; workers],
        sub: Submitter::Submit,
        panicked: false,
        jobs_run: 0,
    };
    let mut report = Exploration::default();
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut stack = vec![init.clone()];
    seen.insert(init);
    while let Some(st) = stack.pop() {
        report.states += 1;
        let steps = enabled(&st);
        if steps.is_empty() {
            report.terminals += 1;
            if st.sub == Submitter::Finished {
                report.completions += 1;
                assert_eq!(st.pending, 0, "wait() returned with jobs still pending");
                if st.panicked {
                    report.panics_observed += 1;
                }
                if st.jobs_run != ((1u16 << jobs) - 1) as u8 {
                    report.lost_jobs += 1;
                }
            } else {
                report.deadlocks += 1;
            }
            continue;
        }
        for step in steps {
            report.transitions += 1;
            let next = apply(&st, step, mode, jobs);
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    report
}

/// Model-check results for the three standard instances run by the audit
/// driver (2 workers × 3 jobs, the size named in the determinism docs).
#[derive(Clone, Copy, Debug)]
pub struct ProtocolReport {
    pub correct: Exploration,
    pub panic: Exploration,
    pub buggy: Exploration,
}

impl ProtocolReport {
    /// `Ok(())` when the real protocol is clean in every schedule *and*
    /// the seeded bug is caught — both directions must hold for the check
    /// to mean anything.
    pub fn verify(&self) -> Result<(), String> {
        if self.correct.deadlocks != 0 {
            return Err(format!(
                "pool protocol model: {} deadlocking schedule(s) found",
                self.correct.deadlocks
            ));
        }
        if self.correct.lost_jobs != 0 || self.panic.lost_jobs != 0 {
            return Err("pool protocol model: schedule with a lost job found".to_string());
        }
        if self.panic.deadlocks != 0 {
            return Err("pool protocol model: panic variant deadlocks".to_string());
        }
        if self.panic.panics_observed != self.panic.completions {
            return Err(format!(
                "pool protocol model: panic reached the submitter in only {}/{} schedules",
                self.panic.panics_observed, self.panic.completions
            ));
        }
        if self.buggy.deadlocks == 0 {
            return Err(
                "pool protocol model: seeded notify-before-decrement bug was NOT caught — \
                 the checker is blind"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// Run the standard 2×3 explorations.
pub fn check_pool_protocol() -> ProtocolReport {
    ProtocolReport {
        correct: explore(2, 3, Mode::Correct),
        panic: explore(2, 3, Mode::PanicMiddleJob),
        buggy: explore(2, 3, Mode::NotifyBeforeDecrement),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_is_clean_in_every_schedule() {
        for (w, j) in [(2, 3), (3, 3), (2, 4), (1, 2)] {
            let r = explore(w, j, Mode::Correct);
            assert!(r.states > 0 && r.completions > 0, "{w}x{j}: {r:?}");
            assert_eq!(r.deadlocks, 0, "{w}x{j}: {r:?}");
            assert_eq!(r.lost_jobs, 0, "{w}x{j}: {r:?}");
            assert_eq!(r.panics_observed, 0, "{w}x{j}: {r:?}");
            // Every terminal is a completion: no stuck schedules at all.
            assert_eq!(r.terminals, r.completions, "{w}x{j}: {r:?}");
        }
    }

    #[test]
    fn panic_in_middle_job_reaches_submitter_in_every_schedule() {
        let r = explore(2, 3, Mode::PanicMiddleJob);
        assert_eq!(r.deadlocks, 0, "{r:?}");
        assert_eq!(r.lost_jobs, 0, "catch_unwind must isolate the panic: {r:?}");
        assert_eq!(r.panics_observed, r.completions, "{r:?}");
        assert!(r.completions > 0);
    }

    #[test]
    fn notify_before_decrement_bug_is_caught() {
        let r = explore(2, 3, Mode::NotifyBeforeDecrement);
        assert!(
            r.deadlocks > 0,
            "seeded lost-wakeup bug must deadlock in some schedule: {r:?}"
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = explore(2, 3, Mode::Correct);
        let b = explore(2, 3, Mode::Correct);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_report_verifies() {
        check_pool_protocol().verify().unwrap();
    }
}
