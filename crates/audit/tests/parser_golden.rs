//! Golden-file regression test for the item parser and resolver.
//!
//! The v2 fixture tree is parsed, the item tree (uses, aliases, structs)
//! and every function with its resolved call edges are serialized to a
//! stable text form, and the result is diffed line-by-line against
//! `tests/golden/v2_workspace.txt`. Any drift in parsing or resolution —
//! a call suddenly unresolved, an alias no longer chased, a method union
//! growing — shows up as a readable one-line diff. After an intentional
//! change, run with `BENCHTEMP_BLESS=1` to rewrite the golden file.

use std::fmt::Write as _;
use std::path::PathBuf;

use benchtemp_audit::parser::{parse_file, Callee, Recv};
use benchtemp_audit::resolve::{fn_path, Resolution, Workspace};
use benchtemp_audit::{collect_files, lexer};

fn render(ws: &Workspace) -> String {
    let mut out = String::new();
    for file in &ws.files {
        writeln!(out, "file {}", file.rel_path).unwrap();
        for (name, path) in &file.uses {
            writeln!(out, "  use {name} = {}", path.join("::")).unwrap();
        }
        for (name, ty) in &file.aliases {
            writeln!(out, "  alias {name} = {}", ty.0.join("::")).unwrap();
        }
        for s in &file.structs {
            let fields: Vec<String> = s
                .fields
                .iter()
                .map(|(n, t)| format!("{n}: {}", t.0.join("::")))
                .collect();
            writeln!(out, "  struct {} {{ {} }}", s.name, fields.join(", ")).unwrap();
        }
    }
    for id in 0..ws.fns.len() {
        let def = ws.fn_def(id);
        let params: Vec<String> = def
            .params
            .iter()
            .map(|(n, t)| format!("{n}: {}", t.0.join("::")))
            .collect();
        writeln!(
            out,
            "fn {} ({}) line {}",
            fn_path(ws, id),
            params.join(", "),
            def.line
        )
        .unwrap();
        for edge in &ws.edges[id] {
            let call = &def.calls[edge.call_index];
            let callee = match &call.callee {
                Callee::Path(segs) => segs.join("::"),
                Callee::Method { recv, name } => {
                    let r = match recv {
                        Recv::Name(n) => n.clone(),
                        Recv::SelfField(f) => format!("self.{f}"),
                        Recv::Slf => "self".to_string(),
                        Recv::Expr => "<expr>".to_string(),
                    };
                    format!("{r}.{name}")
                }
                Callee::Mac(m) => format!("{m}!"),
            };
            let resolved = match &edge.resolution {
                Resolution::Workspace(ids) => {
                    let mut names: Vec<String> = ids.iter().map(|&t| fn_path(ws, t)).collect();
                    names.sort();
                    format!("workspace({})", names.join(" | "))
                }
                Resolution::External => "external".to_string(),
                Resolution::Unknown => "unknown".to_string(),
            };
            writeln!(out, "  call L{} {callee} -> {resolved}", call.line).unwrap();
        }
    }
    out
}

#[test]
fn parser_and_resolver_match_golden() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let fixture = dir.join("tests").join("fixtures").join("v2");
    let files = collect_files(&fixture).expect("walk v2 fixture");
    assert!(!files.is_empty(), "v2 fixture tree is missing");
    let parsed: Vec<_> = files
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).expect("read fixture file");
            let rel = p
                .strip_prefix(&fixture)
                .unwrap()
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            parse_file(&rel, &lexer::lex(&src))
        })
        .collect();
    let ws = Workspace::build(parsed);
    let got = render(&ws);

    let golden_path = dir.join("tests").join("golden").join("v2_workspace.txt");
    if std::env::var("BENCHTEMP_BLESS").is_ok() {
        std::fs::write(&golden_path, &got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .expect("golden file missing — run once with BENCHTEMP_BLESS=1 to create it");
    if got != want {
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "parser/resolver drift vs golden at line {} (BENCHTEMP_BLESS=1 rewrites after an intentional change)",
                i + 1
            );
        }
        panic!(
            "golden length mismatch: got {} lines, want {} (BENCHTEMP_BLESS=1 rewrites)",
            got.lines().count(),
            want.lines().count()
        );
    }
}
