//! Seeded bug: a zero-alloc-pinned sampler that quietly allocates one
//! helper away — the counting-allocator test only exercises one warm
//! shape, so only reachability analysis sees every path.

pub struct NeighborFinder {
    history: Vec<u32>,
}

impl NeighborFinder {
    /// Pinned zero-alloc by the counting-allocator tests (by name).
    pub fn sample_into(&self, out: &mut [u32]) {
        let picked = self.pick_recent(out.len());
        out.copy_from_slice(&picked);
        let _warmed = self.warm();
    }

    /// The hidden allocation: `.to_vec()` on every call.
    fn pick_recent(&self, n: usize) -> Vec<u32> {
        self.history[..n].to_vec()
    }

    /// A second reachable allocation, waived — proving line waivers
    /// apply to the interprocedural rules exactly as to the token ones.
    fn warm(&self) -> Vec<u32> {
        // audit-allow(hot-path-alloc-reachability): fixture self-test — cold warm-up path
        self.history.to_vec()
    }
}
