//! Seeded bug: the variable is documented in the fixture registry, so
//! the v1 `env-read-registry` rule is satisfied — only the taint rule
//! notices the read sits on a hot path.

/// Reads the environment on every call.
pub fn fixture_knob() -> bool {
    std::env::var("BENCHTEMP_FIXTURE_KNOB").is_ok()
}
