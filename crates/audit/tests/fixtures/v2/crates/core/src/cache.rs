//! The alias that hides a HashMap from per-file analysis.

use std::collections::HashMap;

/// Scores keyed by candidate id — a hash map behind an innocent name.
pub type ScoreCache = HashMap<u64, f64>;
