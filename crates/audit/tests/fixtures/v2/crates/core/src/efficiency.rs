//! Seeded bug: this file is on v1's wallclock sanction list, so the
//! token rule never looks at it — but the helper below is called from a
//! hot entry one crate away, which the taint rule must catch.

use std::time::Instant;

/// Looks like an innocent metrics helper; actually reads the wall clock.
pub fn stamp_now() -> u64 {
    let _t = Instant::now();
    0
}
