//! Seeded bug: iterates the aliased map inside a ranking hot entry —
//! only resolvable with the cross-crate alias index. The per-file rule
//! tracks names declared as `HashMap`; `ScoreCache` is not one of those.

use benchtemp_core::cache::ScoreCache;

/// Hot entry (ranking): sums scores in RandomState order.
pub fn score_candidates(cache: &ScoreCache) -> f64 {
    let mut acc = 0.0;
    for v in cache.values() {
        acc += v;
    }
    acc
}
