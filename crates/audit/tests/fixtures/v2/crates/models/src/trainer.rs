//! A training hot entry whose helpers hide the seeded taints one call
//! away, in a different crate.

/// Hot entry by name; both callees land on the taint list.
pub fn train_batch() -> u64 {
    if benchtemp_core::knobs::fixture_knob() {
        return 0;
    }
    benchtemp_core::efficiency::stamp_now()
}
