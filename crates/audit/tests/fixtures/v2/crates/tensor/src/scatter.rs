//! Seeded bug: a claimed-scope task that writes through a fn-level
//! capture instead of a binding carved out of the claim partition —
//! every task would hit the same buffer, the exact overlap the claims
//! protocol exists to rule out.

use crate::pool;

/// Claims slots, then ignores the partition and scatters into the
/// captured `dst` wholesale.
pub fn broken_scatter(dst: &mut [f32], src: &[f32]) {
    let claims = [(0usize, 0..src.len())];
    let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
    tasks.push(Box::new(|| {
        for (i, s) in src.iter().enumerate() {
            dst[i] = *s;
        }
    }));
    pool::scope_run_claimed("fixture_scatter", &claims, tasks);
}
