//! Seeded model-crate violation for the audit negative self-test: the
//! unfused affine chain `no-unfused-affine-chain` exists to catch, plus a
//! correctly waived instance. This file is lexed by the driver but never
//! compiled.

fn unfused_chain(g: &mut Tape, x: Var, w: Var, b: Var) -> Var {
    let h = g.matmul(x, w);
    // VIOLATION no-unfused-affine-chain (use Tape::linear_affine):
    let a = g.add_row_broadcast(h, b);
    g.relu(a)
}

fn waived_chain(g: &mut Tape, x: Var, w: Var, b: Var) -> Var {
    let h = g.matmul(x, w);
    // audit-allow(no-unfused-affine-chain): seeded *waived* chain for the self-test
    g.add_row_broadcast(h, b)
}

fn per_head_chain(g: &mut Tape, q: Var, k: Var, v: Var, mask: &[bool]) -> Var {
    let qh = g.slice_cols(q, 0, 4);
    let kh = g.slice_cols(k, 0, 4);
    let vh = g.slice_cols(v, 0, 4);
    // VIOLATION no-per-head-slice-attention (use Tape::multi_head_grouped_attention):
    g.grouped_attention(qh, kh, vh, 3, mask)
}

fn waived_per_head_chain(g: &mut Tape, q: Var, k: Var, v: Var, mask: &[bool]) -> Var {
    let qh = g.slice_cols(q, 0, 4);
    // audit-allow(no-per-head-slice-attention): seeded *waived* chain for the self-test
    g.grouped_attention(qh, k, v, 3, mask)
}

fn scalar_gather(m: &Matrix, ids: &[usize]) -> Matrix {
    // VIOLATION no-scalar-gather-in-hot-path (use Tape::gather_rows_from):
    m.gather_rows(ids)
}

fn waived_scalar_gather(m: &Matrix, ids: &[usize]) -> Matrix {
    // audit-allow(no-scalar-gather-in-hot-path): seeded *waived* gather for the self-test
    m.gather_rows(ids)
}
