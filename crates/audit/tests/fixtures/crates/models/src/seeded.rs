//! Seeded model-crate violation for the audit negative self-test: the
//! unfused affine chain `no-unfused-affine-chain` exists to catch, plus a
//! correctly waived instance. This file is lexed by the driver but never
//! compiled.

fn unfused_chain(g: &mut Tape, x: Var, w: Var, b: Var) -> Var {
    let h = g.matmul(x, w);
    // VIOLATION no-unfused-affine-chain (use Tape::linear_affine):
    let a = g.add_row_broadcast(h, b);
    g.relu(a)
}

fn waived_chain(g: &mut Tape, x: Var, w: Var, b: Var) -> Var {
    let h = g.matmul(x, w);
    // audit-allow(no-unfused-affine-chain): seeded *waived* chain for the self-test
    g.add_row_broadcast(h, b)
}
