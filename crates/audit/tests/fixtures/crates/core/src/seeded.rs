//! Seeded violations for the audit negative self-test. One per rule, plus
//! one correctly waived hit and one malformed waiver. This file is lexed by
//! the driver but never compiled.

use std::collections::HashMap;
use std::time::Instant;

fn hash_iteration_hits() -> usize {
    let mut counts: HashMap<usize, f64> = HashMap::new();
    counts.insert(1, 2.0);
    let mut total = 0;
    // VIOLATION no-hashmap-iteration-in-numeric-path (for-loop form):
    for (k, _v) in &counts {
        total += k;
    }
    // VIOLATION no-hashmap-iteration-in-numeric-path (method form):
    total += counts.keys().count();
    total
}

fn wallclock_hits() {
    // VIOLATION no-wallclock-outside-obs:
    let _t = Instant::now();
    // audit-allow(no-wallclock-outside-obs): seeded *waived* hit for the self-test
    let _u = Instant::now();
}

fn thread_spawn_hit() {
    // VIOLATION no-raw-thread-spawn:
    std::thread::spawn(|| {});
}

fn missing_safety_comment() -> u8 {
    // VIOLATION safety-comment-required (comment lacks the magic word):
    unsafe { *[1u8, 2].as_ptr() }
}

fn env_hits() {
    // This one is registered in the fixture README: clean.
    let _ = std::env::var("BENCHTEMP_DOCUMENTED");
    // VIOLATION env-read-registry (BENCHTEMP_* but not documented):
    let _ = std::env::var("BENCHTEMP_UNDOCUMENTED");
    // VIOLATION env-read-registry (non-BENCHTEMP variable):
    let _ = std::env::var("HOME");
}

fn malformed_waiver() {
    // VIOLATION waiver-syntax (reason is mandatory):
    // audit-allow(no-raw-thread-spawn):
    std::thread::spawn(|| {});
}
