//! The audit's own gate, in both directions.
//!
//! Positive: the real workspace must audit clean — zero unwaivered
//! violations, every waiver used, and the `safety-comment-required` rule
//! satisfied with *no* waivers at all. Negative: the seeded fixture tree
//! must fire every rule, proving none of the checks is vacuous.

use std::path::PathBuf;

use benchtemp_audit::rules;
use benchtemp_audit::run_audit;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_audits_clean() {
    let root = manifest_dir().join("..").join("..");
    let report = run_audit(&root).expect("walk workspace");
    assert!(
        report.files_scanned > 30,
        "suspiciously small workspace walk"
    );
    assert!(
        report.registry_found,
        "README.md env registry table missing"
    );

    let unwaivered: Vec<String> = report
        .unwaivered()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        unwaivered.is_empty(),
        "unwaivered violations:\n{}",
        unwaivered.join("\n")
    );

    // Satellite contract: every `unsafe` in the workspace carries a real
    // SAFETY comment — none is merely waived.
    assert!(
        !report
            .waivers
            .iter()
            .any(|w| w.rule == rules::RULE_SAFETY_COMMENT),
        "safety-comment-required must pass without waivers"
    );
    // Waivers that cover nothing are stale documentation; keep them at zero.
    let unused: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{} [{}]", w.file, w.line, w.rule))
        .collect();
    assert!(unused.is_empty(), "unused waivers:\n{}", unused.join("\n"));

    assert!(report.protocol.verify().is_ok());
    assert!(report.ok());
}

#[test]
fn seeded_fixture_fires_every_rule() {
    let root = manifest_dir().join("tests").join("fixtures");
    let report = run_audit(&root).expect("walk fixture tree");
    assert_eq!(report.files_scanned, 2);
    assert!(!report.ok(), "the seeded fixture must fail the audit");

    let unwaivered_of = |rule: &str| report.unwaivered().filter(|v| v.rule == rule).count();
    assert_eq!(
        unwaivered_of(rules::RULE_HASH_ITER),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_WALLCLOCK),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_THREAD_SPAWN),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_SAFETY_COMMENT),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_ENV_REGISTRY),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_UNFUSED_AFFINE),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_PER_HEAD_ATTENTION),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_SCALAR_GATHER),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_WAIVER_SYNTAX),
        1,
        "{:?}",
        dump(&report)
    );

    // Exactly four hits are waived (one wallclock, one affine chain, one
    // per-head attention chain, one scalar gather), with their reasons
    // carried into the report.
    let waived: Vec<_> = report.violations.iter().filter(|v| v.waived).collect();
    assert_eq!(waived.len(), 4, "{:?}", dump(&report));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_WALLCLOCK));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_UNFUSED_AFFINE));
    assert!(waived
        .iter()
        .any(|v| v.rule == rules::RULE_PER_HEAD_ATTENTION));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_SCALAR_GATHER));
    assert!(waived
        .iter()
        .all(|v| v.waive_reason.as_deref().unwrap().contains("self-test")));
    assert!(report.waivers.iter().any(|w| w.used));

    // The registered fixture variable is accepted; only the undocumented
    // and foreign reads are flagged.
    assert!(report.registry.contains("BENCHTEMP_DOCUMENTED"));
    assert!(!report
        .violations
        .iter()
        .any(|v| v.message.contains("BENCHTEMP_DOCUMENTED")));
}

fn dump(report: &benchtemp_audit::AuditReport) -> Vec<String> {
    report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{}:{} [{}] waived={} {}",
                v.file, v.line, v.rule, v.waived, v.message
            )
        })
        .collect()
}
