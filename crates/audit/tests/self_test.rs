//! The audit's own gate, in both directions.
//!
//! Positive: the real workspace must audit clean — zero unwaivered
//! violations, every waiver used, and the `safety-comment-required` rule
//! satisfied with *no* waivers at all. Negative: the seeded fixture tree
//! must fire every rule, proving none of the checks is vacuous.

use std::path::PathBuf;

use benchtemp_audit::rules;
use benchtemp_audit::run_audit;

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_audits_clean() {
    let root = manifest_dir().join("..").join("..");
    let report = run_audit(&root).expect("walk workspace");
    assert!(
        report.files_scanned > 30,
        "suspiciously small workspace walk"
    );
    assert!(
        report.registry_found,
        "README.md env registry table missing"
    );

    let unwaivered: Vec<String> = report
        .unwaivered()
        .map(|v| format!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        unwaivered.is_empty(),
        "unwaivered violations:\n{}",
        unwaivered.join("\n")
    );

    // Satellite contract: every `unsafe` in the workspace carries a real
    // SAFETY comment — none is merely waived.
    assert!(
        !report
            .waivers
            .iter()
            .any(|w| w.rule == rules::RULE_SAFETY_COMMENT),
        "safety-comment-required must pass without waivers"
    );
    // Waivers that cover nothing are stale documentation; keep them at zero.
    let unused: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{} [{}]", w.file, w.line, w.rule))
        .collect();
    assert!(unused.is_empty(), "unused waivers:\n{}", unused.join("\n"));

    assert!(report.protocol.verify().is_ok());
    assert!(report.ok());
}

#[test]
fn seeded_fixture_fires_every_rule() {
    let root = manifest_dir().join("tests").join("fixtures");
    let report = run_audit(&root).expect("walk fixture tree");
    assert_eq!(report.files_scanned, 2);
    assert!(!report.ok(), "the seeded fixture must fail the audit");

    let unwaivered_of = |rule: &str| report.unwaivered().filter(|v| v.rule == rule).count();
    assert_eq!(
        unwaivered_of(rules::RULE_HASH_ITER),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_WALLCLOCK),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_THREAD_SPAWN),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_SAFETY_COMMENT),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_ENV_REGISTRY),
        2,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_UNFUSED_AFFINE),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_PER_HEAD_ATTENTION),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_SCALAR_GATHER),
        1,
        "{:?}",
        dump(&report)
    );
    assert_eq!(
        unwaivered_of(rules::RULE_WAIVER_SYNTAX),
        1,
        "{:?}",
        dump(&report)
    );

    // Exactly four hits are waived (one wallclock, one affine chain, one
    // per-head attention chain, one scalar gather), with their reasons
    // carried into the report.
    let waived: Vec<_> = report.violations.iter().filter(|v| v.waived).collect();
    assert_eq!(waived.len(), 4, "{:?}", dump(&report));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_WALLCLOCK));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_UNFUSED_AFFINE));
    assert!(waived
        .iter()
        .any(|v| v.rule == rules::RULE_PER_HEAD_ATTENTION));
    assert!(waived.iter().any(|v| v.rule == rules::RULE_SCALAR_GATHER));
    assert!(waived
        .iter()
        .all(|v| v.waive_reason.as_deref().unwrap().contains("self-test")));
    assert!(report.waivers.iter().any(|w| w.used));

    // The registered fixture variable is accepted; only the undocumented
    // and foreign reads are flagged.
    assert!(report.registry.contains("BENCHTEMP_DOCUMENTED"));
    assert!(!report
        .violations
        .iter()
        .any(|v| v.message.contains("BENCHTEMP_DOCUMENTED")));
}

#[test]
fn v2_fixture_catches_cross_file_bugs_v1_misses() {
    let root = manifest_dir().join("tests").join("fixtures").join("v2");
    let report = run_audit(&root).expect("walk v2 fixture tree");
    assert_eq!(report.files_scanned, 7);
    assert!(!report.ok(), "the v2 fixture must fail the audit");

    // Every v1 token rule is silent on this tree: the wallclock read sits
    // in a v1-sanctioned file, the env read is registry-documented, and
    // the HashMap hides behind a cross-crate alias. The seeded bugs are
    // visible only interprocedurally.
    for rule in [
        rules::RULE_HASH_ITER,
        rules::RULE_WALLCLOCK,
        rules::RULE_THREAD_SPAWN,
        rules::RULE_SAFETY_COMMENT,
        rules::RULE_ENV_REGISTRY,
        rules::RULE_UNFUSED_AFFINE,
        rules::RULE_PER_HEAD_ATTENTION,
        rules::RULE_SCALAR_GATHER,
        rules::RULE_WAIVER_SYNTAX,
    ] {
        assert_eq!(
            report.violations.iter().filter(|v| v.rule == rule).count(),
            0,
            "v1 rule `{rule}` must miss the seeded cross-file bugs: {:?}",
            dump(&report)
        );
    }

    // Taint: the hidden wallclock, the documented env read, and the
    // aliased hash iteration — each with a full call path.
    let taint: Vec<_> = report
        .unwaivered()
        .filter(|v| v.rule == rules::RULE_DETERMINISM_TAINT)
        .collect();
    assert_eq!(taint.len(), 3, "{:?}", dump(&report));
    let wallclock = taint
        .iter()
        .find(|v| v.file.ends_with("efficiency.rs"))
        .expect("hidden wallclock read must be convicted");
    assert_eq!(
        wallclock.trace,
        [
            "benchtemp_models::trainer::train_batch",
            "benchtemp_core::efficiency::stamp_now"
        ]
    );
    assert!(taint
        .iter()
        .any(|v| v.file.ends_with("knobs.rs") && v.message.contains("BENCHTEMP_FIXTURE_KNOB")));
    assert!(taint
        .iter()
        .any(|v| v.file.ends_with("scorer.rs") && v.message.contains("HashMap")));

    // Alloc reachability: the hidden `.to_vec()` is flagged; the second
    // one carries a line waiver that applies to the new rule.
    let alloc: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == rules::RULE_ALLOC_REACH)
        .collect();
    assert_eq!(alloc.len(), 2, "{:?}", dump(&report));
    assert_eq!(alloc.iter().filter(|v| !v.waived).count(), 1);
    assert!(alloc
        .iter()
        .all(|v| v.trace.first().is_some_and(|t| t.ends_with("sample_into"))));

    // Claims protocol: the fn-level capture write is convicted.
    let claims: Vec<_> = report
        .unwaivered()
        .filter(|v| v.rule == rules::RULE_CLAIMED_WRITE)
        .collect();
    assert_eq!(claims.len(), 1, "{:?}", dump(&report));
    assert!(claims[0].file.ends_with("scatter.rs"));

    // Call-graph stats cover the whole fixture tree.
    assert_eq!(report.graph.files_parsed, 7);
    assert!(report.graph.functions >= 8, "{:?}", report.graph);
    assert!(report.graph.resolved_ratio() > 0.5, "{:?}", report.graph);
}

fn dump(report: &benchtemp_audit::AuditReport) -> Vec<String> {
    report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{}:{} [{}] waived={} {}",
                v.file, v.line, v.rule, v.waived, v.message
            )
        })
        .collect()
}
