//! WAL crash recovery: truncating the log anywhere must replay exactly
//! the longest valid record prefix — never a torn record, never a panic.

use std::path::PathBuf;

use benchtemp_store::wal::{Wal, WAL_RECORD_BYTES};
use benchtemp_store::StoreEvent;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("benchtemp-walrec-{}-{}", name, std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_events(n: usize) -> Vec<StoreEvent> {
    (0..n as u32)
        .map(|i| StoreEvent {
            src: i,
            dst: i + 1,
            t: 10.5 * i as f64,
            feat: 3 * i,
        })
        .collect()
}

fn write_log(path: &std::path::Path, events: &[StoreEvent]) {
    let mut wal = Wal::open_append(path).unwrap();
    wal.append_batch(events).unwrap();
    wal.sync().unwrap();
}

/// Truncate the log at *every record boundary* and assert the replay is
/// exactly the surviving prefix (prefix-consistency).
#[test]
fn truncation_at_every_record_boundary_replays_prefix() {
    let dir = tmpdir("boundary");
    let path = dir.join("wal.log");
    let events = sample_events(17);
    for keep in (0..=events.len()).rev() {
        write_log(&path, &events);
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len((keep * WAL_RECORD_BYTES) as u64).unwrap();
        drop(file);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.events.len(), keep, "keep={keep}");
        assert_eq!(&replay.events[..], &events[..keep], "keep={keep}");
        assert_eq!(replay.valid_bytes, (keep * WAL_RECORD_BYTES) as u64);
        assert!(!replay.truncated_tail, "a clean boundary cut has no tail");
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Mid-record truncation (a torn append) discards only the torn tail.
#[test]
fn mid_record_truncation_discards_torn_tail() {
    let dir = tmpdir("torn");
    let path = dir.join("wal.log");
    let events = sample_events(5);
    for torn_bytes in 1..WAL_RECORD_BYTES {
        write_log(&path, &events);
        let keep_bytes = 3 * WAL_RECORD_BYTES + torn_bytes;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep_bytes as u64).unwrap();
        drop(file);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(&replay.events[..], &events[..3], "torn_bytes={torn_bytes}");
        assert!(replay.truncated_tail, "torn tail must be reported");
        std::fs::remove_file(&path).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted byte anywhere in a record invalidates that record and
/// everything after it (replay never resynchronises past corruption).
#[test]
fn corruption_stops_replay_at_prefix() {
    let dir = tmpdir("corrupt");
    let path = dir.join("wal.log");
    let events = sample_events(9);
    write_log(&path, &events);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4 * WAL_RECORD_BYTES + 2] ^= 0x10; // flip a bit inside record 4
    std::fs::write(&path, &bytes).unwrap();
    let replay = Wal::replay(&path).unwrap();
    assert_eq!(&replay.events[..], &events[..4]);
    assert!(replay.truncated_tail);
    std::fs::remove_dir_all(&dir).ok();
}

/// A missing log replays as empty — a store that never ingested.
#[test]
fn missing_log_is_empty() {
    let dir = tmpdir("missing");
    let replay = Wal::replay(&dir.join("absent.log")).unwrap();
    assert!(replay.events.is_empty());
    assert!(!replay.truncated_tail);
    std::fs::remove_dir_all(&dir).ok();
}
