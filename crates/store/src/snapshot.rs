//! Binary manifest: the store's durable root of trust.
//!
//! The manifest records everything needed to reopen a store against its
//! page file — entity counts, per-column page tables, the pager's free
//! list, and an opaque caller blob (training-resume state). Encoding is
//! little-endian u64 fields with a trailing FNV-1a checksum; decode
//! rejects bad magic, short buffers, and checksum mismatches with
//! `InvalidData`, so a torn manifest write is detected rather than
//! silently misread. Snapshots are manifests under a tag: `snapshot`
//! flushes the cache and writes `snap_<tag>.bin`, `restore` opens the
//! store from that manifest and hands the blob back.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::pager::PageId;

const MAGIC: &[u8; 8] = b"BTMANIF1";

/// Number of column page tables, in fixed order:
/// offsets, neighbor, ts, event_idx, event_feat, events, edge_features.
pub const NUM_COLUMNS: usize = 7;

pub const COL_OFF: usize = 0;
pub const COL_NBR: usize = 1;
pub const COL_TS: usize = 2;
pub const COL_EVI: usize = 3;
pub const COL_FEAT: usize = 4;
pub const COL_EVT: usize = 5;
pub const COL_EFEAT: usize = 6;

/// Durable description of one store generation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    pub num_nodes: u64,
    pub num_events: u64,
    /// Adjacency entries (2 × events: both directions indexed).
    pub num_entries: u64,
    pub feat_rows: u64,
    pub feat_cols: u64,
    pub num_pages: u64,
    pub free: Vec<PageId>,
    pub col_pages: Vec<Vec<PageId>>,
    pub user_blob: String,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> io::Result<u64> {
        let end = self.off + 8;
        if end > self.bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "manifest truncated",
            ));
        }
        let v = u64::from_le_bytes(self.bytes[self.off..end].try_into().unwrap());
        self.off = end;
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.off + n;
        if end > self.bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "manifest truncated",
            ));
        }
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }
}

impl Manifest {
    pub fn new() -> Self {
        Manifest {
            col_pages: vec![Vec::new(); NUM_COLUMNS],
            ..Default::default()
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        assert_eq!(self.col_pages.len(), NUM_COLUMNS);
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        for v in [
            self.num_nodes,
            self.num_events,
            self.num_entries,
            self.feat_rows,
            self.feat_cols,
            self.num_pages,
        ] {
            push_u64(&mut out, v);
        }
        push_u64(&mut out, self.free.len() as u64);
        for &p in &self.free {
            push_u64(&mut out, p);
        }
        for col in &self.col_pages {
            push_u64(&mut out, col.len() as u64);
            for &p in col {
                push_u64(&mut out, p);
            }
        }
        push_u64(&mut out, self.user_blob.len() as u64);
        out.extend_from_slice(self.user_blob.as_bytes());
        let check = fnv1a(&out);
        push_u64(&mut out, check);
        out
    }

    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad manifest magic",
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "manifest checksum mismatch",
            ));
        }
        let mut r = Reader {
            bytes: body,
            off: MAGIC.len(),
        };
        let num_nodes = r.u64()?;
        let num_events = r.u64()?;
        let num_entries = r.u64()?;
        let feat_rows = r.u64()?;
        let feat_cols = r.u64()?;
        let num_pages = r.u64()?;
        let n_free = r.u64()? as usize;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(r.u64()?);
        }
        let mut col_pages = Vec::with_capacity(NUM_COLUMNS);
        for _ in 0..NUM_COLUMNS {
            let n = r.u64()? as usize;
            let mut pages = Vec::with_capacity(n);
            for _ in 0..n {
                pages.push(r.u64()?);
            }
            col_pages.push(pages);
        }
        let blob_len = r.u64()? as usize;
        let user_blob = String::from_utf8(r.bytes(blob_len)?.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "manifest blob not utf-8"))?;
        Ok(Manifest {
            num_nodes,
            num_events,
            num_entries,
            feat_rows,
            feat_cols,
            num_pages,
            free,
            col_pages,
            user_blob,
        })
    }

    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        // Write-then-rename so a crash mid-write leaves the old manifest.
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)
    }

    pub fn read_from(path: &Path) -> io::Result<Self> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new();
        m.num_nodes = 10;
        m.num_events = 7;
        m.num_entries = 14;
        m.feat_rows = 7;
        m.feat_cols = 4;
        m.num_pages = 9;
        m.free = vec![3, 5];
        m.col_pages[COL_NBR] = vec![0, 1];
        m.col_pages[COL_TS] = vec![2, 4];
        m.user_blob = "epoch=3".to_string();
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(
            Manifest::decode(&bytes).is_err(),
            "checksum must catch flip"
        );
        let short = &sample().encode()[..10];
        assert!(Manifest::decode(short).is_err());
    }
}
