//! External-sort bulk load: events → sorted runs → k-way merge → CSR
//! segments and SoA columns written straight to pages.
//!
//! The loader never holds more than one run of events in memory (plus the
//! resident index: offsets and per-event feature rows). Input is chunked
//! into runs of `run_events`, each stably sorted by timestamp
//! (`f64::total_cmp`) and spilled to disk; a k-way merge (one heap entry
//! per run, ties broken by run index so the merge is exactly the stable
//! sort of the concatenated input) streams the sorted order to a temp
//! file, which is then scanned twice — once to count degrees, once to
//! fill the CSR columns through the write-back page cache. Because the
//! sort is stable, an already-time-sorted input (every benchtemp
//! generator and dataset) keeps its order, so paged event indices equal
//! the resident `NeighborFinder`'s — a load-bearing half of the paged
//! backend's bit-identity argument.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use benchtemp_obs::counters::STORE_BULK_EVENTS;

use crate::cache::CachedPager;
use crate::snapshot::{Manifest, COL_EFEAT, COL_EVI, COL_EVT, COL_FEAT, COL_NBR, COL_OFF, COL_TS};
use crate::{Column, StoreEvent, EVT_RECORD_BYTES};

/// Serialize one event as the 20-byte run/merge record (no checksum — the
/// temp files live and die inside one bulk load).
pub(crate) fn encode_ev20(ev: &StoreEvent) -> [u8; EVT_RECORD_BYTES] {
    let mut rec = [0u8; EVT_RECORD_BYTES];
    rec[0..4].copy_from_slice(&ev.src.to_le_bytes());
    rec[4..8].copy_from_slice(&ev.dst.to_le_bytes());
    rec[8..12].copy_from_slice(&ev.feat.to_le_bytes());
    rec[12..20].copy_from_slice(&ev.t.to_bits().to_le_bytes());
    rec
}

pub(crate) fn decode_ev20(rec: &[u8; EVT_RECORD_BYTES]) -> StoreEvent {
    StoreEvent {
        src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
        dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        feat: u32::from_le_bytes(rec[8..12].try_into().unwrap()),
        t: f64::from_bits(u64::from_le_bytes(rec[12..20].try_into().unwrap())),
    }
}

fn read_ev20(r: &mut impl Read) -> io::Result<Option<StoreEvent>> {
    let mut rec = [0u8; EVT_RECORD_BYTES];
    let mut done = 0usize;
    while done < EVT_RECORD_BYTES {
        let n = r.read(&mut rec[done..])?;
        if n == 0 {
            if done == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "torn bulk-load temp record",
            ));
        }
        done += n;
    }
    Ok(Some(decode_ev20(&rec)))
}

/// Merge-heap entry: min by (t, run); only one entry per run is live at a
/// time, so within-run order is preserved and the pop order is the stable
/// sort of the concatenated runs.
struct MergeItem {
    ev: StoreEvent,
    run: usize,
}

impl PartialEq for MergeItem {
    fn eq(&self, other: &Self) -> bool {
        self.ev.t.total_cmp(&other.ev.t) == Ordering::Equal && self.run == other.run
    }
}
impl Eq for MergeItem {}
impl PartialOrd for MergeItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MergeItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest (t, run).
        other
            .ev
            .t
            .total_cmp(&self.ev.t)
            .then_with(|| other.run.cmp(&self.run))
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Spill sorted runs, k-way merge them into `sorted.tmp`, and return the
/// merged path plus the event count.
fn sort_externally(
    dir: &Path,
    events: impl Iterator<Item = io::Result<StoreEvent>>,
    run_events: usize,
) -> io::Result<(PathBuf, u64)> {
    let run_events = run_events.max(1);
    let mut run_paths: Vec<PathBuf> = Vec::new();
    let mut run: Vec<StoreEvent> = Vec::with_capacity(run_events);
    let spill = |run: &mut Vec<StoreEvent>, run_paths: &mut Vec<PathBuf>| -> io::Result<()> {
        if run.is_empty() {
            return Ok(());
        }
        run.sort_by(|a, b| a.t.total_cmp(&b.t)); // stable
        let path = dir.join(format!("bulk_run_{}.tmp", run_paths.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for ev in run.iter() {
            w.write_all(&encode_ev20(ev))?;
        }
        w.flush()?;
        run_paths.push(path);
        run.clear();
        Ok(())
    };
    for ev in events {
        run.push(ev?);
        if run.len() == run_events {
            spill(&mut run, &mut run_paths)?;
        }
    }
    spill(&mut run, &mut run_paths)?;

    let sorted_path = dir.join("bulk_sorted.tmp");
    let mut out = BufWriter::new(File::create(&sorted_path)?);
    let mut readers: Vec<BufReader<File>> = run_paths
        .iter()
        .map(|p| File::open(p).map(BufReader::new))
        .collect::<io::Result<_>>()?;
    let mut heap = BinaryHeap::with_capacity(readers.len());
    for (run, r) in readers.iter_mut().enumerate() {
        if let Some(ev) = read_ev20(r)? {
            heap.push(MergeItem { ev, run });
        }
    }
    let mut count = 0u64;
    while let Some(MergeItem { ev, run }) = heap.pop() {
        out.write_all(&encode_ev20(&ev))?;
        count += 1;
        if let Some(next) = read_ev20(&mut readers[run])? {
            heap.push(MergeItem { ev: next, run });
        }
    }
    out.flush()?;
    for p in &run_paths {
        std::fs::remove_file(p).ok();
    }
    Ok((sorted_path, count))
}

/// Build all store columns inside `cp` from an event stream. Returns the
/// manifest (page tables + allocation state) and the resident index
/// (offsets, per-event feature rows).
pub(crate) fn build(
    dir: &Path,
    cp: &CachedPager,
    num_nodes: usize,
    events: impl Iterator<Item = io::Result<StoreEvent>>,
    edge_features: Option<(usize, usize, &[f32])>,
    run_events: usize,
) -> io::Result<(Manifest, Vec<u64>, Vec<u32>)> {
    let _span = benchtemp_obs::span("store.bulk_load");
    let (sorted_path, num_events) = sort_externally(dir, events, run_events)?;
    let num_entries = num_events * 2;

    // Pass A: degree counts → offsets (the resident index).
    let mut degree = vec![0u64; num_nodes];
    {
        let mut r = BufReader::new(File::open(&sorted_path)?);
        while let Some(ev) = read_ev20(&mut r)? {
            let (s, d) = (ev.src as usize, ev.dst as usize);
            if s >= num_nodes || d >= num_nodes {
                return Err(invalid(format!(
                    "event endpoint out of range: {s}/{d} >= {num_nodes}"
                )));
            }
            degree[s] += 1;
            degree[d] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(num_nodes + 1);
    let mut acc = 0u64;
    offsets.push(0);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    drop(degree);

    // Allocate every column up front.
    let col_off = Column::with_len(cp, (num_nodes as u64 + 1) * 8);
    let col_nbr = Column::with_len(cp, num_entries * 4);
    let col_ts = Column::with_len(cp, num_entries * 8);
    let col_evi = Column::with_len(cp, num_entries * 4);
    let col_feat = Column::with_len(cp, num_events * 4);
    let col_evt = Column::with_len(cp, num_events * EVT_RECORD_BYTES as u64);
    let (feat_rows, feat_cols) = edge_features.map_or((0, 0), |(r, c, _)| (r, c));
    let col_efeat = Column::with_len(cp, (feat_rows as u64) * (feat_cols as u64) * 4);

    // Offsets column, written in page-sized strides.
    {
        let mut buf = Vec::with_capacity(1024 * 8);
        let mut byte_off = 0u64;
        for chunk in offsets.chunks(1024) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            col_off.write_bytes(cp, byte_off, &buf)?;
            byte_off += buf.len() as u64;
        }
    }

    // Pass B: fill the CSR SoA columns at per-node cursors and the event
    // columns sequentially. Random node order means random page writes;
    // the write-back cache absorbs them inside the byte budget.
    let mut event_feat = vec![0u32; num_events as usize];
    {
        let mut cursor: Vec<u64> = offsets[..num_nodes].to_vec();
        let mut r = BufReader::new(File::open(&sorted_path)?);
        let mut idx = 0u64;
        while let Some(ev) = read_ev20(&mut r)? {
            col_evt.write_bytes(cp, idx * EVT_RECORD_BYTES as u64, &encode_ev20(&ev))?;
            event_feat[idx as usize] = ev.feat;
            for (node, other) in [(ev.src, ev.dst), (ev.dst, ev.src)] {
                let c = cursor[node as usize];
                cursor[node as usize] += 1;
                col_nbr.write_bytes(cp, c * 4, &other.to_le_bytes())?;
                col_ts.write_bytes(cp, c * 8, &ev.t.to_bits().to_le_bytes())?;
                col_evi.write_bytes(cp, c * 4, &(idx as u32).to_le_bytes())?;
            }
            idx += 1;
        }
        debug_assert_eq!(idx, num_events);
    }

    // Per-event feature-row column (bulk, from the resident copy).
    {
        let mut buf = Vec::with_capacity(2048 * 4);
        let mut byte_off = 0u64;
        for chunk in event_feat.chunks(2048) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            col_feat.write_bytes(cp, byte_off, &buf)?;
            byte_off += buf.len() as u64;
        }
    }

    // Edge-feature matrix (row-major f32), paged.
    if let Some((_, _, data)) = edge_features {
        debug_assert_eq!(data.len(), feat_rows * feat_cols);
        let mut buf = Vec::with_capacity(2048 * 4);
        let mut byte_off = 0u64;
        for chunk in data.chunks(2048) {
            buf.clear();
            for &v in chunk {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            col_efeat.write_bytes(cp, byte_off, &buf)?;
            byte_off += buf.len() as u64;
        }
    }

    std::fs::remove_file(&sorted_path).ok();
    STORE_BULK_EVENTS.add(num_events);

    let mut manifest = Manifest::new();
    manifest.num_nodes = num_nodes as u64;
    manifest.num_events = num_events;
    manifest.num_entries = num_entries;
    manifest.feat_rows = feat_rows as u64;
    manifest.feat_cols = feat_cols as u64;
    manifest.col_pages[COL_OFF] = col_off.pages;
    manifest.col_pages[COL_NBR] = col_nbr.pages;
    manifest.col_pages[COL_TS] = col_ts.pages;
    manifest.col_pages[COL_EVI] = col_evi.pages;
    manifest.col_pages[COL_FEAT] = col_feat.pages;
    manifest.col_pages[COL_EVT] = col_evt.pages;
    manifest.col_pages[COL_EFEAT] = col_efeat.pages;
    manifest.num_pages = cp.num_pages();
    manifest.free = cp.free_list();
    Ok((manifest, offsets, event_feat))
}
