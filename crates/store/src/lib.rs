//! `benchtemp-store`: out-of-core paged temporal graph storage.
//!
//! The store keeps the *payload* of a temporal graph — the CSR adjacency
//! SoA columns (neighbor, timestamp, event index), the sorted event
//! records, and the edge-feature matrix — on fixed-size disk pages behind
//! a CLOCK cache with a byte budget ([`crate::cache`]), while the *index*
//! (per-node CSR offsets and the per-event feature-row map) stays
//! resident: ~12 bytes per node plus 4 bytes per event, orders of
//! magnitude below the 20 bytes per adjacency entry plus features that
//! page out. Streaming ingest lands in a write-ahead log
//! ([`crate::wal`]); [`TemporalStore::seal`] folds the log into pages via
//! the external-sort bulk loader ([`crate::bulkload`]); snapshot/restore
//! round-trips the manifest plus an opaque resume blob
//! ([`crate::snapshot`]).
//!
//! Layout inside a store directory:
//!
//! | file | contents |
//! |---|---|
//! | `store.pages` | all pages (columns share one file + free list) |
//! | `manifest.bin` | page tables, counts, free list, checksummed |
//! | `wal.log` | fixed-frame event records not yet folded in |
//! | `snap_<tag>.bin` | tagged manifest copies with a resume blob |

pub mod bulkload;
pub mod cache;
pub mod pager;
pub mod snapshot;
pub mod wal;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use cache::CachedPager;
use pager::{PageId, PAGE_SIZE};
use snapshot::{Manifest, COL_EFEAT, COL_EVI, COL_EVT, COL_FEAT, COL_NBR, COL_OFF, COL_TS};
use wal::Wal;

/// One temporal interaction as the store frames it (plain-old-data; the
/// graph crate adapts its richer `Interaction` down to this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreEvent {
    pub src: u32,
    pub dst: u32,
    pub t: f64,
    /// Edge-feature row of this event.
    pub feat: u32,
}

/// On-disk size of one event record in the EVT column and bulk temp files.
pub const EVT_RECORD_BYTES: usize = 20;

/// Store construction knobs.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Page-cache budget in bytes; `None` uses the process-wide
    /// `BENCHTEMP_PAGE_CACHE_MB` default.
    pub cache_budget_bytes: Option<usize>,
    /// Events per external-sort run (the bulk loader's peak event
    /// residency).
    pub run_events: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            cache_budget_bytes: None,
            run_events: 1 << 16,
        }
    }
}

/// Base directory for stores whose caller did not pick one, from
/// `BENCHTEMP_STORE_DIR` (default: the system temp dir). Read exactly
/// once per process.
pub fn default_store_dir() -> &'static Path {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        std::env::var("BENCHTEMP_STORE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| std::env::temp_dir().join("benchtemp-store"))
    })
}

/// A store column: an ordered page table plus a byte length. Pages are
/// not necessarily contiguous (the free list recycles), so every access
/// resolves `byte offset → (page table slot, within-page offset)`.
pub(crate) struct Column {
    pub(crate) pages: Vec<PageId>,
    pub(crate) len_bytes: u64,
}

impl Column {
    pub(crate) fn with_len(cp: &CachedPager, len_bytes: u64) -> Column {
        let n = (len_bytes as usize).div_ceil(PAGE_SIZE);
        Column {
            pages: (0..n).map(|_| cp.alloc()).collect(),
            len_bytes,
        }
    }

    pub(crate) fn from_pages(pages: Vec<PageId>, len_bytes: u64) -> Column {
        debug_assert!(pages.len() as u64 * PAGE_SIZE as u64 >= len_bytes);
        Column { pages, len_bytes }
    }

    pub(crate) fn read_bytes(
        &self,
        cp: &CachedPager,
        mut off: u64,
        mut out: &mut [u8],
    ) -> io::Result<()> {
        debug_assert!(off + out.len() as u64 <= self.len_bytes);
        while !out.is_empty() {
            let page_idx = (off / PAGE_SIZE as u64) as usize;
            let within = (off % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - within).min(out.len());
            let (head, rest) = out.split_at_mut(take);
            cp.with_page(self.pages[page_idx], |buf| {
                head.copy_from_slice(&buf[within..within + take])
            })?;
            out = rest;
            off += take as u64;
        }
        Ok(())
    }

    pub(crate) fn write_bytes(
        &self,
        cp: &CachedPager,
        mut off: u64,
        mut data: &[u8],
    ) -> io::Result<()> {
        debug_assert!(off + data.len() as u64 <= self.len_bytes);
        while !data.is_empty() {
            let page_idx = (off / PAGE_SIZE as u64) as usize;
            let within = (off % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - within).min(data.len());
            let (head, rest) = data.split_at(take);
            cp.with_page_mut(self.pages[page_idx], |buf| {
                buf[within..within + take].copy_from_slice(head)
            })?;
            data = rest;
            off += take as u64;
        }
        Ok(())
    }
}

struct Columns {
    off: Column,
    nbr: Column,
    ts: Column,
    evi: Column,
    feat: Column,
    evt: Column,
    efeat: Column,
}

impl Columns {
    fn from_manifest(m: &Manifest) -> Columns {
        Columns {
            off: Column::from_pages(m.col_pages[COL_OFF].clone(), (m.num_nodes + 1) * 8),
            nbr: Column::from_pages(m.col_pages[COL_NBR].clone(), m.num_entries * 4),
            ts: Column::from_pages(m.col_pages[COL_TS].clone(), m.num_entries * 8),
            evi: Column::from_pages(m.col_pages[COL_EVI].clone(), m.num_entries * 4),
            feat: Column::from_pages(m.col_pages[COL_FEAT].clone(), m.num_events * 4),
            evt: Column::from_pages(
                m.col_pages[COL_EVT].clone(),
                m.num_events * EVT_RECORD_BYTES as u64,
            ),
            efeat: Column::from_pages(
                m.col_pages[COL_EFEAT].clone(),
                m.feat_rows * m.feat_cols * 4,
            ),
        }
    }
}

fn pages_path(dir: &Path) -> PathBuf {
    dir.join("store.pages")
}
fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.bin")
}
fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}
fn snap_path(dir: &Path, tag: &str) -> PathBuf {
    dir.join(format!("snap_{tag}.bin"))
}

/// The paged temporal graph store façade.
pub struct TemporalStore {
    dir: PathBuf,
    opts: StoreOptions,
    cp: CachedPager,
    cols: Columns,
    manifest: Manifest,
    /// Resident index: CSR offsets in adjacency entries, `num_nodes + 1`.
    offsets: Vec<u64>,
    /// Resident index: edge-feature row per event.
    event_feat: Vec<u32>,
    wal: Wal,
}

impl TemporalStore {
    /// Bulk-load a fresh store from an event slice (plus an optional
    /// row-major edge-feature matrix), replacing anything in `dir`.
    pub fn bulk_load(
        dir: &Path,
        num_nodes: usize,
        events: &[StoreEvent],
        edge_features: Option<(usize, usize, &[f32])>,
        opts: &StoreOptions,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let cp = CachedPager::create(&pages_path(dir), opts.cache_budget_bytes)?;
        let (manifest, offsets, event_feat) = bulkload::build(
            dir,
            &cp,
            num_nodes,
            events.iter().map(|ev| Ok(*ev)),
            edge_features,
            opts.run_events,
        )?;
        cp.flush()?;
        manifest.write_to(&manifest_path(dir))?;
        let wal = Wal::open_append(&wal_path(dir))?;
        let cols = Columns::from_manifest(&manifest);
        Ok(TemporalStore {
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            cp,
            cols,
            manifest,
            offsets,
            event_feat,
            wal,
        })
    }

    /// Create an empty store (streaming-ingest entry point): zero sealed
    /// events, an open WAL.
    pub fn create(dir: &Path, num_nodes: usize, opts: &StoreOptions) -> io::Result<Self> {
        Self::bulk_load(dir, num_nodes, &[], None, opts)
    }

    /// Open a sealed store from its manifest.
    pub fn open(dir: &Path, opts: &StoreOptions) -> io::Result<Self> {
        Self::open_manifest(dir, Manifest::read_from(&manifest_path(dir))?, opts)
    }

    fn open_manifest(dir: &Path, manifest: Manifest, opts: &StoreOptions) -> io::Result<Self> {
        let cp = CachedPager::open(
            &pages_path(dir),
            opts.cache_budget_bytes,
            manifest.num_pages,
            manifest.free.clone(),
        )?;
        let cols = Columns::from_manifest(&manifest);
        // Load the resident index off the pages.
        let num_nodes = manifest.num_nodes as usize;
        let mut offsets = vec![0u64; num_nodes + 1];
        let mut buf = vec![0u8; 8 * 1024];
        let mut loaded = 0usize;
        while loaded < offsets.len() {
            let take = (offsets.len() - loaded).min(1024);
            let bytes = &mut buf[..take * 8];
            cols.off.read_bytes(&cp, loaded as u64 * 8, bytes)?;
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                offsets[loaded + i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            loaded += take;
        }
        let num_events = manifest.num_events as usize;
        let mut event_feat = vec![0u32; num_events];
        let mut loaded = 0usize;
        while loaded < num_events {
            let take = (num_events - loaded).min(2048);
            let bytes = &mut buf[..take * 4];
            cols.feat.read_bytes(&cp, loaded as u64 * 4, bytes)?;
            for (i, chunk) in bytes.chunks_exact(4).enumerate() {
                event_feat[loaded + i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            loaded += take;
        }
        let wal = Wal::open_append(&wal_path(dir))?;
        Ok(TemporalStore {
            dir: dir.to_path_buf(),
            opts: opts.clone(),
            cp,
            cols,
            manifest,
            offsets,
            event_feat,
            wal,
        })
    }

    // ---- streaming ingest ----------------------------------------------

    /// Append events to the WAL (buffered; durable after
    /// [`TemporalStore::wal_sync`]). Reads keep serving the sealed
    /// generation until [`TemporalStore::seal`] folds the log in.
    pub fn ingest(&mut self, events: &[StoreEvent]) -> io::Result<()> {
        self.wal.append_batch(events)
    }

    pub fn wal_sync(&mut self) -> io::Result<()> {
        self.wal.sync()
    }

    /// WAL records not yet folded into pages.
    pub fn pending_events(&self) -> u64 {
        self.wal.records()
    }

    /// Fold the WAL into the paged columns: rebuild every column from the
    /// sealed events chained with the log's valid prefix (the external
    /// sort re-sorts, so out-of-order ingest is fine), swap the new page
    /// file in, and truncate the log. Consumes and returns the store so
    /// no reader can observe the swap mid-flight.
    pub fn seal(mut self) -> io::Result<Self> {
        let _span = benchtemp_obs::span("store.seal");
        self.wal.sync()?;
        let replay = Wal::replay(&wal_path(&self.dir))?;
        if replay.events.is_empty() {
            return Ok(self);
        }
        // Carry the edge-feature matrix across the rebuild.
        let feat_rows = self.manifest.feat_rows as usize;
        let feat_cols = self.manifest.feat_cols as usize;
        let efeat: Option<Vec<f32>> = if feat_rows * feat_cols > 0 {
            let mut data = vec![0f32; feat_rows * feat_cols];
            let mut bytes = vec![0u8; feat_cols * 4];
            for r in 0..feat_rows {
                self.cols
                    .efeat
                    .read_bytes(&self.cp, (r * feat_cols * 4) as u64, &mut bytes)?;
                for (c, chunk) in bytes.chunks_exact(4).enumerate() {
                    data[r * feat_cols + c] = f32::from_le_bytes(chunk.try_into().unwrap());
                }
            }
            Some(data)
        } else {
            None
        };

        let new_pages = self.dir.join("store.pages.new");
        let new_cp = CachedPager::create(&new_pages, self.opts.cache_budget_bytes)?;
        let sealed = SealedEventIter {
            store: &self,
            idx: 0,
        };
        let chained = sealed.chain(replay.events.iter().map(|ev| Ok(*ev)));
        let (manifest, _offsets, _event_feat) = bulkload::build(
            &self.dir,
            &new_cp,
            self.manifest.num_nodes as usize,
            chained,
            efeat.as_deref().map(|d| (feat_rows, feat_cols, d)),
            self.opts.run_events,
        )?;
        new_cp.flush()?;
        drop(new_cp);

        let dir = self.dir.clone();
        let opts = self.opts.clone();
        drop(self.cols);
        // Close the old page file before replacing it.
        let TemporalStore { cp, mut wal, .. } = self;
        drop(cp);
        std::fs::rename(&new_pages, pages_path(&dir))?;
        manifest.write_to(&manifest_path(&dir))?;
        wal.reset()?;
        drop(wal);
        Self::open(&dir, &opts)
    }

    // ---- snapshot / restore --------------------------------------------

    /// Flush everything and write a tagged manifest carrying `blob`
    /// (caller resume state, e.g. an epoch counter). Valid until the next
    /// [`TemporalStore::seal`] replaces the page file.
    pub fn snapshot(&self, tag: &str, blob: &str) -> io::Result<()> {
        let _span = benchtemp_obs::span("store.snapshot");
        self.cp.flush()?;
        let mut m = self.manifest.clone();
        m.user_blob = blob.to_string();
        m.write_to(&snap_path(&self.dir, tag))
    }

    /// Reopen a store from a tagged snapshot, returning it with the blob
    /// the snapshot carried.
    pub fn restore(dir: &Path, tag: &str, opts: &StoreOptions) -> io::Result<(Self, String)> {
        let manifest = Manifest::read_from(&snap_path(dir, tag))?;
        let blob = manifest.user_blob.clone();
        let store = Self::open_manifest(dir, manifest, opts)?;
        Ok((store, blob))
    }

    // ---- reads ----------------------------------------------------------

    pub fn num_nodes(&self) -> usize {
        self.manifest.num_nodes as usize
    }

    pub fn num_events(&self) -> u64 {
        self.manifest.num_events
    }

    pub fn num_entries(&self) -> u64 {
        self.manifest.num_entries
    }

    /// A node's adjacency-entry range `[start, end)`.
    #[inline]
    pub fn node_range(&self, node: usize) -> (u64, u64) {
        (self.offsets[node], self.offsets[node + 1])
    }

    /// Resident per-event edge-feature rows (indexed by event idx).
    #[inline]
    pub fn event_feat(&self) -> &[u32] {
        &self.event_feat
    }

    /// Timestamp of one adjacency entry (element-granular paged read, for
    /// binary searches that must not materialise the window).
    pub fn ts_at(&self, entry: u64) -> io::Result<f64> {
        let mut b = [0u8; 8];
        self.cols.ts.read_bytes(&self.cp, entry * 8, &mut b)?;
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Read adjacency entries `[start, end)` into SoA output vectors
    /// (appended; callers clear). Page-strided: one cache touch per page
    /// per column, not per element.
    pub fn read_adj(
        &self,
        start: u64,
        end: u64,
        nbr: &mut Vec<u32>,
        ts: &mut Vec<f64>,
        evi: &mut Vec<u32>,
    ) -> io::Result<()> {
        debug_assert!(start <= end && end <= self.manifest.num_entries);
        let n = (end - start) as usize;
        // audit-allow(hot-path-alloc-reachability): per-window staging buffer on the page-IO path; reachable from the pinned samplers only through the paged backend, where page-cache locking and IO dominate the window alloc.
        let mut bytes = vec![0u8; n.max(1) * 8];
        // u32 columns.
        for (col, out) in [(&self.cols.nbr, &mut *nbr), (&self.cols.evi, &mut *evi)] {
            let b = &mut bytes[..n * 4];
            col.read_bytes(&self.cp, start * 4, b)?;
            out.reserve(n);
            for chunk in b.chunks_exact(4) {
                out.push(u32::from_le_bytes(chunk.try_into().unwrap()));
            }
        }
        // f64 timestamp column.
        let b = &mut bytes[..n * 8];
        self.cols.ts.read_bytes(&self.cp, start * 8, b)?;
        ts.reserve(n);
        for chunk in b.chunks_exact(8) {
            ts.push(f64::from_bits(u64::from_le_bytes(
                chunk.try_into().unwrap(),
            )));
        }
        Ok(())
    }

    /// Read one sealed event record by index.
    pub fn read_event(&self, idx: u64) -> io::Result<StoreEvent> {
        let mut rec = [0u8; EVT_RECORD_BYTES];
        self.cols
            .evt
            .read_bytes(&self.cp, idx * EVT_RECORD_BYTES as u64, &mut rec)?;
        Ok(bulkload::decode_ev20(&rec))
    }

    /// One row of the paged edge-feature matrix.
    pub fn read_edge_feature_row(&self, row: usize, out: &mut [f32]) -> io::Result<()> {
        let cols = self.manifest.feat_cols as usize;
        debug_assert_eq!(out.len(), cols);
        let mut bytes = vec![0u8; cols * 4];
        self.cols
            .efeat
            .read_bytes(&self.cp, (row * cols * 4) as u64, &mut bytes)?;
        for (o, chunk) in out.iter_mut().zip(bytes.chunks_exact(4)) {
            *o = f32::from_le_bytes(chunk.try_into().unwrap());
        }
        Ok(())
    }

    pub fn edge_feature_dims(&self) -> (usize, usize) {
        (
            self.manifest.feat_rows as usize,
            self.manifest.feat_cols as usize,
        )
    }

    /// Bytes held by cache frames right now (bounded by the budget).
    pub fn cache_resident_bytes(&self) -> usize {
        self.cp.resident_bytes()
    }

    /// Bytes of resident index this store keeps in RAM by design.
    pub fn resident_index_bytes(&self) -> usize {
        self.offsets.capacity() * 8 + self.event_feat.capacity() * 4
    }

    pub fn flush(&self) -> io::Result<()> {
        self.cp.flush()
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Streaming iterator over the sealed EVT column (used by `seal` to chain
/// existing events with the WAL without materialising them all).
struct SealedEventIter<'a> {
    store: &'a TemporalStore,
    idx: u64,
}

impl Iterator for SealedEventIter<'_> {
    type Item = io::Result<StoreEvent>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.idx >= self.store.manifest.num_events {
            return None;
        }
        let ev = self.store.read_event(self.idx);
        self.idx += 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("benchtemp-store-{}-{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn events() -> Vec<StoreEvent> {
        (0..200)
            .map(|i| StoreEvent {
                src: i % 7,
                dst: 7 + (i % 5),
                t: i as f64,
                feat: i,
            })
            .collect()
    }

    #[test]
    fn bulk_load_roundtrips_adjacency() {
        let dir = tmpdir("bulk");
        let evs = events();
        let st = TemporalStore::bulk_load(&dir, 12, &evs, None, &StoreOptions::default()).unwrap();
        assert_eq!(st.num_events(), 200);
        assert_eq!(st.num_entries(), 400);
        // Node 0 participates as src for i ≡ 0 (mod 7).
        let (s, e) = st.node_range(0);
        let (mut nbr, mut ts, mut evi) = (Vec::new(), Vec::new(), Vec::new());
        st.read_adj(s, e, &mut nbr, &mut ts, &mut evi).unwrap();
        let expect: Vec<u32> = (0..200).filter(|i| i % 7 == 0).collect();
        assert_eq!(evi, expect);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        for (&n, &i) in nbr.iter().zip(&evi) {
            assert_eq!(n, 7 + (i % 5));
        }
        // Event records round-trip.
        let ev = st.read_event(13).unwrap();
        assert_eq!(ev, evs[13]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_sort_orders_unsorted_input_stably() {
        let dir = tmpdir("sort");
        // Tiny runs force multiple spills and a real k-way merge; ties on
        // t must keep input order (stable).
        let mut evs = Vec::new();
        for i in 0..50u32 {
            evs.push(StoreEvent {
                src: 0,
                dst: 1,
                t: (50 - i) as f64,
                feat: i,
            });
            evs.push(StoreEvent {
                src: 0,
                dst: 1,
                t: (50 - i) as f64,
                feat: 1000 + i,
            });
        }
        let opts = StoreOptions {
            run_events: 8,
            ..Default::default()
        };
        let st = TemporalStore::bulk_load(&dir, 2, &evs, None, &opts).unwrap();
        let mut last_t = f64::NEG_INFINITY;
        for idx in 0..st.num_events() {
            let ev = st.read_event(idx).unwrap();
            assert!(ev.t >= last_t, "merge must be sorted");
            last_t = ev.t;
        }
        // Stability: for each t the feat < 1000 twin precedes its 1000+ twin.
        for idx in (0..st.num_events()).step_by(2) {
            let a = st.read_event(idx).unwrap();
            let b = st.read_event(idx + 1).unwrap();
            assert_eq!(a.t, b.t);
            assert_eq!(a.feat + 1000, b.feat, "ties must keep input order");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_after_flush_sees_same_data() {
        let dir = tmpdir("reopen");
        let evs = events();
        {
            TemporalStore::bulk_load(&dir, 12, &evs, None, &StoreOptions::default()).unwrap();
        }
        let st = TemporalStore::open(&dir, &StoreOptions::default()).unwrap();
        assert_eq!(st.num_events(), 200);
        assert_eq!(st.read_event(199).unwrap(), evs[199]);
        assert_eq!(st.event_feat()[42], 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_seal_matches_bulk_load() {
        let dir_a = tmpdir("seal-a");
        let dir_b = tmpdir("seal-b");
        let evs = events();
        let bulk =
            TemporalStore::bulk_load(&dir_a, 12, &evs, None, &StoreOptions::default()).unwrap();
        // Stream the same events through WAL ingest in two batches.
        let mut st = TemporalStore::create(&dir_b, 12, &StoreOptions::default()).unwrap();
        st.ingest(&evs[..77]).unwrap();
        let st = st.seal().unwrap();
        let mut st = st;
        st.ingest(&evs[77..]).unwrap();
        let st = st.seal().unwrap();
        assert_eq!(st.num_events(), bulk.num_events());
        for node in 0..12 {
            assert_eq!(st.node_range(node), bulk.node_range(node));
        }
        for idx in 0..st.num_events() {
            assert_eq!(st.read_event(idx).unwrap(), bulk.read_event(idx).unwrap());
        }
        assert_eq!(st.pending_events(), 0, "seal must truncate the WAL");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn snapshot_restore_roundtrips_blob_and_data() {
        let dir = tmpdir("snap");
        let evs = events();
        let st = TemporalStore::bulk_load(&dir, 12, &evs, None, &StoreOptions::default()).unwrap();
        st.snapshot("epoch3", "epoch=3;best=0.91").unwrap();
        drop(st);
        let (st, blob) = TemporalStore::restore(&dir, "epoch3", &StoreOptions::default()).unwrap();
        assert_eq!(blob, "epoch=3;best=0.91");
        assert_eq!(st.read_event(7).unwrap(), evs[7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edge_feature_rows_round_trip_paged() {
        let dir = tmpdir("efeat");
        let evs = events();
        let rows = 200usize;
        let cols = 6usize;
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32 * 0.5).collect();
        let st = TemporalStore::bulk_load(
            &dir,
            12,
            &evs,
            Some((rows, cols, &data)),
            &StoreOptions::default(),
        )
        .unwrap();
        let mut row = vec![0f32; cols];
        st.read_edge_feature_row(123, &mut row).unwrap();
        assert_eq!(row, &data[123 * cols..124 * cols]);
        assert_eq!(st.edge_feature_dims(), (rows, cols));
        std::fs::remove_dir_all(&dir).ok();
    }
}
