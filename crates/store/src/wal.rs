//! Write-ahead log for streaming event ingest.
//!
//! Fixed-size framing: every record is [`WAL_RECORD_BYTES`] bytes —
//! `src u32 · dst u32 · feat u32 · t-bits u64 · check u32`, all
//! little-endian, where `check` is FNV-1a/32 over the 20 payload bytes.
//! Replay scans from the front and stops at the first short or
//! checksum-failing record, so a crash mid-append (torn write, truncated
//! file) recovers exactly the longest valid prefix — the
//! prefix-consistency contract the crash-recovery test truncates the log
//! at every byte boundary to pin.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use benchtemp_obs::counters::STORE_WAL_RECORDS;

use crate::StoreEvent;

/// On-disk size of one WAL record.
pub const WAL_RECORD_BYTES: usize = 24;

/// FNV-1a over a byte slice, folded to 32 bits — the record checksum.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

fn encode(ev: &StoreEvent) -> [u8; WAL_RECORD_BYTES] {
    let mut rec = [0u8; WAL_RECORD_BYTES];
    rec[0..4].copy_from_slice(&ev.src.to_le_bytes());
    rec[4..8].copy_from_slice(&ev.dst.to_le_bytes());
    rec[8..12].copy_from_slice(&ev.feat.to_le_bytes());
    rec[12..20].copy_from_slice(&ev.t.to_bits().to_le_bytes());
    let check = fnv1a32(&rec[0..20]);
    rec[20..24].copy_from_slice(&check.to_le_bytes());
    rec
}

fn decode(rec: &[u8; WAL_RECORD_BYTES]) -> Option<StoreEvent> {
    let check = u32::from_le_bytes(rec[20..24].try_into().unwrap());
    if fnv1a32(&rec[0..20]) != check {
        return None;
    }
    Some(StoreEvent {
        src: u32::from_le_bytes(rec[0..4].try_into().unwrap()),
        dst: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
        feat: u32::from_le_bytes(rec[8..12].try_into().unwrap()),
        t: f64::from_bits(u64::from_le_bytes(rec[12..20].try_into().unwrap())),
    })
}

/// Append handle over the log file.
pub struct Wal {
    writer: BufWriter<File>,
    path: PathBuf,
    records: u64,
}

/// Outcome of a replay scan.
pub struct WalReplay {
    pub events: Vec<StoreEvent>,
    /// Bytes of valid prefix (`events.len() × WAL_RECORD_BYTES`).
    pub valid_bytes: u64,
    /// Whether a torn/corrupt tail was discarded after the valid prefix.
    pub truncated_tail: bool,
}

impl Wal {
    /// Open for appending, creating the file when absent. Appends land
    /// after whatever is already there — callers that fold the log into
    /// pages truncate it explicitly via [`Wal::reset`].
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let records = file.metadata()?.len() / WAL_RECORD_BYTES as u64;
        Ok(Wal {
            writer: BufWriter::new(file),
            path: path.to_path_buf(),
            records,
        })
    }

    /// Append one event record (buffered; [`Wal::sync`] makes it durable).
    pub fn append(&mut self, ev: &StoreEvent) -> io::Result<()> {
        self.writer.write_all(&encode(ev))?;
        self.records += 1;
        Ok(())
    }

    pub fn append_batch(&mut self, events: &[StoreEvent]) -> io::Result<()> {
        for ev in events {
            self.append(ev)?;
        }
        Ok(())
    }

    /// Flush buffers and fsync the log.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()
    }

    /// Records appended so far (including pre-existing ones).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Truncate the log to empty after its contents were folded into the
    /// paged columns.
    pub fn reset(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_data()?;
        self.records = 0;
        Ok(())
    }

    /// Scan `path` from the front, returning the longest valid prefix.
    /// A missing file replays as empty (a store that never ingested).
    pub fn replay(path: &Path) -> io::Result<WalReplay> {
        let _span = benchtemp_obs::span("store.wal_replay");
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(WalReplay {
                    events: Vec::new(),
                    valid_bytes: 0,
                    truncated_tail: false,
                })
            }
            Err(e) => return Err(e),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut events = Vec::with_capacity(bytes.len() / WAL_RECORD_BYTES);
        let mut off = 0usize;
        let mut truncated_tail = false;
        while off + WAL_RECORD_BYTES <= bytes.len() {
            let rec: &[u8; WAL_RECORD_BYTES] =
                bytes[off..off + WAL_RECORD_BYTES].try_into().unwrap();
            match decode(rec) {
                Some(ev) => {
                    events.push(ev);
                    off += WAL_RECORD_BYTES;
                }
                None => {
                    truncated_tail = true;
                    break;
                }
            }
        }
        if !truncated_tail && off < bytes.len() {
            truncated_tail = true; // short tail record
        }
        STORE_WAL_RECORDS.add(events.len() as u64);
        Ok(WalReplay {
            events,
            valid_bytes: off as u64,
            truncated_tail,
        })
    }
}
