//! CLOCK-style page cache with a byte budget over a [`crate::pager::Pager`].
//!
//! Every page touch goes through [`CachedPager::with_page`] /
//! [`CachedPager::with_page_mut`]: a hit flips the frame's reference bit,
//! a miss faults the page in (evicting via second-chance CLOCK once the
//! budget's frame count is reached, writing dirty victims back first).
//! The cache is the *only* RAM the big columns occupy, so the byte budget
//! is the store's bounded-memory contract; hits/misses/evictions tick the
//! `store.*` obs counters and the resident-bytes gauge so training runs
//! can prove the bound from their profile.
//!
//! Thread safety: one `Mutex` around the whole frame table. The paged
//! sampler's pool tasks share a `&CachedPager` and take the lock per page
//! touch — coarse, but correctness-first, and the resident path is still
//! available when the dataset fits in RAM.

use std::collections::HashMap;
use std::io;
use std::sync::{Mutex, OnceLock};

use benchtemp_obs::counters::{
    STORE_CACHE_RESIDENT_BYTES, STORE_PAGE_EVICTIONS, STORE_PAGE_HITS, STORE_PAGE_MISSES,
};

use crate::pager::{PageId, Pager, PAGE_SIZE};

/// Default cache budget when `BENCHTEMP_PAGE_CACHE_MB` is unset.
const DEFAULT_BUDGET_MB: usize = 64;

/// Floor on the frame count so degenerate budgets still make progress.
const MIN_FRAMES: usize = 4;

/// Process-wide default page-cache budget in bytes, from
/// `BENCHTEMP_PAGE_CACHE_MB`. Read exactly once per process (the env
/// registry's read-once rule); per-store overrides go through
/// [`CachedPager::create`]'s explicit budget argument instead of the
/// environment.
pub fn default_cache_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("BENCHTEMP_PAGE_CACHE_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_BUDGET_MB)
            .saturating_mul(1 << 20)
    })
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    referenced: bool,
    dirty: bool,
}

struct Inner {
    pager: Pager,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    max_frames: usize,
}

impl Inner {
    /// Locate (or fault in) `page`, returning its frame index.
    fn frame_for(&mut self, page: PageId) -> io::Result<usize> {
        if let Some(&fi) = self.map.get(&page) {
            STORE_PAGE_HITS.incr();
            self.frames[fi].referenced = true;
            return Ok(fi);
        }
        STORE_PAGE_MISSES.incr();
        let fi = if self.frames.len() < self.max_frames {
            let fi = self.frames.len();
            self.frames.push(Frame {
                page,
                // audit-allow(hot-path-alloc-reachability): warm-up only — each frame buffer is allocated once, then reused across evictions for the life of the cache.
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                referenced: false,
                dirty: false,
            });
            STORE_CACHE_RESIDENT_BYTES.sample((self.frames.len() * PAGE_SIZE) as u64);
            fi
        } else {
            let fi = self.evict_one()?;
            self.frames[fi].page = page;
            self.frames[fi].referenced = false;
            self.frames[fi].dirty = false;
            fi
        };
        // Fault the page in before publishing the mapping.
        let frame = &mut self.frames[fi];
        self.pager.read_page(page, &mut frame.data)?;
        self.map.insert(page, fi);
        Ok(fi)
    }

    /// Second-chance CLOCK sweep: clear reference bits until a victim with
    /// `referenced == false` comes under the hand, write it back if dirty,
    /// and unmap it. Terminates within two sweeps by construction.
    fn evict_one(&mut self) -> io::Result<usize> {
        loop {
            let fi = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[fi].referenced {
                self.frames[fi].referenced = false;
                continue;
            }
            let victim = self.frames[fi].page;
            if self.frames[fi].dirty {
                self.pager.write_page(victim, &self.frames[fi].data)?;
            }
            self.map.remove(&victim);
            STORE_PAGE_EVICTIONS.incr();
            return Ok(fi);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        for frame in &mut self.frames {
            if frame.dirty {
                self.pager.write_page(frame.page, &frame.data)?;
                frame.dirty = false;
            }
        }
        self.pager.sync()
    }
}

/// A [`Pager`] fronted by the CLOCK cache. All page access goes through
/// the closure APIs so borrowed page bytes can never outlive the lock.
pub struct CachedPager {
    inner: Mutex<Inner>,
}

impl CachedPager {
    fn budget_frames(budget_bytes: Option<usize>) -> usize {
        let bytes = budget_bytes.unwrap_or_else(default_cache_budget);
        (bytes / PAGE_SIZE).max(MIN_FRAMES)
    }

    /// Create a fresh page file with the given byte budget (`None` means
    /// the process-wide `BENCHTEMP_PAGE_CACHE_MB` default).
    pub fn create(path: &std::path::Path, budget_bytes: Option<usize>) -> io::Result<Self> {
        Ok(CachedPager {
            inner: Mutex::new(Inner {
                pager: Pager::create(path)?,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                max_frames: Self::budget_frames(budget_bytes),
            }),
        })
    }

    /// Open an existing page file (allocation state from the manifest).
    pub fn open(
        path: &std::path::Path,
        budget_bytes: Option<usize>,
        num_pages: u64,
        free: Vec<PageId>,
    ) -> io::Result<Self> {
        Ok(CachedPager {
            inner: Mutex::new(Inner {
                pager: Pager::open(path, num_pages, free)?,
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                max_frames: Self::budget_frames(budget_bytes),
            }),
        })
    }

    /// Read access to one page. The closure must not re-enter the cache.
    pub fn with_page<R>(&self, page: PageId, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        let fi = inner.frame_for(page)?;
        Ok(f(&inner.frames[fi].data))
    }

    /// Write access to one page; marks the frame dirty for write-back on
    /// eviction or [`CachedPager::flush`].
    pub fn with_page_mut<R>(&self, page: PageId, f: impl FnOnce(&mut [u8]) -> R) -> io::Result<R> {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        let fi = inner.frame_for(page)?;
        inner.frames[fi].dirty = true;
        Ok(f(&mut inner.frames[fi].data))
    }

    pub fn alloc(&self) -> PageId {
        self.inner
            .lock()
            .expect("page cache poisoned")
            .pager
            .alloc()
    }

    pub fn free_page(&self, id: PageId) {
        let mut inner = self.inner.lock().expect("page cache poisoned");
        inner.map.remove(&id);
        inner.pager.free_page(id);
    }

    /// Write back every dirty frame and sync the file.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().expect("page cache poisoned").flush()
    }

    /// Bytes currently held by cache frames (≤ budget by construction).
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().expect("page cache poisoned").frames.len() * PAGE_SIZE
    }

    /// Frame-count ceiling implied by the budget (test/bench introspection).
    pub fn max_frames(&self) -> usize {
        self.inner.lock().expect("page cache poisoned").max_frames
    }

    pub fn num_pages(&self) -> u64 {
        self.inner
            .lock()
            .expect("page cache poisoned")
            .pager
            .num_pages()
    }

    pub fn free_list(&self) -> Vec<PageId> {
        self.inner
            .lock()
            .expect("page cache poisoned")
            .pager
            .free_list()
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("benchtemp-cache-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.bin")
    }

    #[test]
    fn tiny_budget_evicts_and_preserves_data() {
        let path = tmp("evict");
        let cp = CachedPager::create(&path, Some(1)).unwrap(); // floor: MIN_FRAMES
        assert_eq!(cp.max_frames(), MIN_FRAMES);
        let pages: Vec<PageId> = (0..(MIN_FRAMES * 3)).map(|_| cp.alloc()).collect();
        let before = STORE_PAGE_EVICTIONS.get();
        for (i, &pg) in pages.iter().enumerate() {
            cp.with_page_mut(pg, |buf| buf[7] = i as u8).unwrap();
        }
        // Touching 3× the frame budget must have evicted (and written back
        // dirty victims); every page still reads its own byte.
        assert!(STORE_PAGE_EVICTIONS.get() > before);
        assert!(cp.resident_bytes() <= MIN_FRAMES * PAGE_SIZE);
        for (i, &pg) in pages.iter().enumerate() {
            let v = cp.with_page(pg, |buf| buf[7]).unwrap();
            assert_eq!(v, i as u8, "page {pg} lost its write");
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn flush_persists_across_reopen() {
        let path = tmp("flush");
        let (num_pages, free);
        {
            let cp = CachedPager::create(&path, Some(1 << 20)).unwrap();
            let pg = cp.alloc();
            cp.with_page_mut(pg, |buf| buf[0] = 42).unwrap();
            cp.flush().unwrap();
            num_pages = cp.num_pages();
            free = cp.free_list();
        }
        let cp = CachedPager::open(&path, Some(1 << 20), num_pages, free).unwrap();
        assert_eq!(cp.with_page(0, |buf| buf[0]).unwrap(), 42);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
