//! Raw paged file: fixed-size pages addressed by [`PageId`], with a free
//! list so rebuilt columns can recycle space instead of growing the file.
//!
//! The pager is deliberately dumb — it reads and writes whole pages at
//! absolute offsets and tracks which page ids are allocatable. Caching,
//! eviction, and dirty tracking live one layer up in [`crate::cache`];
//! durability of the free list lives in the manifest
//! ([`crate::snapshot`]), which persists it alongside the column page
//! tables so a reopened store sees the same allocation state it flushed.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Fixed page size. 8 KiB keeps a whole CSR run for most nodes on one or
/// two pages while staying small enough that a few-hundred-KiB cache
/// budget still holds tens of pages.
pub const PAGE_SIZE: usize = 8192;

/// Index of a page within the store file (byte offset = id × PAGE_SIZE).
pub type PageId = u64;

/// A page-granular file with an in-memory free list.
pub struct Pager {
    file: File,
    num_pages: u64,
    free: Vec<PageId>,
}

impl Pager {
    /// Create (truncate) a fresh page file.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            file,
            num_pages: 0,
            free: Vec::new(),
        })
    }

    /// Open an existing page file with allocation state recovered from the
    /// manifest.
    pub fn open(path: &Path, num_pages: u64, free: Vec<PageId>) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Ok(Pager {
            file,
            num_pages,
            free,
        })
    }

    /// Allocate a page id: recycle from the free list, else extend the file.
    pub fn alloc(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            return id;
        }
        let id = self.num_pages;
        self.num_pages += 1;
        id
    }

    /// Return a page to the free list for reuse by a later [`Pager::alloc`].
    pub fn free_page(&mut self, id: PageId) {
        debug_assert!(id < self.num_pages, "freeing unallocated page {id}");
        self.free.push(id);
    }

    /// Read one whole page into `buf`. Pages that were allocated but never
    /// written read back as zeroes (short read past EOF is zero-filled), so
    /// a fresh column is all-zero without an explicit clear pass.
    pub fn read_page(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let off = id * PAGE_SIZE as u64;
        let mut done = 0usize;
        while done < PAGE_SIZE {
            match self.file.read_at(&mut buf[done..], off + done as u64) {
                Ok(0) => break, // EOF: rest stays zero
                Ok(n) => done += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        buf[done..].fill(0);
        Ok(())
    }

    /// Write one whole page.
    pub fn write_page(&self, id: PageId, buf: &[u8]) -> io::Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file.write_all_at(buf, id * PAGE_SIZE as u64)
    }

    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    pub fn free_list(&self) -> &[PageId] {
        &self.free
    }

    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("benchtemp-pager-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("pages.bin")
    }

    #[test]
    fn roundtrip_and_zero_fill() {
        let path = tmp("rt");
        let mut p = Pager::create(&path).unwrap();
        let a = p.alloc();
        let b = p.alloc();
        assert_eq!((a, b), (0, 1));
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        p.write_page(b, &page).unwrap();
        let mut back = vec![0xFFu8; PAGE_SIZE];
        p.read_page(b, &mut back).unwrap();
        assert_eq!(back, page);
        // Page `a` was allocated but never written: reads as zeroes.
        p.read_page(a, &mut back).unwrap();
        assert!(back.iter().all(|&x| x == 0));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn free_list_recycles() {
        let path = tmp("fl");
        let mut p = Pager::create(&path).unwrap();
        let a = p.alloc();
        let _b = p.alloc();
        p.free_page(a);
        assert_eq!(p.alloc(), a, "freed page must be recycled first");
        assert_eq!(p.alloc(), 2, "then the file grows");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
