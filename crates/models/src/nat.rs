//! NAT (Luo & Li, LoG 2022): neighborhood-aware temporal network
//! representation learning. NAT replaces neighbor *sampling* with **N-caches**
//! — fixed-size, hash-slotted per-node dictionaries of 1-hop and 2-hop
//! neighborhood occupants that are updated in O(1) per event and support
//! parallel access (the property behind NAT's GPU-utilization lead in
//! Table 11). Link scores combine each endpoint's recurrent self
//! representation with **joint-neighborhood structural features**: the
//! overlap counts between the two endpoints' caches at every hop
//! combination. Those counts are computable for never-seen nodes as soon as
//! their first events stream in — the mechanism behind NAT's strength on
//! inductive New-New (Table 3) and its weakness on node classification
//! (Table 5), which doesn't reward joint structure.

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::nn::{GruCell, Linear, Mlp, TimeEncode};
use benchtemp_tensor::{Graph, Matrix, Var};

use crate::common::{pos_neg_targets, BatchView, ModelConfig, ModelCore, NodeMemory};

/// Fixed-size hash-slotted cache of node ids (one per node per hop level).
/// Slot index is `id % size`; collisions replace — NAT's "dictionary-type"
/// structure with position-deterministic parallel updates.
#[derive(Clone, Debug)]
struct NCache {
    /// `id + 1`, 0 = empty.
    slots: Vec<u32>,
}

impl NCache {
    fn new(size: usize) -> Self {
        NCache {
            slots: vec![0; size],
        }
    }

    #[inline]
    fn insert(&mut self, node: usize) {
        let i = node % self.slots.len();
        self.slots[i] = node as u32 + 1;
    }

    #[inline]
    fn contains(&self, node: usize) -> bool {
        self.slots[node % self.slots.len()] == node as u32 + 1
    }

    fn occupancy(&self) -> usize {
        self.slots.iter().filter(|&&s| s != 0).count()
    }

    /// Count of this cache's occupants present in `other`.
    fn overlap(&self, other: &NCache) -> usize {
        self.slots
            .iter()
            .filter(|&&s| s != 0 && other.contains((s - 1) as usize))
            .count()
    }

    fn iter_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| (s - 1) as usize)
    }

    fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = 0);
    }
}

/// Number of structural count features per pair.
const N_STRUCT: usize = 9;

struct Weights {
    edge_proj: Linear,
    time_enc: TimeEncode,
    rep_gru: GruCell,
    rep_proj: Linear,
    struct_proj: Linear,
    head: Mlp,
}

/// The NAT model.
pub struct Nat {
    weights: Weights,
    core: ModelCore,
    reps: NodeMemory,
    hop1: Vec<NCache>,
    hop2: Vec<NCache>,
    embed_dim: usize,
}

impl Nat {
    pub fn new(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let d = cfg.embed_dim;
        let td = cfg.time_dim;
        let ed = 16.min(graph.edge_dim().max(4));
        let ds = 16;
        let (store, rng) = (&mut core.store, &mut core.rng);
        let weights = Weights {
            edge_proj: Linear::new(store, rng, "edge_proj", graph.edge_dim(), ed),
            time_enc: TimeEncode::new(store, "time_enc", td),
            rep_gru: GruCell::new(store, rng, "rep_gru", ed + td, d),
            rep_proj: Linear::new(store, rng, "rep_proj", d, d),
            struct_proj: Linear::new(store, rng, "struct_proj", N_STRUCT, ds),
            head: Mlp::new(store, rng, "head", d + d + ds + td, d, 1),
        };
        // Cache sizes: ~2× the neighbor budget at hop 1, 4× at hop 2.
        let s1 = (cfg.neighbors * 2).max(4);
        let s2 = (cfg.neighbors * 4).max(8);
        Nat {
            weights,
            core,
            reps: NodeMemory::new(graph.num_nodes, d),
            hop1: vec![NCache::new(s1); graph.num_nodes],
            hop2: vec![NCache::new(s2); graph.num_nodes],
            embed_dim: d,
        }
    }

    /// Joint-neighborhood structural features for one pair, normalized by
    /// cache capacity.
    fn pair_struct(&self, u: usize, v: usize) -> [f32; N_STRUCT] {
        let (h1u, h1v) = (&self.hop1[u], &self.hop1[v]);
        let (h2u, h2v) = (&self.hop2[u], &self.hop2[v]);
        let c1 = h1u.slots.len() as f32;
        let c2 = h2u.slots.len() as f32;
        [
            // Direct containment (edge recurrence signal).
            h1u.contains(v) as u8 as f32,
            h1v.contains(u) as u8 as f32,
            // Hop-combination overlaps (joint neighborhood).
            h1u.overlap(h1v) as f32 / c1,
            h1u.overlap(h2v) as f32 / c1,
            h2u.overlap(h1v) as f32 / c2,
            h2u.overlap(h2v) as f32 / c2,
            // Occupancies (degree proxies).
            h1u.occupancy() as f32 / c1,
            h1v.occupancy() as f32 / c1,
            (h2u.occupancy() + h2v.occupancy()) as f32 / (2.0 * c2),
        ]
    }

    /// Non-learned cache bookkeeping after the batch's events.
    fn update_caches(&mut self, view: &BatchView) {
        // Fixed-size staging buffers: at most 4 occupants propagate per
        // endpoint, so no per-event heap allocation is needed.
        let mut from_v = [0usize; 4];
        let mut from_u = [0usize; 4];
        for i in 0..view.len() {
            let (u, v) = (view.srcs[i], view.dsts[i]);
            // Propagate the *other* endpoint's 1-hop occupants into own
            // 2-hop cache (before inserting the new direct neighbor).
            let mut nv = 0;
            for x in self.hop1[v].iter_nodes().take(4) {
                from_v[nv] = x;
                nv += 1;
            }
            let mut nu = 0;
            for x in self.hop1[u].iter_nodes().take(4) {
                from_u[nu] = x;
                nu += 1;
            }
            for &x in &from_v[..nv] {
                self.hop2[u].insert(x);
            }
            for &x in &from_u[..nu] {
                self.hop2[v].insert(x);
            }
            self.hop1[u].insert(v);
            self.hop1[v].insert(u);
        }
    }

    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
    ) -> (f32, Vec<f32>, Vec<f32>, Matrix) {
        let view = BatchView::new(batch, neg_dsts);
        let n = view.len();
        // Whole-batch dense span; the nested sampling span below subtracts
        // itself from its exclusive time.
        let _dense = obs::span(stage::DENSE);

        // Structural features (cache reads are the "sampling" phase — they
        // are what NAT made fast).
        let (pos_struct, neg_struct) = obs::timed(stage::SAMPLING, || {
            let mut ps = Matrix::zeros(n, N_STRUCT);
            let mut ns = Matrix::zeros(n, N_STRUCT);
            for i in 0..n {
                ps.set_row(i, &self.pair_struct(view.srcs[i], view.dsts[i]));
                ns.set_row(i, &self.pair_struct(view.srcs[i], view.negs[i]));
            }
            (ps, ns)
        });

        let src_dt = self.reps.deltas(&view.srcs, &view.times);
        let dst_dt = self.reps.deltas(&view.dsts, &view.times);
        let neg_dt = self.reps.deltas(&view.negs, &view.times);

        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let src_rep = {
            let m = self.reps.rows_var(&mut g, &view.srcs);
            let p = w.rep_proj.forward(&mut g, m);
            g.relu(p)
        };
        let dst_rep = {
            let m = self.reps.rows_var(&mut g, &view.dsts);
            let p = w.rep_proj.forward(&mut g, m);
            g.relu(p)
        };
        let neg_rep = {
            let m = self.reps.rows_var(&mut g, &view.negs);
            let p = w.rep_proj.forward(&mut g, m);
            g.relu(p)
        };
        let score = |g: &mut Graph, a: Var, b: Var, st: Matrix, dt: &[f32]| -> Var {
            let sp = {
                let s = g.input(st);
                w.struct_proj.forward(g, s)
            };
            let te = w.time_enc.forward_slice(g, dt);
            let cat = g.concat_cols_many(&[a, b, sp, te]);
            w.head.forward(g, cat)
        };
        let pos_logit = score(&mut g, src_rep, dst_rep, pos_struct, &src_dt);
        let neg_logit = score(&mut g, src_rep, neg_rep, neg_struct, &neg_dt);
        let logits = g.concat_rows(pos_logit, neg_logit);
        let targets = pos_neg_targets(n);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();
        let lm = g.value(logits).clone();
        let pos: Vec<f32> = (0..n).map(|r| lm.get(r, 0)).collect();
        let negs: Vec<f32> = (0..n).map(|r| lm.get(n + r, 0)).collect();

        // Recurrent self-representation update for both endpoints.
        let (new_src, new_dst) = {
            let e = view.edge_feats_var(&mut g, ctx);
            let ep = w.edge_proj.forward(&mut g, e);
            let ste = w.time_enc.forward_slice(&mut g, &src_dt);
            let dte = w.time_enc.forward_slice(&mut g, &dst_dt);
            let sx = g.concat_cols(ep, ste);
            let dx = g.concat_cols(ep, dte);
            let sm = self.reps.rows_var(&mut g, &view.srcs);
            let dm = self.reps.rows_var(&mut g, &view.dsts);
            (
                w.rep_gru.forward(&mut g, sx, sm),
                w.rep_gru.forward(&mut g, dx, dm),
            )
        };
        let src_emb = g.value(src_rep).clone();
        let new_src_m = g.value(new_src).clone();
        let new_dst_m = g.value(new_dst).clone();

        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            self.core.adam.step(&mut self.core.store, &grads);
        }

        self.reps.write(&view.srcs, &new_src_m, &view.times);
        self.reps.write(&view.dsts, &new_dst_m, &view.times);
        self.update_caches(&view);
        (loss_val, pos, negs, src_emb)
    }
}

impl TgnnModel for Nat {
    fn name(&self) -> &'static str {
        "NAT"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: true,
            attention: true,
            rnn: true,
            temp_walk: false,
            scalability: true,
            supervision: "self-supervised",
        }
    }

    fn reset_state(&mut self) {
        self.reps.reset();
        self.hop1.iter_mut().for_each(NCache::clear);
        self.hop2.iter_mut().for_each(NCache::clear);
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, negs, _) = self.run_batch(ctx, batch, neg, false);
        (pos, negs)
    }

    fn score_candidates(
        &mut self,
        _ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Pure reads of reps + N-caches: no GRU step, no `reps.write`, no
        // cache bookkeeping — `eval_batch` observes exactly the pre-batch
        // state. NAT needs no RNG here (cache reads are deterministic).
        let n = batch.len();
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let src_dt = self.reps.deltas(&srcs, &times);
        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let src_rep = {
            let m = self.reps.rows_var(&mut g, &srcs);
            let p = w.rep_proj.forward(&mut g, m);
            g.relu(p)
        };
        // Mirrors `run_batch`'s scoring: the pair's structural features, the
        // other endpoint's rep, and the *other endpoint's* time delta.
        let score_block = |g: &mut Graph, block: &[usize], dt: &[f32]| -> Vec<f32> {
            let mut st = Matrix::zeros(n, N_STRUCT);
            for i in 0..n {
                st.set_row(i, &self.pair_struct(srcs[i], block[i]));
            }
            let b_rep = {
                let m = self.reps.rows_var(g, block);
                let p = w.rep_proj.forward(g, m);
                g.relu(p)
            };
            let sp = {
                let s = g.input(st);
                w.struct_proj.forward(g, s)
            };
            let te = w.time_enc.forward_slice(g, dt);
            let cat = g.concat_cols_many(&[src_rep, b_rep, sp, te]);
            let logit = w.head.forward(g, cat);
            let m = g.value(logit);
            (0..n).map(|r| m.get(r, 0)).collect()
        };
        let pos = score_block(&mut g, &dsts, &src_dt);
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            let block = &cand_dsts[j * n..(j + 1) * n];
            let dt = self.reps.deltas(block, &times);
            cands.extend(score_block(&mut g, block, &dt));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        self.run_batch(ctx, batch, &negs, false).3
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        let cache_bytes: usize = self
            .hop1
            .iter()
            .chain(self.hop2.iter())
            .map(|c| c.slots.capacity() * std::mem::size_of::<u32>())
            .sum();
        self.core.param_bytes() + self.reps.heap_bytes() + cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    #[test]
    fn ncache_insert_contains_overlap() {
        let mut a = NCache::new(8);
        let mut b = NCache::new(8);
        a.insert(3);
        a.insert(11); // collides with 3 (11 % 8 = 3) → replaces
        assert!(!a.contains(3));
        assert!(a.contains(11));
        a.insert(5);
        b.insert(5);
        b.insert(11);
        assert_eq!(a.overlap(&b), 2);
        assert_eq!(a.occupancy(), 2);
        a.clear();
        assert_eq!(a.occupancy(), 0);
    }

    #[test]
    fn struct_features_detect_joint_neighborhood() {
        let g = GeneratorConfig::small("nat", 91).generate();
        let mut nat = Nat::new(ModelConfig::default(), &g);
        // u and v share neighbor 7 after these inserts.
        let (u, v, w) = (0, 1, g.num_users + 7);
        nat.hop1[u].insert(w);
        nat.hop1[v].insert(w);
        let f = nat.pair_struct(u, v);
        assert!(f[2] > 0.0, "1-hop∩1-hop overlap must fire: {f:?}");
        // A pair with empty caches scores zero structure.
        let f0 = nat.pair_struct(2, 3);
        assert!(f0.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn caches_populate_from_stream() {
        let g = GeneratorConfig::small("nat2", 92).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut nat = Nat::new(
            ModelConfig {
                embed_dim: 16,
                ..Default::default()
            },
            &g,
        );
        let negs: Vec<usize> = g.events[..100].iter().map(|_| g.num_users).collect();
        nat.eval_batch(&ctx, &g.events[..100], &negs);
        let occupied: usize = nat.hop1.iter().map(|c| c.occupancy()).sum();
        assert!(occupied > 0, "1-hop caches must populate from events");
        let ev = &g.events[0];
        assert!(nat.hop1[ev.src].contains(ev.dst) || nat.hop1[ev.src].occupancy() > 0);
    }

    #[test]
    fn repeated_edge_scores_rise_with_cache_hit() {
        // After observing (u,v), the pair's structural features include the
        // direct-containment bit — training should quickly exploit it.
        let g = GeneratorConfig::small("nat3", 93).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut nat = Nat::new(
            ModelConfig {
                embed_dim: 16,
                lr: 1e-2,
                ..Default::default()
            },
            &g,
        );
        let batch = &g.events[..60];
        let negs: Vec<usize> = batch
            .iter()
            .enumerate()
            .map(|(i, _)| g.num_users + (i * 3) % (g.num_nodes - g.num_users))
            .collect();
        let first = nat.train_batch(&ctx, batch, &negs);
        let mut last = first;
        for _ in 0..20 {
            last = nat.train_batch(&ctx, batch, &negs);
        }
        assert!(last < first, "NAT loss went {first} → {last}");
    }

    #[test]
    fn state_bytes_include_caches() {
        let g = GeneratorConfig::small("nat4", 94).generate();
        let nat = Nat::new(ModelConfig::default(), &g);
        // Caches + reps must make NAT's state exceed its bare parameters.
        assert!(nat.state_bytes() > nat.core.param_bytes());
    }
}
