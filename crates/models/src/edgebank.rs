//! EdgeBank (Poursafaei et al., reference \[8\] of the paper) — the pure-memorization baseline that
//! motivated BenchTemp's negative-sampling appendix: score 1 if the edge has
//! been observed before, 0 otherwise. Non-learned, so it bounds how much of
//! a dataset's signal is pure recurrence.

use std::collections::HashMap;

use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::temporal_graph::Interaction;
use benchtemp_tensor::Matrix;

/// Memory policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeBankVariant {
    /// Remember every edge ever seen ("EdgeBank∞").
    Unlimited,
    /// Remember edges whose last occurrence is within the trailing window
    /// (fraction of the stream's observed span) ("EdgeBank_tw").
    TimeWindow { window: f64 },
}

/// The EdgeBank baseline.
pub struct EdgeBank {
    variant: EdgeBankVariant,
    /// (src,dst) → last-seen timestamp.
    seen: HashMap<(usize, usize), f64>,
}

impl EdgeBank {
    pub fn new(variant: EdgeBankVariant) -> Self {
        EdgeBank {
            variant,
            seen: HashMap::new(),
        }
    }

    pub fn unlimited() -> Self {
        Self::new(EdgeBankVariant::Unlimited)
    }

    fn score(&self, src: usize, dst: usize, now: f64) -> f32 {
        match (self.seen.get(&(src, dst)), self.variant) {
            (None, _) => 0.0,
            (Some(_), EdgeBankVariant::Unlimited) => 1.0,
            (Some(&t), EdgeBankVariant::TimeWindow { window }) => {
                if now - t <= window {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn observe(&mut self, batch: &[Interaction]) {
        for ev in batch {
            self.seen.insert((ev.src, ev.dst), ev.t);
        }
    }
}

impl TgnnModel for EdgeBank {
    fn name(&self) -> &'static str {
        "EdgeBank"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: true,
            attention: false,
            rnn: false,
            temp_walk: false,
            scalability: true,
            supervision: "none (memorization)",
        }
    }

    fn reset_state(&mut self) {
        self.seen.clear();
    }

    fn train_batch(&mut self, _ctx: &StreamContext, batch: &[Interaction], _neg: &[usize]) -> f32 {
        self.observe(batch);
        0.0
    }

    fn eval_batch(
        &mut self,
        _ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let pos = batch
            .iter()
            .map(|e| self.score(e.src, e.dst, e.t))
            .collect();
        let neg = batch
            .iter()
            .zip(neg_dsts)
            .map(|(e, &d)| self.score(e.src, d, e.t))
            .collect();
        self.observe(batch);
        (pos, neg)
    }

    fn score_candidates(
        &mut self,
        _ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Pure reads of the bank — no `observe`, so ranking never advances
        // the memory ahead of `eval_batch`.
        let n = batch.len();
        let pos = batch
            .iter()
            .map(|e| self.score(e.src, e.dst, e.t))
            .collect();
        let cands = (0..n * k)
            .map(|i| {
                let ev = &batch[i % n];
                self.score(ev.src, cand_dsts[i], ev.t)
            })
            .collect();
        (pos, cands)
    }

    fn embed_events(&mut self, _ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        // EdgeBank has no node representation; expose the source's current
        // out-degree as a 1-dim "embedding" so the NC pipeline still runs.
        let mut m = Matrix::zeros(batch.len(), 1);
        for (r, ev) in batch.iter().enumerate() {
            // audit-allow(no-hashmap-iteration-in-numeric-path): a count over keys is order-independent
            let deg = self.seen.keys().filter(|(s, _)| *s == ev.src).count();
            m.set(r, 0, deg as f32);
        }
        self.observe(batch);
        m
    }

    fn embed_dim(&self) -> usize {
        1
    }

    fn snapshot(&self) -> Vec<Matrix> {
        Vec::new()
    }

    fn restore(&mut self, _snapshot: &[Matrix]) {}

    fn state_bytes(&self) -> usize {
        self.seen.capacity() * std::mem::size_of::<((usize, usize), f64)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    fn ctx_graph() -> benchtemp_graph::TemporalGraph {
        GeneratorConfig::small("eb", 51).generate()
    }

    #[test]
    fn scores_repeat_edges_positively() {
        let g = ctx_graph();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut eb = EdgeBank::unlimited();
        // First pass: observe.
        eb.train_batch(&ctx, &g.events[..500], &[]);
        // Second pass over the same events: positives all remembered.
        let negs: Vec<usize> = vec![g.num_nodes - 1; 100];
        let (pos, _) = eb.eval_batch(&ctx, &g.events[..100], &negs);
        assert!(pos.iter().all(|&s| s == 1.0));
    }

    #[test]
    fn unseen_edges_score_zero() {
        let g = ctx_graph();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut eb = EdgeBank::unlimited();
        let negs: Vec<usize> = vec![g.num_nodes - 1; 10];
        let (pos, _) = eb.eval_batch(&ctx, &g.events[..10], &negs);
        // First batch ever: nothing seen before the batch.
        assert_eq!(pos[0], 0.0);
    }

    #[test]
    fn time_window_forgets() {
        let mut eb = EdgeBank::new(EdgeBankVariant::TimeWindow { window: 5.0 });
        eb.seen.insert((1, 2), 10.0);
        assert_eq!(eb.score(1, 2, 12.0), 1.0);
        assert_eq!(eb.score(1, 2, 100.0), 0.0);
    }

    #[test]
    fn reset_clears_memory() {
        let mut eb = EdgeBank::unlimited();
        eb.seen.insert((1, 2), 1.0);
        eb.reset_state();
        assert_eq!(eb.score(1, 2, 5.0), 0.0);
    }

    #[test]
    fn beats_chance_on_recurrent_stream() {
        // On a high-recurrence dataset EdgeBank's AUC must clear 0.5 by a
        // wide margin — the signal the Appendix-J samplers remove.
        let mut cfg = GeneratorConfig::small("eb2", 53);
        cfg.recurrence = 0.8;
        let g = cfg.generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut eb = EdgeBank::unlimited();
        let half = g.num_events() / 2;
        eb.train_batch(&ctx, &g.events[..half], &[]);
        let rest = &g.events[half..];
        let negs: Vec<usize> = (0..rest.len())
            .map(|i| g.num_users + (i * 7) % (g.num_nodes - g.num_users))
            .collect();
        let (pos, neg) = eb.eval_batch(&ctx, rest, &negs);
        let auc = benchtemp_core::evaluator::roc_auc_pos_neg(&pos, &neg);
        assert!(auc > 0.65, "EdgeBank AUC {auc} on recurrent stream");
    }
}
