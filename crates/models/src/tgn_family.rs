//! The TGN framework and its three instantiations — TGN, JODIE, DyRep.
//!
//! Appendix C: *"We implement JODIE, DyRep, and TGN based on the TGN
//! framework"* — as does the TGN paper itself, which presents JODIE and
//! DyRep as special cases. The shared skeleton is: per-node **memory**, a
//! **message function** over each interaction, a **GRU memory updater**,
//! and a variant-specific **embedding module**:
//!
//! * **JODIE** — time-projection embedding `(1 + Δt·w) ⊙ memory` driven by
//!   coupled user/item RNN updates;
//! * **DyRep** — identity embedding; the *message* aggregates the other
//!   endpoint's temporal neighborhood with attention;
//! * **TGN** — one layer of multi-head temporal graph attention over the
//!   memory+features of sampled neighbors, residual on the node state.
//!
//! Memory gradients are truncated at batch boundaries (the reference
//! implementations' scheme): each batch backpropagates through its own
//! computation, then writes detached memory values.

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::neighbors::SamplingStrategy;
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::init::SeededRng;
use benchtemp_tensor::nn::{Linear, MergeLayer, MultiHeadAttention, TimeEncode};
use benchtemp_tensor::{Graph, Matrix, ParamId, Var};

use crate::common::{
    pos_neg_targets, ranking_rng, BatchView, ModelConfig, ModelCore, NeighborBatch, NodeMemory,
};

/// Which member of the family this instance is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TgnVariant {
    Jodie,
    DyRep,
    Tgn,
}

/// Layer handles (ParamIds only — no borrow of the store), so forward
/// helpers can run while a [`Graph`] borrows the parameter store.
struct Weights {
    variant: TgnVariant,
    neighbors: usize,
    feat_proj: Linear,
    edge_proj: Linear,
    time_enc: TimeEncode,
    msg_fn: Linear,
    gru_wz: Linear,
    gru_uz: Linear,
    gru_wr: Linear,
    gru_ur: Linear,
    gru_wh: Linear,
    gru_uh: Linear,
    decoder: MergeLayer,
    jodie_proj: Option<ParamId>,
    attention: Option<MultiHeadAttention>,
}

impl Weights {
    /// Node state: memory + projected static features.
    fn node_state(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        memory: &NodeMemory,
        nodes: &[usize],
    ) -> Var {
        let mem = memory.rows_var(g, nodes);
        let feats = g.gather_rows_from(&ctx.graph.node_features, nodes);
        let proj = self.feat_proj.forward(g, feats);
        g.add(mem, proj)
    }

    /// GRU memory-updater step.
    fn gru(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let z = {
            let a = self.gru_wz.forward(g, x);
            let b = self.gru_uz.forward(g, h);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let r = {
            let a = self.gru_wr.forward(g, x);
            let b = self.gru_ur.forward(g, h);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let h_tilde = {
            let a = self.gru_wh.forward(g, x);
            let rh = g.mul(r, h);
            let b = self.gru_uh.forward(g, rh);
            let s = g.add(a, b);
            g.tanh(s)
        };
        let nz = g.neg(z);
        let omz = g.add_scalar(nz, 1.0);
        let keep = g.mul(omz, h);
        let upd = g.mul(z, h_tilde);
        g.add(keep, upd)
    }

    /// One temporal-attention layer over sampled neighbors.
    #[allow(clippy::too_many_arguments)]
    fn attend(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        memory: &NodeMemory,
        state: Var,
        nodes: &[usize],
        times: &[f64],
        rng: &mut SeededRng,
    ) -> Var {
        let k = self.neighbors;
        let nb = obs::timed(stage::SAMPLING, || {
            NeighborBatch::sample(ctx, nodes, times, k, SamplingStrategy::MostRecent, rng)
        });
        let nb_state = {
            let mem = memory.rows_var(g, &nb.ids);
            let feats = nb.node_feats_var(g, ctx);
            let fp = self.feat_proj.forward(g, feats);
            g.add(mem, fp)
        };
        let nb_edge = {
            let e = nb.edge_feats_var(g, ctx);
            self.edge_proj.forward(g, e)
        };
        let nb_te = self.time_enc.forward_slice(g, &nb.dts);
        let keys = g.concat_cols_many(&[nb_state, nb_edge, nb_te]);
        let zero_te = self.time_enc.forward_slice(g, &vec![0.0; nodes.len()]);
        let query = g.concat_cols(state, zero_te);
        self.attention
            .as_ref()
            .expect("attention present")
            .forward(g, query, keys, k, &nb.mask)
    }

    /// Variant embedding of nodes at the given times.
    fn embed(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        memory: &NodeMemory,
        nodes: &[usize],
        times: &[f64],
        rng: &mut SeededRng,
    ) -> Var {
        match self.variant {
            TgnVariant::Jodie => {
                let mem = memory.rows_var(g, nodes);
                let dts = memory.deltas(nodes, times);
                let dt_col = g.input(Matrix::column(&dts));
                let w = g.param(self.jodie_proj.expect("jodie proj"));
                let dtw = g.matmul(dt_col, w);
                let scale = g.add_scalar(dtw, 1.0);
                let projected = g.mul(scale, mem);
                let feats = g.gather_rows_from(&ctx.graph.node_features, nodes);
                let fp = self.feat_proj.forward(g, feats);
                g.add(projected, fp)
            }
            TgnVariant::DyRep => self.node_state(g, ctx, memory, nodes),
            TgnVariant::Tgn => {
                let state = self.node_state(g, ctx, memory, nodes);
                let attn = self.attend(g, ctx, memory, state, nodes, times, rng);
                g.add(attn, state)
            }
        }
    }

    /// Messages + GRU update for the batch's endpoints; returns new memory
    /// values (on tape → current-batch gradients flow).
    fn new_memories(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        memory: &NodeMemory,
        view: &BatchView,
        rng: &mut SeededRng,
    ) -> (Var, Var) {
        let edge = {
            let e = view.edge_feats_var(g, ctx);
            self.edge_proj.forward(g, e)
        };
        let src_mem = memory.rows_var(g, &view.srcs);
        let dst_mem = memory.rows_var(g, &view.dsts);
        let src_te = {
            let dt = memory.deltas(&view.srcs, &view.times);
            self.time_enc.forward_slice(g, &dt)
        };
        let dst_te = {
            let dt = memory.deltas(&view.dsts, &view.times);
            self.time_enc.forward_slice(g, &dt)
        };
        // DyRep: messages carry the other endpoint's attention-aggregated
        // neighborhood; JODIE/TGN: the other endpoint's raw memory.
        let (other_for_src, other_for_dst) = if self.variant == TgnVariant::DyRep {
            let dst_state = self.node_state(g, ctx, memory, &view.dsts);
            let src_state = self.node_state(g, ctx, memory, &view.srcs);
            let dst_agg = self.attend(g, ctx, memory, dst_state, &view.dsts, &view.times, rng);
            let src_agg = self.attend(g, ctx, memory, src_state, &view.srcs, &view.times, rng);
            (g.add(dst_agg, dst_state), g.add(src_agg, src_state))
        } else {
            (dst_mem, src_mem)
        };
        let src_in = g.concat_cols_many(&[src_mem, other_for_src, src_te, edge]);
        let dst_in = g.concat_cols_many(&[dst_mem, other_for_dst, dst_te, edge]);
        let src_msg = {
            let m = self.msg_fn.forward(g, src_in);
            g.relu(m)
        };
        let dst_msg = {
            let m = self.msg_fn.forward(g, dst_in);
            g.relu(m)
        };
        (self.gru(g, src_msg, src_mem), self.gru(g, dst_msg, dst_mem))
    }
}

/// The TGN-framework model (JODIE / DyRep / TGN).
pub struct TgnFamily {
    weights: Weights,
    core: ModelCore,
    memory: NodeMemory,
    embed_dim: usize,
}

impl TgnFamily {
    pub fn jodie(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(TgnVariant::Jodie, cfg, graph)
    }

    pub fn dyrep(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(TgnVariant::DyRep, cfg, graph)
    }

    pub fn tgn(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(TgnVariant::Tgn, cfg, graph)
    }

    pub fn new(variant: TgnVariant, cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let d = cfg.embed_dim;
        let td = cfg.time_dim;
        let ed = 16.min(graph.edge_dim().max(4));
        let (store, rng) = (&mut core.store, &mut core.rng);
        let weights = Weights {
            variant,
            neighbors: cfg.neighbors,
            feat_proj: Linear::new(store, rng, "feat_proj", graph.node_dim(), d),
            edge_proj: Linear::new(store, rng, "edge_proj", graph.edge_dim(), ed),
            time_enc: TimeEncode::new(store, "time_enc", td),
            msg_fn: Linear::new(store, rng, "msg_fn", d + d + td + ed, d),
            gru_wz: Linear::new(store, rng, "gru.wz", d, d),
            gru_uz: Linear::new(store, rng, "gru.uz", d, d),
            gru_wr: Linear::new(store, rng, "gru.wr", d, d),
            gru_ur: Linear::new(store, rng, "gru.ur", d, d),
            gru_wh: Linear::new(store, rng, "gru.wh", d, d),
            gru_uh: Linear::new(store, rng, "gru.uh", d, d),
            decoder: MergeLayer::new(store, rng, "decoder", d, d, d, 1),
            jodie_proj: (variant == TgnVariant::Jodie)
                .then(|| store.add("jodie_proj", Matrix::zeros(1, d))),
            attention: matches!(variant, TgnVariant::Tgn | TgnVariant::DyRep).then(|| {
                MultiHeadAttention::new(store, rng, "attn", d + td, d + ed + td, d, cfg.heads, d)
            }),
        };
        TgnFamily {
            weights,
            core,
            memory: NodeMemory::new(graph.num_nodes, d),
            embed_dim: d,
        }
    }

    /// Forward pass shared by train/eval: returns (logits pos+neg stacked,
    /// src-embedding var, new src/dst memory vars) still on the graph.
    fn forward(
        g: &mut Graph,
        weights: &Weights,
        memory: &NodeMemory,
        ctx: &StreamContext,
        view: &BatchView,
        rng: &mut SeededRng,
    ) -> (Var, Var, Var, Var) {
        let src = weights.embed(g, ctx, memory, &view.srcs, &view.times, rng);
        let dst = weights.embed(g, ctx, memory, &view.dsts, &view.times, rng);
        let neg = weights.embed(g, ctx, memory, &view.negs, &view.times, rng);
        let pos_logit = weights.decoder.forward(g, src, dst);
        let neg_logit = weights.decoder.forward(g, src, neg);
        let logits = g.concat_rows(pos_logit, neg_logit);
        let (new_src, new_dst) = weights.new_memories(g, ctx, memory, view, rng);
        (logits, src, new_src, new_dst)
    }

    /// Run one batch; when `train` is set, backprop + Adam step. Returns
    /// (loss, pos_scores, neg_scores, src_embeddings). `want_embeddings`
    /// gates the src-embedding clone — only `embed_events` consumes it,
    /// so train/eval batches skip that per-batch allocation (the memory
    /// updates `new_src`/`new_dst` are still materialized every batch).
    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
        want_embeddings: bool,
    ) -> (f32, Vec<f32>, Vec<f32>, Matrix) {
        let view = BatchView::new(batch, neg_dsts);
        let TgnFamily {
            weights,
            core,
            memory,
            ..
        } = self;
        let ModelCore { store, adam, rng } = core;
        // Whole-batch dense span; nested sampling spans subtract themselves
        // from its exclusive time, so "dense" self-time = batch − sampling.
        let _dense = obs::span(stage::DENSE);

        let mut g = Graph::new(store);
        let (logits, src_emb, new_src, new_dst) =
            Self::forward(&mut g, weights, memory, ctx, &view, rng);
        let targets = pos_neg_targets(view.len());
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();

        let probs = g.value(logits).clone(); // raw logits as scores
        let n = view.len();
        let pos: Vec<f32> = (0..n).map(|r| probs.get(r, 0)).collect();
        let neg: Vec<f32> = (0..n).map(|r| probs.get(n + r, 0)).collect();
        let src_mat = if want_embeddings {
            g.value(src_emb).clone()
        } else {
            Matrix::zeros(0, 0)
        };
        let new_src_mat = g.value(new_src).clone();
        let new_dst_mat = g.value(new_dst).clone();

        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            adam.step(store, &grads);
        }

        memory.write(&view.srcs, &new_src_mat, &view.times);
        memory.write(&view.dsts, &new_dst_mat, &view.times);
        (loss_val, pos, neg, src_mat)
    }
}

impl TgnnModel for TgnFamily {
    fn name(&self) -> &'static str {
        match self.weights.variant {
            TgnVariant::Jodie => "JODIE",
            TgnVariant::DyRep => "DyRep",
            TgnVariant::Tgn => "TGN",
        }
    }

    fn anatomy(&self) -> Anatomy {
        match self.weights.variant {
            TgnVariant::Jodie => Anatomy {
                memory: true,
                attention: true,
                rnn: true,
                temp_walk: false,
                scalability: true,
                supervision: "self (semi)-supervised",
            },
            TgnVariant::DyRep => Anatomy {
                memory: false,
                attention: true,
                rnn: false,
                temp_walk: false,
                scalability: true,
                supervision: "unsupervised",
            },
            TgnVariant::Tgn => Anatomy {
                memory: true,
                attention: true,
                rnn: true,
                temp_walk: false,
                scalability: false,
                supervision: "self (semi)-supervised",
            },
        }
    }

    fn reset_state(&mut self) {
        self.memory.reset();
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true, false).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, neg_scores, _) = self.run_batch(ctx, batch, neg, false, false);
        (pos, neg_scores)
    }

    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Ranking is a pure read of the pre-batch memory: embed + decode only
        // — no messages, no GRU step, no `memory.write` — so the model's
        // stream state is exactly what `eval_batch` will see next. The RNG is
        // derived from the query content (`ranking_rng`), leaving the model's
        // own stream untouched.
        let n = batch.len();
        let TgnFamily {
            weights,
            core,
            memory,
            ..
        } = self;
        let mut rng = ranking_rng(batch, cand_dsts);
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let mut g = Graph::new(&core.store);
        let src = weights.embed(&mut g, ctx, memory, &srcs, &times, &mut rng);
        let dst = weights.embed(&mut g, ctx, memory, &dsts, &times, &mut rng);
        let pos_logit = weights.decoder.forward(&mut g, src, dst);
        let pos: Vec<f32> = {
            let m = g.value(pos_logit);
            (0..n).map(|r| m.get(r, 0)).collect()
        };
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            let block = &cand_dsts[j * n..(j + 1) * n];
            let cand = weights.embed(&mut g, ctx, memory, block, &times, &mut rng);
            let logit = weights.decoder.forward(&mut g, src, cand);
            let m = g.value(logit);
            cands.extend((0..n).map(|r| m.get(r, 0)));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        // Use the true destinations as "negatives" — scores are discarded.
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        self.run_batch(ctx, batch, &negs, false, true).3
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.core.param_bytes() + self.memory.heap_bytes()
    }
}
