//! # benchtemp-models
//!
//! The TGNN model zoo of the BenchTemp reproduction: JODIE, DyRep, TGN,
//! TGAT, CAWN, NeurTW, NAT, the authors' TeMP, and the EdgeBank baseline —
//! all implementing [`benchtemp_core::TgnnModel`] on the shared autograd
//! substrate.

pub mod common;
pub mod edgebank;
pub mod nat;
pub mod snapshot_gnn;
pub mod temp_model;
pub mod tgat;
pub mod tgn_family;
pub mod walk_models;
pub mod walks;
pub mod zoo;

pub use common::ModelConfig;
pub use edgebank::{EdgeBank, EdgeBankVariant};
pub use nat::Nat;
pub use snapshot_gnn::SnapshotGnn;
pub use temp_model::Temp;
pub use tgat::Tgat;
pub use tgn_family::{TgnFamily, TgnVariant};
pub use walk_models::{WalkKind, WalkModel};
pub use zoo::{build, ALL_MODELS, PAPER_MODELS};
