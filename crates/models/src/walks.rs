//! Temporal-walk machinery shared by CAWN and NeurTW: backward temporal
//! walk sampling and the set-based *index anonymization* of causal
//! anonymous walks (Wang et al., ICLR 2021 §3.2).
//!
//! A walk starts at a node at query time and repeatedly steps to a temporal
//! neighbor strictly earlier in time. Anonymization replaces node identity
//! with *position-hit counts* relative to the walk sets of the two endpoint
//! nodes of the candidate edge — the correlation between those count
//! vectors is the motif signal that makes walk-based models strong on
//! inductive (New-New) link prediction.

use std::collections::BTreeMap;

use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::neighbors::{BackendScratch, SamplingStrategy};
use benchtemp_tensor::init::SeededRng;

/// One backward temporal walk of fixed budget `L` steps; dead ends are
/// padded and masked.
#[derive(Clone, Debug)]
pub struct TemporalWalk {
    /// Visited nodes: `nodes[0]` is the start; length `L+1` (padded).
    pub nodes: Vec<usize>,
    /// Edge times of each hop (`L` entries; padded with the previous time).
    pub hop_times: Vec<f64>,
    /// Edge-feature row of each hop (`L` entries, padded 0).
    pub feat_idx: Vec<usize>,
    /// Validity of each hop.
    pub valid: Vec<bool>,
}

impl TemporalWalk {
    pub fn len_budget(&self) -> usize {
        self.valid.len()
    }

    /// Number of valid hops actually taken.
    pub fn valid_hops(&self) -> usize {
        self.valid.iter().filter(|&&v| v).count()
    }
}

/// Sample `m` backward walks of `l` hops from `start` at time `t`.
///
/// Convenience wrapper over [`sample_walks_with`] that allocates a fresh
/// [`BackendScratch`]; hot loops should hold one and call the `_with` form.
pub fn sample_walks(
    ctx: &StreamContext,
    start: usize,
    t: f64,
    m: usize,
    l: usize,
    strategy: SamplingStrategy,
    rng: &mut SeededRng,
) -> Vec<TemporalWalk> {
    let mut scratch = BackendScratch::new();
    sample_walks_with(ctx, start, t, m, l, strategy, rng, &mut scratch)
}

/// Sample `m` backward walks of `l` hops from `start` at time `t`, reusing
/// the caller's scratch. Each hop goes through the scalar `sample_one` fast
/// path, so no per-hop `Vec` is allocated and the RNG stream is identical
/// to the old `sample_before(.., 1, ..)` loop.
#[allow(clippy::too_many_arguments)]
pub fn sample_walks_with(
    ctx: &StreamContext,
    start: usize,
    t: f64,
    m: usize,
    l: usize,
    strategy: SamplingStrategy,
    rng: &mut SeededRng,
    scratch: &mut BackendScratch,
) -> Vec<TemporalWalk> {
    (0..m)
        .map(|_| {
            let mut nodes = Vec::with_capacity(l + 1);
            let mut hop_times = Vec::with_capacity(l);
            let mut feat_idx = Vec::with_capacity(l);
            let mut valid = Vec::with_capacity(l);
            nodes.push(start);
            let mut cur = start;
            let mut cur_t = t;
            for _ in 0..l {
                let step = ctx.neighbors.sample_one(cur, cur_t, strategy, rng, scratch);
                match step {
                    Some(ev) => {
                        cur = ev.neighbor;
                        cur_t = ev.t;
                        nodes.push(cur);
                        hop_times.push(ev.t);
                        feat_idx.push(ctx.graph.events[ev.event_idx].feat_idx);
                        valid.push(true);
                    }
                    None => {
                        nodes.push(cur);
                        hop_times.push(cur_t);
                        feat_idx.push(0);
                        valid.push(false);
                    }
                }
            }
            TemporalWalk {
                nodes,
                hop_times,
                feat_idx,
                valid,
            }
        })
        .collect()
}

/// Position-hit counts of a walk set: node → (L+1)-vector of how many walks
/// visit the node at each position. This is the `g(w, S)` function of CAW.
///
/// Returns a `BTreeMap` so iteration emits position features in sorted
/// node order — a `HashMap` here would feed `RandomState`-dependent order
/// into anything that drains it, breaking cross-process bit-identity (the
/// `no-hashmap-iteration-in-numeric-path` audit rule; see DESIGN.md §10).
pub fn position_counts(walks: &[TemporalWalk]) -> BTreeMap<usize, Vec<f32>> {
    let mut counts: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
    let budget = walks.first().map(|w| w.len_budget() + 1).unwrap_or(0);
    for w in walks {
        for (pos, &node) in w.nodes.iter().enumerate() {
            // Padded tail repeats the last valid node; only count real hops.
            if pos > 0 && !w.valid[pos - 1] {
                continue;
            }
            counts.entry(node).or_insert_with(|| vec![0.0; budget])[pos] += 1.0;
        }
    }
    counts
}

/// Anonymized encoding of one node occurrence relative to a pair of walk
/// sets: `[g(w, S_a) ; g(w, S_b)] / m` — dimension `2(L+1)`.
pub fn anonymize(
    node: usize,
    counts_a: &BTreeMap<usize, Vec<f32>>,
    counts_b: &BTreeMap<usize, Vec<f32>>,
    l: usize,
    m: usize,
) -> Vec<f32> {
    let mut enc = Vec::with_capacity(2 * (l + 1));
    let inv = 1.0 / m.max(1) as f32;
    for counts in [counts_a, counts_b] {
        match counts.get(&node) {
            Some(v) => enc.extend(v.iter().map(|&c| c * inv)),
            None => enc.extend(std::iter::repeat_n(0.0, l + 1)),
        }
    }
    enc
}

/// The anonymized-walk encoding dimension for walk length `l`.
pub fn anon_dim(l: usize) -> usize {
    2 * (l + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;
    use benchtemp_tensor::init;

    fn setup() -> (benchtemp_graph::TemporalGraph, NeighborFinder) {
        let g = GeneratorConfig::small("walks", 71).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        (g, nf)
    }

    #[test]
    fn walks_go_backward_in_time() {
        let (g, nf) = setup();
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut rng = init::rng(1);
        let start = g.events.last().unwrap().src;
        let walks = sample_walks(
            &ctx,
            start,
            900.0,
            8,
            3,
            SamplingStrategy::Uniform,
            &mut rng,
        );
        assert_eq!(walks.len(), 8);
        for w in &walks {
            assert_eq!(w.nodes[0], start);
            let mut prev = 900.0;
            for (i, &ht) in w.hop_times.iter().enumerate() {
                if w.valid[i] {
                    assert!(ht < prev, "hop times must strictly decrease");
                    prev = ht;
                }
            }
        }
    }

    #[test]
    fn dead_end_walks_are_masked() {
        let (g, nf) = setup();
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut rng = init::rng(2);
        // t=0: no history anywhere → every hop invalid.
        let walks = sample_walks(&ctx, 0, 0.0, 3, 2, SamplingStrategy::Uniform, &mut rng);
        for w in &walks {
            assert!(w.valid.iter().all(|&v| !v));
            assert_eq!(w.valid_hops(), 0);
        }
    }

    #[test]
    fn position_counts_sum_to_walk_count_at_position_zero() {
        let (g, nf) = setup();
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut rng = init::rng(3);
        let start = g.events.last().unwrap().src;
        let walks = sample_walks(
            &ctx,
            start,
            900.0,
            6,
            2,
            SamplingStrategy::Uniform,
            &mut rng,
        );
        let counts = position_counts(&walks);
        // The start node is at position 0 of every walk.
        assert_eq!(counts[&start][0], 6.0);
        // Total hits at position 1 equals the number of walks with a valid first hop.
        let hits_p1: f32 = counts.values().map(|v| v[1]).sum();
        let valid1 = walks.iter().filter(|w| w.valid[0]).count();
        assert_eq!(hits_p1, valid1 as f32);
    }

    #[test]
    fn anonymize_is_identity_blind() {
        // Two different start nodes with identical walk shapes produce the
        // same encodings — the whole point of anonymization.
        let mut w1 = TemporalWalk {
            nodes: vec![5, 7, 5],
            hop_times: vec![2.0, 1.0],
            feat_idx: vec![0, 0],
            valid: vec![true, true],
        };
        let w2 = TemporalWalk {
            nodes: vec![100, 200, 100],
            hop_times: vec![2.0, 1.0],
            feat_idx: vec![0, 0],
            valid: vec![true, true],
        };
        let c1 = position_counts(std::slice::from_ref(&w1));
        let c2 = position_counts(std::slice::from_ref(&w2));
        let e1 = anonymize(5, &c1, &c1, 2, 1);
        let e2 = anonymize(100, &c2, &c2, 2, 1);
        assert_eq!(e1, e2);
        w1.nodes[1] = 5; // different shape now
        let c1b = position_counts(&[w1]);
        assert_ne!(anonymize(5, &c1b, &c1b, 2, 1), e1);
    }

    #[test]
    fn anonymize_unknown_node_is_zero_vector() {
        let counts = BTreeMap::new();
        let enc = anonymize(42, &counts, &counts, 2, 4);
        assert_eq!(enc, vec![0.0; 6]);
        assert_eq!(enc.len(), anon_dim(2));
    }

    #[test]
    fn joint_neighborhood_signal_exists() {
        // For a true edge (u, v), u should appear in v's walk-set counts (or
        // vice versa) far more often than for a random negative — the motif
        // signal CAWN exploits. Statistical check over many events.
        let (g, nf) = setup();
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut rng = init::rng(4);
        let mut pos_overlap = 0usize;
        let mut neg_overlap = 0usize;
        let events = &g.events[g.num_events() - 300..];
        for ev in events {
            let wu = sample_walks(
                &ctx,
                ev.src,
                ev.t,
                6,
                2,
                SamplingStrategy::Uniform,
                &mut rng,
            );
            let wv = sample_walks(
                &ctx,
                ev.dst,
                ev.t,
                6,
                2,
                SamplingStrategy::Uniform,
                &mut rng,
            );
            let cu = position_counts(&wu);
            let cv = position_counts(&wv);
            let joint = cu.keys().filter(|k| cv.contains_key(k)).count();
            if joint > 0 {
                pos_overlap += 1;
            }
            let neg = (ev.dst + 13) % (g.num_nodes - g.num_users) + g.num_users;
            let wn = sample_walks(&ctx, neg, ev.t, 6, 2, SamplingStrategy::Uniform, &mut rng);
            let cn = position_counts(&wn);
            if cu.keys().any(|k| cn.contains_key(k)) {
                neg_overlap += 1;
            }
        }
        assert!(
            pos_overlap > neg_overlap,
            "walk overlap should separate positives ({pos_overlap}) from negatives ({neg_overlap})"
        );
    }
}
