//! SnapshotGNN — the discrete-time baseline family of §5 Related Work
//! (EvolveGCN/VGRNN style): slice the stream into snapshots, run a static
//! mean-aggregation GCN per snapshot, and evolve node states across
//! snapshots with a GRU.
//!
//! The paper's thesis is that continuous-time models beat this paradigm on
//! interaction streams; having the baseline in the zoo lets the harnesses
//! quantify that gap on the same pipeline.
//!
//! Implementation notes: node states live in a detached [`NodeMemory`]
//! refreshed once per snapshot boundary (as the batch stream crosses into
//! a new window); scoring uses the current states plus a recency feature.
//! Gradients flow through the scoring head and through the state-refresh
//! computation of the most recent boundary, truncated like the TGN family.

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::snapshots::SnapshotSequence;
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::nn::{GruCell, Linear, MergeLayer, TimeEncode};
use benchtemp_tensor::{Graph, Matrix};

use crate::common::{pos_neg_targets, BatchView, ModelConfig, ModelCore, NodeMemory};

struct Weights {
    feat_proj: Linear,
    gcn1: Linear,
    gcn2: Linear,
    evolve: GruCell,
    time_enc: TimeEncode,
    decoder: MergeLayer,
}

/// The snapshot-sequence GNN baseline.
pub struct SnapshotGnn {
    weights: Weights,
    core: ModelCore,
    states: NodeMemory,
    /// Number of snapshots the stream is discretized into.
    num_snapshots: usize,
    /// Snapshot index the states currently reflect (-1 = fresh).
    current_snapshot: isize,
    embed_dim: usize,
}

impl SnapshotGnn {
    pub fn new(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let d = cfg.embed_dim;
        let td = cfg.time_dim;
        let (store, rng) = (&mut core.store, &mut core.rng);
        let weights = Weights {
            feat_proj: Linear::new(store, rng, "feat_proj", graph.node_dim(), d),
            gcn1: Linear::new(store, rng, "gcn1", d, d),
            gcn2: Linear::new(store, rng, "gcn2", d, d),
            evolve: GruCell::new(store, rng, "evolve", d, d),
            time_enc: TimeEncode::new(store, "time_enc", td),
            decoder: MergeLayer::new(store, rng, "decoder", 2 * d + td, d, d, 1),
        };
        SnapshotGnn {
            weights,
            core,
            states: NodeMemory::new(graph.num_nodes, d),
            num_snapshots: 12,
            current_snapshot: -1,
            embed_dim: d,
        }
    }

    /// Mean-aggregate one GCN layer over a snapshot adjacency:
    /// `h' = relu(W·h + W_n·mean(h_neighbors))` computed outside the tape
    /// for the aggregation (inputs are detached states) and on-tape for the
    /// projections.
    fn refresh_states(&mut self, ctx: &StreamContext, snapshot_idx: usize, upto_t: f64) {
        let seq = SnapshotSequence::build(ctx.graph, &ctx.graph.events, self.num_snapshots);
        let snap = &seq.snapshots[snapshot_idx.min(seq.len() - 1)];
        let n = ctx.graph.num_nodes;
        // Mean of neighbor states per node (detached).
        let adj = snap.adjacency(n);
        let mut agg = Matrix::zeros(n, self.embed_dim);
        for (node, neighbors) in adj.iter().enumerate() {
            if neighbors.is_empty() {
                continue;
            }
            let inv = 1.0 / neighbors.len() as f32;
            for &nb in neighbors {
                let row = self.states.row(nb);
                for (o, &x) in agg.row_mut(node).iter_mut().zip(row) {
                    *o += x * inv;
                }
            }
        }

        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let h = {
            let states = self.states.rows_var(&mut g, &(0..n).collect::<Vec<_>>());
            let feats = g.input(ctx.graph.node_features.clone());
            let fp = w.feat_proj.forward(&mut g, feats);
            g.add(states, fp)
        };
        let msg = {
            let a = g.input(agg);
            let m1 = w.gcn1.forward(&mut g, a);
            let m1 = g.relu(m1);
            let m2 = w.gcn2.forward(&mut g, m1);
            g.relu(m2)
        };
        let new_states = w.evolve.forward(&mut g, msg, h);
        let values = g.value(new_states).clone();
        drop(g);
        let nodes: Vec<usize> = (0..n).collect();
        let times = vec![upto_t; n];
        self.states.write(&nodes, &values, &times);
        self.current_snapshot = snapshot_idx as isize;
    }

    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
    ) -> (f32, Vec<f32>, Vec<f32>, Matrix) {
        let view = BatchView::new(batch, neg_dsts);
        let n = view.len();
        // Whole-batch dense span; the nested sampling span below subtracts
        // itself from its exclusive time.
        let _dense = obs::span(stage::DENSE);

        // Advance snapshot states if the batch crossed a window boundary
        // (snapshot construction plays the role of neighbor sampling here).
        obs::timed(stage::SAMPLING, || {
            let seq = SnapshotSequence::build(ctx.graph, &ctx.graph.events, self.num_snapshots);
            let target = seq.snapshot_at(view.times[0]) as isize;
            let mut step = self.current_snapshot;
            while step < target {
                step += 1;
                // Refresh from the previous completed window (step-1), so the
                // states never see the current window's future edges.
                if step > 0 {
                    self.refresh_states(ctx, (step - 1) as usize, view.times[0]);
                }
                self.current_snapshot = step;
            }
        });

        let src_dt = self.states.deltas(&view.srcs, &view.times);
        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let src = self.states.rows_var(&mut g, &view.srcs);
        let dst = self.states.rows_var(&mut g, &view.dsts);
        let neg = self.states.rows_var(&mut g, &view.negs);
        let te = w.time_enc.forward_slice(&mut g, &src_dt);
        let src_full = {
            let cat = g.concat_cols(src, src);
            g.concat_cols(cat, te)
        };
        let pos_logit = w.decoder.forward(&mut g, src_full, dst);
        let neg_logit = w.decoder.forward(&mut g, src_full, neg);
        let logits = g.concat_rows(pos_logit, neg_logit);
        let targets = pos_neg_targets(n);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();
        let lm = g.value(logits).clone();
        let pos: Vec<f32> = (0..n).map(|r| lm.get(r, 0)).collect();
        let negs: Vec<f32> = (0..n).map(|r| lm.get(n + r, 0)).collect();
        let src_emb = g.value(src).clone();
        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            self.core.adam.step(&mut self.core.store, &grads);
        }
        (loss_val, pos, negs, src_emb)
    }
}

impl TgnnModel for SnapshotGnn {
    fn name(&self) -> &'static str {
        "SnapshotGNN"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: true,
            attention: false,
            rnn: true,
            temp_walk: false,
            scalability: true,
            supervision: "self (semi)-supervised",
        }
    }

    fn reset_state(&mut self) {
        self.states.reset();
        self.current_snapshot = -1;
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, negs, _) = self.run_batch(ctx, batch, neg, false);
        (pos, negs)
    }

    fn score_candidates(
        &mut self,
        _ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Score from the *current* snapshot states without advancing the
        // snapshot cursor — the positives are scored fresh under the same
        // (possibly one-window-stale) state as the candidates, so ranking
        // queries are self-consistent, and `eval_batch` still performs the
        // boundary crossing itself.
        let n = batch.len();
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let src_dt = self.states.deltas(&srcs, &times);
        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let src = self.states.rows_var(&mut g, &srcs);
        let te = w.time_enc.forward_slice(&mut g, &src_dt);
        let src_full = {
            let cat = g.concat_cols(src, src);
            g.concat_cols(cat, te)
        };
        let score_block = |g: &mut Graph, this: &Self, block: &[usize]| -> Vec<f32> {
            let b = this.states.rows_var(g, block);
            let logit = w.decoder.forward(g, src_full, b);
            let lm = g.value(logit);
            (0..n).map(|r| lm.get(r, 0)).collect()
        };
        let pos = score_block(&mut g, self, &dsts);
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            cands.extend(score_block(&mut g, self, &cand_dsts[j * n..(j + 1) * n]));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        self.run_batch(ctx, batch, &negs, false).3
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.core.param_bytes() + self.states.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    fn setup() -> benchtemp_graph::TemporalGraph {
        GeneratorConfig::small("sgnn", 701).generate()
    }

    #[test]
    fn states_refresh_at_snapshot_boundaries() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = SnapshotGnn::new(
            ModelConfig {
                embed_dim: 16,
                ..Default::default()
            },
            &g,
        );
        assert_eq!(m.current_snapshot, -1);
        // Drive a late batch → multiple boundary crossings.
        let late = &g.events[1200..1260];
        let negs: Vec<usize> = late.iter().map(|_| g.num_users).collect();
        m.eval_batch(&ctx, late, &negs);
        assert!(m.current_snapshot >= 0);
        // States are no longer all-zero after the GCN refresh.
        let touched = (0..g.num_nodes).any(|n| m.states.row(n).iter().any(|&x| x != 0.0));
        assert!(touched);
    }

    #[test]
    fn training_reduces_loss() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = SnapshotGnn::new(
            ModelConfig {
                embed_dim: 16,
                lr: 1e-2,
                ..Default::default()
            },
            &g,
        );
        let batch = &g.events[700..780];
        let negs: Vec<usize> = batch
            .iter()
            .enumerate()
            .map(|(i, _)| g.num_users + (i * 3) % (g.num_nodes - g.num_users))
            .collect();
        let first = m.train_batch(&ctx, batch, &negs);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&ctx, batch, &negs);
        }
        assert!(last < first, "SnapshotGNN loss went {first} → {last}");
    }

    #[test]
    fn reset_rewinds_to_initial() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = SnapshotGnn::new(
            ModelConfig {
                embed_dim: 16,
                ..Default::default()
            },
            &g,
        );
        let batch = &g.events[..40];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users + 1).collect();
        let (a, _) = m.eval_batch(&ctx, batch, &negs);
        let negs2: Vec<usize> = g.events[40..900].iter().map(|_| g.num_users).collect();
        let _ = m.eval_batch(&ctx, &g.events[40..900], &negs2);
        m.reset_state();
        let (b, _) = m.eval_batch(&ctx, batch, &negs);
        assert_eq!(a, b);
    }
}
