//! Shared model plumbing: optimizer/parameter bundle, detached node-memory
//! store (the truncated-gradient memory scheme of the TGN family), neighbor
//! batch assembly for attention models, and the shared hyperparameters.

use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::neighbors::{FrontierHop, SamplingStrategy};
use benchtemp_graph::temporal_graph::Interaction;
use benchtemp_tensor::init::{self, SeededRng};
use benchtemp_tensor::{Adam, Graph, Matrix, ParamStore, Var};

/// Hyperparameters shared across the zoo. Defaults are sized for the CPU
/// substrate; the paper's 172-dim attention stacks are available by raising
/// `embed_dim`/`neighbors`/`layers`.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Node-embedding width.
    pub embed_dim: usize,
    /// Time-encoding width.
    pub time_dim: usize,
    /// Attention heads (must divide the attention model dim; Eq. 1).
    pub heads: usize,
    /// Temporal neighbors sampled per hop (k).
    pub neighbors: usize,
    /// Attention layers (TGAT depth).
    pub layers: usize,
    /// Walks per node (M) for CAWN/NeurTW.
    pub walks: usize,
    /// Walk length (L) for CAWN/NeurTW.
    pub walk_len: usize,
    /// Adam learning rate. The paper trains at 1e-4 over many epochs on
    /// full-size data; the scaled default compensates for far fewer steps.
    pub lr: f32,
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            embed_dim: 48,
            time_dim: 16,
            heads: 2,
            neighbors: 6,
            layers: 2,
            walks: 4,
            walk_len: 2,
            lr: 3e-3,
            seed: 0,
        }
    }
}

impl ModelConfig {
    /// The paper's §4.1 protocol values where they are model-agnostic.
    pub fn paper_protocol(mut self) -> Self {
        self.lr = 1e-4;
        self
    }
}

/// Parameter store + optimizer + RNG: the bundle every model owns.
/// Delegation target for the `TgnnModel` boilerplate. Dense/sampling time
/// is attributed by `benchtemp-obs` spans, not carried here.
pub struct ModelCore {
    pub store: ParamStore,
    pub adam: Adam,
    pub rng: SeededRng,
}

impl ModelCore {
    pub fn new(lr: f32, seed: u64) -> Self {
        ModelCore {
            store: ParamStore::new(),
            adam: Adam::new(lr),
            rng: init::rng(seed),
        }
    }

    pub fn snapshot(&self) -> Vec<Matrix> {
        self.store.snapshot()
    }

    pub fn restore(&mut self, snap: &[Matrix]) {
        self.store.restore(snap);
    }

    pub fn param_bytes(&self) -> usize {
        self.store.heap_bytes()
    }
}

/// Detached per-node memory (TGN's Memory module). Values are raw matrices;
/// gradients flow through the *current batch's* computation only — the
/// truncated-gradient scheme the reference implementations use.
pub struct NodeMemory {
    mem: Matrix,
    last_update: Vec<f64>,
    dim: usize,
}

impl NodeMemory {
    pub fn new(num_nodes: usize, dim: usize) -> Self {
        NodeMemory {
            mem: Matrix::zeros(num_nodes, dim),
            last_update: vec![0.0; num_nodes],
            dim,
        }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn reset(&mut self) {
        self.mem.fill_zero();
        self.last_update.iter_mut().for_each(|t| *t = 0.0);
    }

    /// Gather memory rows for a node list (detached copy).
    pub fn rows(&self, nodes: &[usize]) -> Matrix {
        // audit-allow(no-scalar-gather-in-hot-path): scalar baseline kept for equivalence tests and non-tape consumers; tape paths use `rows_var`
        self.mem.gather_rows(nodes)
    }

    /// Memory rows as a pooled tape leaf: one run-length-coalesced SoA
    /// gather straight into recycled tape storage — bit-identical to
    /// `g.input(self.rows(nodes))` without the per-row copy loop or the
    /// intermediate allocation.
    pub fn rows_var(&self, g: &mut Graph, nodes: &[usize]) -> Var {
        g.gather_rows_from(&self.mem, nodes)
    }

    pub fn row(&self, node: usize) -> &[f32] {
        self.mem.row(node)
    }

    /// Δt since each node's last memory update.
    pub fn deltas(&self, nodes: &[usize], now: &[f64]) -> Vec<f32> {
        nodes
            .iter()
            .zip(now)
            .map(|(&n, &t)| (t - self.last_update[n]).max(0.0) as f32)
            .collect()
    }

    /// Write updated memory rows (last write wins within a batch) and stamp
    /// update times.
    pub fn write(&mut self, nodes: &[usize], values: &Matrix, now: &[f64]) {
        debug_assert_eq!(values.rows(), nodes.len());
        debug_assert_eq!(values.cols(), self.dim);
        for (r, (&n, &t)) in nodes.iter().zip(now).enumerate() {
            self.mem.set_row(n, values.row(r));
            self.last_update[n] = t;
        }
    }

    pub fn heap_bytes(&self) -> usize {
        self.mem.heap_bytes() + self.last_update.capacity() * std::mem::size_of::<f64>()
    }
}

/// Assembled temporal-neighbor block for grouped attention: for each of `n`
/// (node, time) queries, `k` sampled neighbors flattened to `n·k` rows.
pub struct NeighborBatch {
    /// Neighbor node ids, padded with 0 where invalid.
    pub ids: Vec<usize>,
    /// Originating event feature rows, padded with 0.
    pub feat_idx: Vec<usize>,
    /// Query time minus edge time, 0.0 where invalid.
    pub dts: Vec<f32>,
    /// Validity per slot.
    pub mask: Vec<bool>,
    pub k: usize,
}

impl NeighborBatch {
    /// Sample `k` temporal neighbors per (node, time) query.
    ///
    /// One RNG draw seeds the batched frontier engine, which then expands
    /// every query under its own deterministic per-root stream — the whole
    /// batch is sampled in one `sample_frontier` call that parallelises over
    /// the worker pool with bit-identical results at any thread count.
    pub fn sample(
        ctx: &StreamContext,
        nodes: &[usize],
        times: &[f64],
        k: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
    ) -> Self {
        let f = ctx
            .neighbors
            .sample_frontier(nodes, times, k, 1, strategy, rng.next_u64());
        Self::from_hop(f.hops.into_iter().next().expect("one hop level"), k)
    }

    /// Wrap one expanded frontier hop as an attention block. The hop's SoA
    /// columns move in wholesale — the frontier engine already resolved
    /// event indices to edge-feature rows (padded slots keep row 0), so no
    /// per-slot resolution loop runs here.
    pub fn from_hop(hop: FrontierHop, k: usize) -> Self {
        NeighborBatch {
            ids: hop.nodes,
            feat_idx: hop.feat_idx,
            dts: hop.dts,
            mask: hop.mask,
            k,
        }
    }

    /// Node features of the neighbor slots ((n·k) × node_dim).
    pub fn node_feats(&self, ctx: &StreamContext) -> Matrix {
        // audit-allow(no-scalar-gather-in-hot-path): scalar baseline kept for the gather equivalence tests; tape paths use `node_feats_var`
        ctx.graph.node_features.gather_rows(&self.ids)
    }

    /// Edge features of the originating events ((n·k) × edge_dim).
    pub fn edge_feats(&self, ctx: &StreamContext) -> Matrix {
        // audit-allow(no-scalar-gather-in-hot-path): scalar baseline kept for the gather equivalence tests; tape paths use `edge_feats_var`
        ctx.graph.edge_features.gather_rows(&self.feat_idx)
    }

    /// Neighbor node features as a pooled tape leaf (coalesced SoA gather);
    /// bit-identical to `g.input(self.node_feats(ctx))`.
    pub fn node_feats_var(&self, g: &mut Graph, ctx: &StreamContext) -> Var {
        g.gather_rows_from(&ctx.graph.node_features, &self.ids)
    }

    /// Originating-event edge features as a pooled tape leaf (coalesced SoA
    /// gather); bit-identical to `g.input(self.edge_feats(ctx))`.
    pub fn edge_feats_var(&self, g: &mut Graph, ctx: &StreamContext) -> Var {
        g.gather_rows_from(&ctx.graph.edge_features, &self.feat_idx)
    }

    /// Times per (node,time) pair of the sampled events (for recursion).
    pub fn event_times(&self, times: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ids.len());
        for (i, &t) in times.iter().enumerate() {
            for j in 0..self.k {
                out.push(t - self.dts[i * self.k + j] as f64);
            }
        }
        out
    }
}

/// Batch views used by every model: source, destination and negative
/// destination ids plus event times.
pub struct BatchView {
    pub srcs: Vec<usize>,
    pub dsts: Vec<usize>,
    pub negs: Vec<usize>,
    pub times: Vec<f64>,
    pub feat_idx: Vec<usize>,
}

impl BatchView {
    pub fn new(batch: &[Interaction], neg_dsts: &[usize]) -> Self {
        assert_eq!(
            batch.len(),
            neg_dsts.len(),
            "one negative per positive edge"
        );
        BatchView {
            srcs: batch.iter().map(|e| e.src).collect(),
            dsts: batch.iter().map(|e| e.dst).collect(),
            negs: neg_dsts.to_vec(),
            times: batch.iter().map(|e| e.t).collect(),
            feat_idx: batch.iter().map(|e| e.feat_idx).collect(),
        }
    }

    /// Edge features of the batch's events.
    pub fn edge_feats(&self, ctx: &StreamContext) -> Matrix {
        // audit-allow(no-scalar-gather-in-hot-path): scalar baseline kept for the gather equivalence tests; tape paths use `edge_feats_var`
        ctx.graph.edge_features.gather_rows(&self.feat_idx)
    }

    /// Batch edge features as a pooled tape leaf (coalesced SoA gather);
    /// bit-identical to `g.input(self.edge_feats(ctx))`.
    pub fn edge_feats_var(&self, g: &mut Graph, ctx: &StreamContext) -> Var {
        g.gather_rows_from(&ctx.graph.edge_features, &self.feat_idx)
    }

    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }
}

/// BCE targets for a pos+neg score stack: `[1…1, 0…0]`.
pub fn pos_neg_targets(n: usize) -> Vec<f32> {
    let mut t = vec![1.0f32; n];
    t.extend(std::iter::repeat_n(0.0, n));
    t
}

/// Private RNG for the filtered-negative ranking path
/// (`TgnnModel::score_candidates`): an FNV-1a hash of the batch content and
/// candidate ids seeds a fresh stream, so candidate scoring never draws
/// from the model's own RNG — enabling ranking cannot perturb training or
/// AUC/AP sampling — and the stream is identical at any thread count and
/// across processes.
pub fn ranking_rng(batch: &[Interaction], cand_dsts: &[usize]) -> SeededRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(batch.len() as u64);
    for e in batch {
        eat(e.src as u64);
        eat(e.dst as u64);
        eat(e.t.to_bits());
    }
    for &c in cand_dsts {
        eat(c as u64);
    }
    init::rng(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    #[test]
    fn memory_roundtrip_and_deltas() {
        let mut m = NodeMemory::new(5, 3);
        let vals = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        m.write(&[1, 3], &vals, &[10.0, 20.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(3), &[4.0, 5.0, 6.0]);
        assert_eq!(
            m.deltas(&[1, 3, 0], &[15.0, 25.0, 5.0]),
            vec![5.0, 5.0, 5.0]
        );
        m.reset();
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn memory_last_write_wins() {
        let mut m = NodeMemory::new(3, 2);
        let vals = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        m.write(&[0, 0], &vals, &[1.0, 2.0]);
        assert_eq!(m.row(0), &[2.0, 2.0]);
    }

    #[test]
    fn neighbor_batch_pads_and_masks() {
        let g = GeneratorConfig::small("nb", 41).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut rng = init::rng(1);
        // One query at t=0 (no history) and one late query (some history).
        let nodes = [g.events[0].src, g.events.last().unwrap().src];
        let times = [0.0, 999.0];
        let nb =
            NeighborBatch::sample(&ctx, &nodes, &times, 4, SamplingStrategy::Uniform, &mut rng);
        assert_eq!(nb.mask.len(), 8);
        assert!(
            nb.mask[..4].iter().all(|&m| !m),
            "t=0 query must be fully masked"
        );
        assert!(
            nb.mask[4..].iter().any(|&m| m),
            "late query should have neighbors"
        );
        assert_eq!(nb.node_feats(&ctx).shape(), (8, g.node_dim()));
        assert_eq!(nb.edge_feats(&ctx).shape(), (8, g.edge_dim()));
    }

    #[test]
    fn batch_view_aligns() {
        let g = GeneratorConfig::small("bv", 43).generate();
        let negs: Vec<usize> = g.events[..5].iter().map(|_| g.num_users).collect();
        let v = BatchView::new(&g.events[..5], &negs);
        assert_eq!(v.len(), 5);
        assert_eq!(v.srcs[0], g.events[0].src);
        assert_eq!(v.times[4], g.events[4].t);
    }

    #[test]
    fn targets_layout() {
        assert_eq!(pos_neg_targets(2), vec![1.0, 1.0, 0.0, 0.0]);
    }
}
