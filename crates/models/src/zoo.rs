//! Model registry: build any benchmarked model by name — what the table
//! harnesses and the leaderboard iterate over.

use benchtemp_core::pipeline::TgnnModel;
use benchtemp_graph::temporal_graph::TemporalGraph;

use crate::common::ModelConfig;
use crate::edgebank::EdgeBank;
use crate::nat::Nat;
use crate::snapshot_gnn::SnapshotGnn;
use crate::temp_model::Temp;
use crate::tgat::Tgat;
use crate::tgn_family::TgnFamily;
use crate::walk_models::WalkModel;

/// The seven models of the main-paper comparison, in Table 1 order.
pub const PAPER_MODELS: [&str; 7] = ["JODIE", "DyRep", "TGN", "TGAT", "CAWN", "NeurTW", "NAT"];

/// All constructible models: the paper seven, TeMP, the EdgeBank baseline,
/// the NeurTW NODE-ablation variant, and the §5 snapshot-sequence baseline.
pub const ALL_MODELS: [&str; 11] = [
    "JODIE",
    "DyRep",
    "TGN",
    "TGAT",
    "CAWN",
    "NeurTW",
    "NAT",
    "TeMP",
    "EdgeBank",
    "NeurTW-noNODE",
    "SnapshotGNN",
];

/// Build a model by its paper name. Panics on unknown names (the harnesses
/// validate against [`ALL_MODELS`] first).
pub fn build(name: &str, cfg: ModelConfig, graph: &TemporalGraph) -> Box<dyn TgnnModel> {
    match name {
        "JODIE" => Box::new(TgnFamily::jodie(cfg, graph)),
        "DyRep" => Box::new(TgnFamily::dyrep(cfg, graph)),
        "TGN" => Box::new(TgnFamily::tgn(cfg, graph)),
        "TGAT" => Box::new(Tgat::new(cfg, graph)),
        "CAWN" => Box::new(WalkModel::cawn(cfg, graph)),
        "NeurTW" => Box::new(WalkModel::neurtw(cfg, graph)),
        "NeurTW-noNODE" => Box::new(WalkModel::neurtw_without_nodes(cfg, graph)),
        "NAT" => Box::new(Nat::new(cfg, graph)),
        "TeMP" => Box::new(Temp::new(cfg, graph)),
        "EdgeBank" => Box::new(EdgeBank::unlimited()),
        "SnapshotGNN" => Box::new(SnapshotGnn::new(cfg, graph)),
        other => panic!("unknown model {other:?}; known: {ALL_MODELS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;

    #[test]
    fn every_registered_model_constructs_and_reports_name() {
        let g = GeneratorConfig::small("zoo", 111).generate();
        for name in ALL_MODELS {
            let m = build(
                name,
                ModelConfig {
                    embed_dim: 16,
                    ..Default::default()
                },
                &g,
            );
            assert_eq!(m.name(), name);
            let a = m.anatomy();
            // Table 1 spot checks.
            match name {
                "TGN" | "JODIE" | "NAT" | "TeMP" | "EdgeBank" => assert!(a.memory),
                "TGAT" | "CAWN" | "NeurTW" => assert!(!a.memory),
                _ => {}
            }
        }
    }

    #[test]
    fn paper_models_are_a_subset() {
        for m in PAPER_MODELS {
            assert!(ALL_MODELS.contains(&m));
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_name_panics() {
        let g = GeneratorConfig::small("zoo2", 112).generate();
        let _ = build("GPT-TGNN", ModelConfig::default(), &g);
    }

    #[test]
    fn walk_models_flag_temp_walk_in_anatomy() {
        let g = GeneratorConfig::small("zoo3", 113).generate();
        for name in ["CAWN", "NeurTW"] {
            let m = build(name, ModelConfig::default(), &g);
            assert!(m.anatomy().temp_walk, "{name} must flag TempWalk (Table 1)");
        }
        for name in ["TGN", "TGAT", "NAT"] {
            let m = build(name, ModelConfig::default(), &g);
            assert!(!m.anatomy().temp_walk);
        }
    }
}
