//! The temporal-walk models: **CAWN** (causal anonymous walks, Wang et al.
//! ICLR 2021) and **NeurTW** (neural temporal walks, Jin et al. NeurIPS
//! 2022), sharing one walk-encoding skeleton:
//!
//! 1. sample `M` backward temporal walks of length `L` from each endpoint;
//! 2. anonymize node identities into position-hit counts relative to the
//!    candidate pair's two walk sets (`crate::walks`);
//! 3. encode each walk with a GRU over `[anonymized id | edge feature |
//!    time encoding]` steps; masked at dead ends;
//! 4. mean-pool the pair's `2M` walk encodings and decode to a logit.
//!
//! Differences, as in the papers and Appendix C/H:
//! * CAWN samples **uniform** temporal walks; NeurTW uses **temporal-biased**
//!   sampling — the exponential form where safe, the overflow-safe piecewise
//!   weights of Eq. 2–3 on large-granularity datasets;
//! * NeurTW additionally evolves the hidden state through a **neural ODE**
//!   (RK4-integrated gated flow) across each inter-event interval, the
//!   component ablated in Table 23 (`use_nodes = false` removes it).

use std::collections::BTreeMap;

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::neighbors::{BackendScratch, SamplingStrategy};
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::init::SeededRng;
use benchtemp_tensor::nn::{GruCell, Linear, Mlp, TimeEncode};
use benchtemp_tensor::{Graph, Matrix, Var};

use crate::common::{pos_neg_targets, ranking_rng, BatchView, ModelConfig, ModelCore};
use crate::walks::{anon_dim, anonymize, position_counts, sample_walks_with, TemporalWalk};

/// Which walk model this instance is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkKind {
    Cawn,
    NeurTw {
        /// Ablation switch for the neural-ODE component (Table 23).
        use_nodes: bool,
    },
}

struct Weights {
    anon_proj: Linear,
    edge_proj: Linear,
    time_enc: TimeEncode,
    gru: GruCell,
    /// NeurTW ODE flow: `dh/ds = tanh(h·W1+b1) ⊙ σ(h·W2+b2)`.
    ode_gate: Linear,
    ode_flow: Linear,
    head: Mlp,
}

/// Sampled walk sets for one batch (per node role).
struct WalkSets {
    src: Vec<Vec<TemporalWalk>>,
    dst: Vec<Vec<TemporalWalk>>,
    neg: Vec<Vec<TemporalWalk>>,
    src_counts: Vec<BTreeMap<usize, Vec<f32>>>,
    dst_counts: Vec<BTreeMap<usize, Vec<f32>>>,
    neg_counts: Vec<BTreeMap<usize, Vec<f32>>>,
}

/// CAWN / NeurTW.
pub struct WalkModel {
    kind: WalkKind,
    weights: Weights,
    core: ModelCore,
    m: usize,
    l: usize,
    hidden: usize,
    /// Reused weighted-sampling buffers — walk hops allocate nothing.
    scratch: BackendScratch,
}

impl WalkModel {
    pub fn cawn(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(WalkKind::Cawn, cfg, graph)
    }

    pub fn neurtw(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(WalkKind::NeurTw { use_nodes: true }, cfg, graph)
    }

    /// NeurTW with the NODE component removed (Table 23 "- NODEs").
    pub fn neurtw_without_nodes(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        Self::new(WalkKind::NeurTw { use_nodes: false }, cfg, graph)
    }

    pub fn new(kind: WalkKind, cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let h = cfg.embed_dim;
        let da = 16;
        let ed = 16.min(graph.edge_dim().max(4));
        let td = cfg.time_dim;
        let l = cfg.walk_len.max(1);
        let (store, rng) = (&mut core.store, &mut core.rng);
        let weights = Weights {
            anon_proj: Linear::new(store, rng, "anon_proj", anon_dim(l), da),
            edge_proj: Linear::new(store, rng, "edge_proj", graph.edge_dim(), ed),
            time_enc: TimeEncode::new(store, "time_enc", td),
            gru: GruCell::new(store, rng, "walk_gru", da + ed + td, h),
            ode_gate: Linear::new(store, rng, "ode_gate", h, h),
            ode_flow: Linear::new(store, rng, "ode_flow", h, h),
            head: Mlp::new(store, rng, "head", h, h, 1),
        };
        WalkModel {
            kind,
            weights,
            core,
            m: cfg.walks.max(1),
            l,
            hidden: h,
            scratch: BackendScratch::new(),
        }
    }

    fn strategy(&self) -> SamplingStrategy {
        match self.kind {
            WalkKind::Cawn => SamplingStrategy::Uniform,
            // NeurTW's temporal-biased sampling, overflow-safe variant
            // (Appendix C Eq. 2–3) — correct on every time granularity.
            WalkKind::NeurTw { .. } => SamplingStrategy::TemporalSafe,
        }
    }

    fn use_nodes(&self) -> bool {
        matches!(self.kind, WalkKind::NeurTw { use_nodes: true })
    }

    /// Appendix C: NeurTW concatenates node/edge/positional features
    /// *without time features* — inter-event time enters only through the
    /// neural-ODE evolution. CAWN keeps the explicit time encoding.
    fn use_time_feats(&self) -> bool {
        matches!(self.kind, WalkKind::Cawn)
    }

    /// Sample all walk sets for a batch.
    #[allow(clippy::too_many_arguments)]
    fn sample_sets(
        ctx: &StreamContext,
        view: &BatchView,
        m: usize,
        l: usize,
        strategy: SamplingStrategy,
        rng: &mut SeededRng,
        scratch: &mut BackendScratch,
    ) -> WalkSets {
        let mut sample_role = |nodes: &[usize], rng: &mut SeededRng| -> Vec<Vec<TemporalWalk>> {
            nodes
                .iter()
                .zip(&view.times)
                .map(|(&n, &t)| sample_walks_with(ctx, n, t, m, l, strategy, rng, scratch))
                .collect()
        };
        let src = sample_role(&view.srcs, rng);
        let dst = sample_role(&view.dsts, rng);
        let neg = sample_role(&view.negs, rng);
        let counts = |sets: &[Vec<TemporalWalk>]| sets.iter().map(|w| position_counts(w)).collect();
        WalkSets {
            src_counts: counts(&src),
            dst_counts: counts(&dst),
            neg_counts: counts(&neg),
            src,
            dst,
            neg,
        }
    }

    /// Encode pairs `(src_i, dst_i)` for i in 0..n and, when `with_neg`,
    /// `(src_i, neg_i)` stacked below. Returns the pooled pair embeddings
    /// ((n or 2n) × hidden) on the tape.
    #[allow(clippy::too_many_arguments)]
    fn encode_pairs(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        view: &BatchView,
        sets: &WalkSets,
        with_neg: bool,
    ) -> Var {
        let n = view.len();
        let n_pairs = if with_neg { 2 * n } else { n };
        let walks_per_pair = 2 * self.m;
        let total = n_pairs * walks_per_pair;
        let l = self.l;
        let ad = anon_dim(l);

        // Assemble step-wise raw inputs.
        let mut anon = vec![Matrix::zeros(total, ad); l + 1];
        let mut feat_rows = vec![vec![0usize; total]; l + 1];
        let mut dts = vec![vec![0.0f32; total]; l + 1];
        let mut valid = vec![vec![0.0f32; total]; l + 1];
        let mut itaus = vec![vec![0.0f32; total]; l + 1];

        for p in 0..n_pairs {
            let i = p % n;
            let is_neg_pair = p >= n;
            let (other_walks, other_counts) = if is_neg_pair {
                (&sets.neg[i], &sets.neg_counts[i])
            } else {
                (&sets.dst[i], &sets.dst_counts[i])
            };
            let a_counts = &sets.src_counts[i];
            let t0 = view.times[i];
            for (wi, walk) in sets.src[i].iter().chain(other_walks.iter()).enumerate() {
                let row = p * walks_per_pair + wi;
                for step in 0..=l {
                    let node = walk.nodes[step];
                    let enc = anonymize(node, a_counts, other_counts, l, self.m);
                    anon[step].set_row(row, &enc);
                    if step == 0 {
                        valid[step][row] = 1.0;
                    } else {
                        let ok = walk.valid[step - 1];
                        valid[step][row] = if ok { 1.0 } else { 0.0 };
                        if ok {
                            feat_rows[step][row] = walk.feat_idx[step - 1];
                            let dt = (t0 - walk.hop_times[step - 1]).max(0.0) as f32;
                            dts[step][row] = dt;
                            // Normalized integration horizon for the ODE.
                            itaus[step][row] = (1.0 + dt).ln() * 0.1;
                        }
                    }
                }
            }
        }

        // GRU over the walk, step by step, masked at dead ends, with the
        // NeurTW ODE evolution between steps.
        let mut h = g.input(Matrix::zeros(total, self.hidden));
        for step in 0..=l {
            let x = {
                let a = g.input(anon[step].clone());
                let ap = self.weights.anon_proj.forward(g, a);
                let e = g.gather_rows_from(&ctx.graph.edge_features, &feat_rows[step]);
                let ep = self.weights.edge_proj.forward(g, e);
                let te = if self.use_time_feats() {
                    self.weights.time_enc.forward_slice(g, &dts[step])
                } else {
                    // NeurTW: no explicit time features in the walk encoder.
                    let zeros = vec![0.0f32; dts[step].len()];
                    self.weights.time_enc.forward_slice(g, &zeros)
                };
                g.concat_cols_many(&[ap, ep, te])
            };
            if self.use_nodes() && step > 0 {
                let tau = g.input(Matrix::column(&itaus[step]));
                h = self.ode_evolve(g, h, tau);
            }
            let h_new = self.weights.gru.forward(g, x, h);
            // h = v ⊙ h_new + (1-v) ⊙ h
            let v = g.input(Matrix::column(&valid[step]));
            let vn = g.mul_col_broadcast(h_new, v);
            let nv = {
                let neg_v = g.neg(v);
                g.add_scalar(neg_v, 1.0)
            };
            let keep = g.mul_col_broadcast(h, nv);
            h = g.add(vn, keep);
        }

        // Mean-pool each pair's 2M walks via a fixed block-averaging matrix.
        let mut pool = Matrix::zeros(n_pairs, total);
        let inv = 1.0 / walks_per_pair as f32;
        for p in 0..n_pairs {
            for w in 0..walks_per_pair {
                pool.set(p, p * walks_per_pair + w, inv);
            }
        }
        let pool_v = g.input(pool);
        g.matmul(pool_v, h)
    }

    /// One RK4 step of the gated neural-ODE flow over per-row horizon `tau`.
    fn ode_evolve(&self, g: &mut Graph, h: Var, tau: Var) -> Var {
        let f = |g: &mut Graph, h: Var, weights: &Weights| -> Var {
            let gate = {
                let z = weights.ode_gate.forward(g, h);
                g.sigmoid(z)
            };
            let flow = {
                let z = weights.ode_flow.forward(g, h);
                g.tanh(z)
            };
            g.mul(gate, flow)
        };
        let half_tau = g.scale(tau, 0.5);
        let k1 = f(g, h, &self.weights);
        let h2 = {
            let d = g.mul_col_broadcast(k1, half_tau);
            g.add(h, d)
        };
        let k2 = f(g, h2, &self.weights);
        let h3 = {
            let d = g.mul_col_broadcast(k2, half_tau);
            g.add(h, d)
        };
        let k3 = f(g, h3, &self.weights);
        let h4 = {
            let d = g.mul_col_broadcast(k3, tau);
            g.add(h, d)
        };
        let k4 = f(g, h4, &self.weights);
        // h + tau/6 (k1 + 2k2 + 2k3 + k4)
        let sum = {
            let k2_2 = g.scale(k2, 2.0);
            let k3_2 = g.scale(k3, 2.0);
            let s = g.add(k1, k2_2);
            let s = g.add(s, k3_2);
            g.add(s, k4)
        };
        let sixth = g.scale(tau, 1.0 / 6.0);
        let delta = g.mul_col_broadcast(sum, sixth);
        g.add(h, delta)
    }

    /// Score the (src, dst) pairs of `view` with freshly sampled walks from
    /// the caller-provided RNG — the ranking path (no training, no neg
    /// role: pass `negs: Vec::new()` and `with_neg = false` never reads it).
    fn rank_block(
        &mut self,
        ctx: &StreamContext,
        view: &BatchView,
        rng: &mut SeededRng,
    ) -> Vec<f32> {
        let strategy = self.strategy();
        let (m, l) = (self.m, self.l);
        let sets = {
            let scratch = &mut self.scratch;
            obs::timed(stage::SAMPLING, || {
                Self::sample_sets(ctx, view, m, l, strategy, rng, scratch)
            })
        };
        let mut g = Graph::new(&self.core.store);
        let emb = self.encode_pairs(&mut g, ctx, view, &sets, false);
        let logits = self.weights.head.forward(&mut g, emb);
        let lm = g.value(logits);
        (0..view.len()).map(|r| lm.get(r, 0)).collect()
    }

    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
    ) -> (f32, Vec<f32>, Vec<f32>) {
        let view = BatchView::new(batch, neg_dsts);
        let strategy = self.strategy();
        let (m, l) = (self.m, self.l);
        // Whole-batch dense span; the nested sampling span below subtracts
        // itself from its exclusive time.
        let _dense = obs::span(stage::DENSE);
        let sets = {
            let rng = &mut self.core.rng;
            let scratch = &mut self.scratch;
            obs::timed(stage::SAMPLING, || {
                Self::sample_sets(ctx, &view, m, l, strategy, rng, scratch)
            })
        };
        let mut g = Graph::new(&self.core.store);
        let pair_emb = self.encode_pairs(&mut g, ctx, &view, &sets, true);
        let logits = self.weights.head.forward(&mut g, pair_emb);
        let targets = pos_neg_targets(view.len());
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();
        let n = view.len();
        let lm = g.value(logits).clone();
        let pos: Vec<f32> = (0..n).map(|r| lm.get(r, 0)).collect();
        let negs: Vec<f32> = (0..n).map(|r| lm.get(n + r, 0)).collect();
        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            self.core.adam.step(&mut self.core.store, &grads);
        }
        (loss_val, pos, negs)
    }
}

impl TgnnModel for WalkModel {
    fn name(&self) -> &'static str {
        match self.kind {
            WalkKind::Cawn => "CAWN",
            WalkKind::NeurTw { use_nodes: true } => "NeurTW",
            WalkKind::NeurTw { use_nodes: false } => "NeurTW-noNODE",
        }
    }

    fn anatomy(&self) -> Anatomy {
        match self.kind {
            WalkKind::Cawn => Anatomy {
                memory: false,
                attention: true,
                rnn: true,
                temp_walk: true,
                scalability: true,
                supervision: "self-supervised",
            },
            WalkKind::NeurTw { .. } => Anatomy {
                memory: false,
                attention: false,
                rnn: true,
                temp_walk: true,
                scalability: false,
                supervision: "self (semi)-supervised",
            },
        }
    }

    fn reset_state(&mut self) {
        // Walk models are stateless; walks are resampled from the stream.
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, negs) = self.run_batch(ctx, batch, neg, false);
        (pos, negs)
    }

    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Walk models are stateless in memory but their own RNG advances per
        // sampled walk — ranking draws all its walks from a query-derived RNG
        // (`ranking_rng`) so `core.rng` (and thus AUC/AP) is untouched.
        let n = batch.len();
        let mut rng = ranking_rng(batch, cand_dsts);
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let feat_idx: Vec<usize> = batch.iter().map(|e| e.feat_idx).collect();
        let mk_view = |dsts: Vec<usize>| BatchView {
            srcs: srcs.clone(),
            dsts,
            negs: Vec::new(),
            times: times.clone(),
            feat_idx: feat_idx.clone(),
        };
        let pos_view = mk_view(batch.iter().map(|e| e.dst).collect());
        let pos = self.rank_block(ctx, &pos_view, &mut rng);
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            let view = mk_view(cand_dsts[j * n..(j + 1) * n].to_vec());
            cands.extend(self.rank_block(ctx, &view, &mut rng));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        // Encode each event as the (src, dst) pair walk embedding — the
        // node-classification head the paper added for CAWN/NeurTW reads
        // the source-centered walk encoding.
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let view = BatchView::new(batch, &negs);
        let strategy = self.strategy();
        let (m, l) = (self.m, self.l);
        let sets = {
            let rng = &mut self.core.rng;
            let scratch = &mut self.scratch;
            Self::sample_sets(ctx, &view, m, l, strategy, rng, scratch)
        };
        let store = &self.core.store;
        let mut g = Graph::new(store);
        let emb = self.encode_pairs(&mut g, ctx, &view, &sets, false);
        g.value(emb).clone()
    }

    fn embed_dim(&self) -> usize {
        self.hidden
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        // No persistent temporal state; the sampler scratch dominates and is
        // transient. Parameters + optimizer only.
        self.core.param_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    fn setup() -> benchtemp_graph::TemporalGraph {
        GeneratorConfig::small("wm", 81).generate()
    }

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            embed_dim: 16,
            time_dim: 8,
            walks: 3,
            walk_len: 2,
            ..Default::default()
        }
    }

    #[test]
    fn cawn_scores_are_finite_and_shaped() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = WalkModel::cawn(small_cfg(), &g);
        let batch = &g.events[800..830];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users + 2).collect();
        let (pos, neg) = m.eval_batch(&ctx, batch, &negs);
        assert_eq!(pos.len(), 30);
        assert_eq!(neg.len(), 30);
        assert!(pos.iter().chain(neg.iter()).all(|s| s.is_finite()));
    }

    #[test]
    fn neurtw_ablation_changes_scores() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let batch = &g.events[800..820];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users + 2).collect();
        let mut with = WalkModel::neurtw(small_cfg(), &g);
        let mut without = WalkModel::neurtw_without_nodes(small_cfg(), &g);
        let (p1, _) = with.eval_batch(&ctx, batch, &negs);
        let (p2, _) = without.eval_batch(&ctx, batch, &negs);
        assert_ne!(p1, p2, "removing NODEs must change the computation");
        assert_eq!(with.name(), "NeurTW");
        assert_eq!(without.name(), "NeurTW-noNODE");
    }

    #[test]
    fn training_reduces_loss_on_one_batch() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = WalkModel::cawn(
            ModelConfig {
                lr: 1e-2,
                ..small_cfg()
            },
            &g,
        );
        let batch = &g.events[900..940];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users + 5).collect();
        let first = m.train_batch(&ctx, batch, &negs);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&ctx, batch, &negs);
        }
        assert!(last < first, "walk-model loss went {first} → {last}");
    }

    #[test]
    fn embed_events_shape() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = WalkModel::neurtw(small_cfg(), &g);
        let emb = m.embed_events(&ctx, &g.events[500..510]);
        assert_eq!(emb.shape(), (10, 16));
    }

    #[test]
    fn anatomy_matches_table1() {
        let g = setup();
        let cawn = WalkModel::cawn(small_cfg(), &g);
        assert!(cawn.anatomy().temp_walk && !cawn.anatomy().memory);
        let ntw = WalkModel::neurtw(small_cfg(), &g);
        assert!(ntw.anatomy().rnn && ntw.anatomy().temp_walk && !ntw.anatomy().attention);
    }
}
