//! TeMP — the authors' model (Appendix E): GNN aggregation + temporal
//! structure, designed to balance quality and efficiency.
//!
//! Pipeline per Fig. 6: **(b) subgraph construction** with a temporal
//! neighbor sampler whose reference timestamp adapts to the data (the mean
//! timestamp of the node's history — the quantile the paper found best);
//! **(c) embedding generation** from three components — temporal **label
//! propagation** (neighbor memory averaging), **message-passing operators**
//! (original edge-feature aggregation), and a **sequence updater** (GRU
//! over a memory module) — with **pre-initialized** node embeddings
//! (memory starts from projected node features, not zeros).
//!
//! The aggregations are uniform means over a small sampled subgraph, not
//! attention — that is what buys TeMP its efficiency lead (Table 14: low
//! state footprint, high compute utilization) while staying behind the
//! walk-based models on raw quality (Table 13).

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::neighbors::HistoryScratch;
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::nn::{GruCell, Linear, MergeLayer, TimeEncode};
use benchtemp_tensor::{Graph, Matrix, Var};

use crate::common::{pos_neg_targets, BatchView, ModelConfig, ModelCore, NodeMemory};

struct Weights {
    feat_proj: Linear,
    edge_proj: Linear,
    time_enc: TimeEncode,
    /// Combines [memory | LPA aggregate | message aggregate | Δt-enc].
    combine: Linear,
    seq_gru: GruCell,
    decoder: MergeLayer,
}

/// The TeMP model.
pub struct Temp {
    weights: Weights,
    core: ModelCore,
    memory: NodeMemory,
    /// Pre-initialization matrix: projected node features written into the
    /// memory on reset (computed once per reset from current parameters).
    embed_dim: usize,
    neighbors: usize,
    preinit_done: bool,
}

impl Temp {
    pub fn new(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let d = cfg.embed_dim;
        let td = cfg.time_dim;
        let ed = 16.min(graph.edge_dim().max(4));
        let (store, rng) = (&mut core.store, &mut core.rng);
        let weights = Weights {
            feat_proj: Linear::new(store, rng, "feat_proj", graph.node_dim(), d),
            edge_proj: Linear::new(store, rng, "edge_proj", graph.edge_dim(), ed),
            time_enc: TimeEncode::new(store, "time_enc", td),
            combine: Linear::new(store, rng, "combine", d + d + ed + td, d),
            seq_gru: GruCell::new(store, rng, "seq_gru", ed + td, d),
            decoder: MergeLayer::new(store, rng, "decoder", d, d, d, 1),
        };
        Temp {
            weights,
            core,
            memory: NodeMemory::new(graph.num_nodes, d),
            embed_dim: d,
            neighbors: cfg.neighbors,
            preinit_done: false,
        }
    }

    /// Pre-initialization: memory starts from projected node features.
    fn preinit(&mut self, ctx: &StreamContext) {
        let mut g = Graph::new(&self.core.store);
        let f = g.input(ctx.graph.node_features.clone());
        let p = self.weights.feat_proj.forward(&mut g, f);
        let p = g.tanh(p);
        let init = g.value(p).clone();
        drop(g);
        let nodes: Vec<usize> = (0..ctx.graph.num_nodes).collect();
        let times = vec![0.0f64; nodes.len()];
        self.memory.write(&nodes, &init, &times);
        self.preinit_done = true;
    }

    /// Adaptive reference timestamp: the mean of the node's history
    /// timestamps before `t` (falls back to `t` with empty history).
    fn reference_time(
        &self,
        ctx: &StreamContext,
        node: usize,
        t: f64,
        scratch: &mut HistoryScratch,
    ) -> f64 {
        let hist = ctx.neighbors.before_into(node, t, scratch);
        if hist.is_empty() {
            return t;
        }
        let mean = hist.ts().iter().sum::<f64>() / hist.len() as f64;
        // Sampling strictly-before the mean would drop the most recent half;
        // the sampler uses the interval [mean, t] boundary — i.e. neighbors
        // up to t but the *subgraph window* anchored at the mean. We sample
        // before t and weight the window implicitly via most-recent order.
        mean.min(t)
    }

    /// Subgraph aggregates (LPA over memory, message over edge features) —
    /// computed outside the tape (memory is detached; features constant).
    fn aggregates(
        &self,
        ctx: &StreamContext,
        nodes: &[usize],
        times: &[f64],
    ) -> (Matrix, Matrix, Vec<f32>) {
        let k = self.neighbors;
        let d = self.embed_dim;
        let edge_dim = ctx.graph.edge_dim();
        let mut lpa = Matrix::zeros(nodes.len(), d);
        let mut msg = Matrix::zeros(nodes.len(), edge_dim);
        let mut ref_dts = vec![0.0f32; nodes.len()];
        // One window scratch for the whole batch: only the paged backend
        // writes into it, and both `before_into` calls per node refill it.
        let mut scratch = HistoryScratch::new();
        for (i, (&node, &t)) in nodes.iter().zip(times).enumerate() {
            let ref_t = self.reference_time(ctx, node, t, &mut scratch);
            ref_dts[i] = (t - ref_t).max(0.0) as f32;
            let hist = ctx.neighbors.before_into(node, t, &mut scratch);
            if hist.is_empty() {
                continue;
            }
            // Most recent k within the adaptive window [ref_t, t); if the
            // window is empty (all history before the mean), use the tail.
            // The window is a contiguous suffix of the sorted timestamp
            // column, so one binary search replaces the old filter+collect
            // and no per-query Vec is allocated.
            let ts = hist.ts();
            let wstart = ts.partition_point(|&x| x < ref_t);
            let lo = if wstart == ts.len() {
                ts.len() - k.min(ts.len())
            } else {
                wstart.max(ts.len().saturating_sub(k))
            };
            let inv = 1.0 / (ts.len() - lo) as f32;
            for idx in (lo..ts.len()).rev() {
                let ev = hist.get(idx);
                let mrow = self.memory.row(ev.neighbor);
                for (o, &x) in lpa.row_mut(i).iter_mut().zip(mrow) {
                    *o += x * inv;
                }
                let feat_idx = ctx.graph.events[ev.event_idx].feat_idx;
                let erow = ctx.graph.edge_features.row(feat_idx);
                for (o, &x) in msg.row_mut(i).iter_mut().zip(erow) {
                    *o += x * inv;
                }
            }
        }
        (lpa, msg, ref_dts)
    }

    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
    ) -> (f32, Vec<f32>, Vec<f32>, Matrix) {
        if !self.preinit_done {
            self.preinit(ctx);
        }
        let view = BatchView::new(batch, neg_dsts);
        let n = view.len();
        // Whole-batch dense span; the nested sampling span below subtracts
        // itself from its exclusive time.
        let _dense = obs::span(stage::DENSE);

        let (src_agg, dst_agg, neg_agg) = obs::timed(stage::SAMPLING, || {
            (
                self.aggregates(ctx, &view.srcs, &view.times),
                self.aggregates(ctx, &view.dsts, &view.times),
                self.aggregates(ctx, &view.negs, &view.times),
            )
        });
        let (src_lpa, src_msg, src_ref) = src_agg;
        let (dst_lpa, dst_msg, dst_ref) = dst_agg;
        let (neg_lpa, neg_msg, neg_ref) = neg_agg;

        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let embed = |g: &mut Graph, m: Var, lpa: Matrix, msg: Matrix, ref_dt: &[f32]| {
            let l = g.input(lpa);
            let e = {
                let raw = g.input(msg);
                w.edge_proj.forward(g, raw)
            };
            let te = w.time_enc.forward_slice(g, ref_dt);
            let cat = g.concat_cols_many(&[m, l, e, te]);
            let c = w.combine.forward(g, cat);
            g.relu(c)
        };
        let src_m = self.memory.rows_var(&mut g, &view.srcs);
        let src = embed(&mut g, src_m, src_lpa, src_msg, &src_ref);
        let dst_m = self.memory.rows_var(&mut g, &view.dsts);
        let dst = embed(&mut g, dst_m, dst_lpa, dst_msg, &dst_ref);
        let neg_m = self.memory.rows_var(&mut g, &view.negs);
        let neg = embed(&mut g, neg_m, neg_lpa, neg_msg, &neg_ref);
        let pos_logit = w.decoder.forward(&mut g, src, dst);
        let neg_logit = w.decoder.forward(&mut g, src, neg);
        let logits = g.concat_rows(pos_logit, neg_logit);
        let targets = pos_neg_targets(n);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();
        let lm = g.value(logits).clone();
        let pos: Vec<f32> = (0..n).map(|r| lm.get(r, 0)).collect();
        let negs_s: Vec<f32> = (0..n).map(|r| lm.get(n + r, 0)).collect();

        // Sequence updater: GRU over [edge | Δt-enc] advances the memory.
        let (new_src, new_dst) = {
            let e = view.edge_feats_var(&mut g, ctx);
            let ep = w.edge_proj.forward(&mut g, e);
            let s_dt = self.memory.deltas(&view.srcs, &view.times);
            let d_dt = self.memory.deltas(&view.dsts, &view.times);
            let ste = w.time_enc.forward_slice(&mut g, &s_dt);
            let dte = w.time_enc.forward_slice(&mut g, &d_dt);
            let sx = g.concat_cols(ep, ste);
            let dx = g.concat_cols(ep, dte);
            let sm = self.memory.rows_var(&mut g, &view.srcs);
            let dm = self.memory.rows_var(&mut g, &view.dsts);
            (
                w.seq_gru.forward(&mut g, sx, sm),
                w.seq_gru.forward(&mut g, dx, dm),
            )
        };
        let src_emb = g.value(src).clone();
        let new_src_m = g.value(new_src).clone();
        let new_dst_m = g.value(new_dst).clone();

        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            self.core.adam.step(&mut self.core.store, &grads);
        }

        self.memory.write(&view.srcs, &new_src_m, &view.times);
        self.memory.write(&view.dsts, &new_dst_m, &view.times);
        (loss_val, pos, negs_s, src_emb)
    }
}

impl TgnnModel for Temp {
    fn name(&self) -> &'static str {
        "TeMP"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: true,
            attention: false,
            rnn: true,
            temp_walk: false,
            scalability: true,
            supervision: "self (semi)-supervised",
        }
    }

    fn reset_state(&mut self) {
        self.memory.reset();
        self.preinit_done = false; // re-run pre-initialization lazily
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, negs, _) = self.run_batch(ctx, batch, neg, false);
        (pos, negs)
    }

    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // Ranking reads the pre-batch memory only: aggregates + embed +
        // decode, with no GRU sequence update and no `memory.write`. The
        // lazy pre-initialization still has to run (it is part of "current
        // state", not an advance of it). TeMP needs no RNG here — its
        // aggregations are deterministic means.
        if !self.preinit_done {
            self.preinit(ctx);
        }
        let n = batch.len();
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let (src_lpa, src_msg, src_ref) = self.aggregates(ctx, &srcs, &times);
        let mut g = Graph::new(&self.core.store);
        let w = &self.weights;
        let embed = |g: &mut Graph, m: Var, lpa: Matrix, msg: Matrix, ref_dt: &[f32]| {
            let l = g.input(lpa);
            let e = {
                let raw = g.input(msg);
                w.edge_proj.forward(g, raw)
            };
            let te = w.time_enc.forward_slice(g, ref_dt);
            let cat = g.concat_cols_many(&[m, l, e, te]);
            let c = w.combine.forward(g, cat);
            g.relu(c)
        };
        let src_m = self.memory.rows_var(&mut g, &srcs);
        let src = embed(&mut g, src_m, src_lpa, src_msg, &src_ref);
        let score_block = |g: &mut Graph, this: &Self, block: &[usize]| -> Vec<f32> {
            let (lpa, msg, ref_dt) = this.aggregates(ctx, block, &times);
            let m = this.memory.rows_var(g, block);
            let emb = embed(g, m, lpa, msg, &ref_dt);
            let logit = w.decoder.forward(g, src, emb);
            let lm = g.value(logit);
            (0..n).map(|r| lm.get(r, 0)).collect()
        };
        let pos = score_block(&mut g, self, &dsts);
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            cands.extend(score_block(&mut g, self, &cand_dsts[j * n..(j + 1) * n]));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        self.run_batch(ctx, batch, &negs, false).3
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.core.param_bytes() + self.memory.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    fn setup() -> benchtemp_graph::TemporalGraph {
        GeneratorConfig::small("temp", 101).generate()
    }

    #[test]
    fn preinit_fills_memory_from_features() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = Temp::new(
            ModelConfig {
                embed_dim: 16,
                ..Default::default()
            },
            &g,
        );
        assert_eq!(m.memory.row(0), vec![0.0; 16].as_slice());
        let negs: Vec<usize> = g.events[..10].iter().map(|_| g.num_users).collect();
        m.eval_batch(&ctx, &g.events[..10], &negs);
        // After the first batch the *untouched* nodes still carry the
        // pre-initialized (non-zero) embedding.
        let untouched = (0..g.num_nodes)
            .find(|&n| g.events[..10].iter().all(|e| e.src != n && e.dst != n))
            .unwrap();
        assert!(m.memory.row(untouched).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn reference_time_is_mean_of_history() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let m = Temp::new(ModelConfig::default(), &g);
        let node = g.events[0].src;
        let t = 1e9;
        let hist = nf.before(node, t);
        let mean = hist.iter().map(|e| e.t).sum::<f64>() / hist.len() as f64;
        let mut scratch = HistoryScratch::new();
        assert!((m.reference_time(&ctx, node, t, &mut scratch) - mean).abs() < 1e-9);
        // No history → the query time itself.
        let lonely = (0..g.num_nodes).find(|&n| nf.degree(n) == 0);
        if let Some(n) = lonely {
            assert_eq!(m.reference_time(&ctx, n, 42.0, &mut scratch), 42.0);
        }
    }

    #[test]
    fn training_reduces_loss() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = Temp::new(
            ModelConfig {
                embed_dim: 16,
                lr: 1e-2,
                ..Default::default()
            },
            &g,
        );
        let batch = &g.events[..80];
        let negs: Vec<usize> = batch
            .iter()
            .enumerate()
            .map(|(i, _)| g.num_users + (i * 5) % (g.num_nodes - g.num_users))
            .collect();
        let first = m.train_batch(&ctx, batch, &negs);
        let mut last = first;
        for _ in 0..15 {
            last = m.train_batch(&ctx, batch, &negs);
        }
        assert!(last < first, "TeMP loss went {first} → {last}");
    }

    #[test]
    fn embeddings_have_configured_dim() {
        let g = setup();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = Temp::new(
            ModelConfig {
                embed_dim: 24,
                ..Default::default()
            },
            &g,
        );
        let emb = m.embed_events(&ctx, &g.events[..6]);
        assert_eq!(emb.shape(), (6, 24));
    }
}
