//! TGAT (Xu et al., ICLR 2020): multi-layer temporal self-attention over
//! uniformly sampled temporal neighbors with functional (Bochner)
//! continuous-time encoding. No memory module — the embedding is recomputed
//! from the L-hop temporal neighborhood at query time, which is why TGAT's
//! per-epoch runtime and "GPU memory" exceed the memory-based family
//! (Table 4) while it trains in fewer epochs.
//!
//! The layer stack respects the Appendix-C dimension constraint (Eq. 1):
//! the attention model dim is divisible by the head count by construction.

use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::neighbors::SamplingStrategy;
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::init::SeededRng;
use benchtemp_tensor::nn::{Linear, MergeLayer, MultiHeadAttention, TimeEncode};
use benchtemp_tensor::{Graph, Matrix, Var};

use crate::common::{
    pos_neg_targets, ranking_rng, BatchView, ModelConfig, ModelCore, NeighborBatch,
};

struct Weights {
    feat_proj: Linear,
    edge_proj: Linear,
    time_enc: TimeEncode,
    /// One attention layer per hop (layer 0 is the deepest hop).
    layers: Vec<MultiHeadAttention>,
    decoder: MergeLayer,
    neighbors: usize,
}

impl Weights {
    /// TGAT's L-layer temporal attention embedding.
    ///
    /// The whole L-hop neighborhood is drawn up front with one batched
    /// `sample_frontier` call (which parallelises over the worker pool with
    /// deterministic per-root RNG streams), then the attention stack folds
    /// the frontier from the deepest hop back up to the query nodes — the
    /// same computation the old per-level recursion performed, without
    /// re-entering the sampler at every level.
    fn embed(
        &self,
        g: &mut Graph,
        ctx: &StreamContext,
        nodes: &[usize],
        times: &[f64],
        depth: usize,
        rng: &mut SeededRng,
    ) -> Var {
        let base = |g: &mut Graph, ids: &[usize]| -> Var {
            let f = g.gather_rows_from(&ctx.graph.node_features, ids);
            self.feat_proj.forward(g, f)
        };
        if depth == 0 {
            return base(g, nodes);
        }
        let k = self.neighbors;
        let frontier = obs::timed(stage::SAMPLING, || {
            ctx.neighbors.sample_frontier(
                nodes,
                times,
                k,
                depth,
                SamplingStrategy::Uniform,
                rng.next_u64(),
            )
        });
        // Deepest hop: plain projected features, then fold upward. Hop `l`
        // supplies the keys for query level `l` (level 0 = input nodes),
        // attended by layer `depth-1-l` — identical layer assignment to the
        // old recursion.
        let mut hops = frontier.hops;
        let mut rep = base(g, &hops[depth - 1].nodes);
        while let Some(hop) = hops.pop() {
            let l = hops.len();
            let nb = NeighborBatch::from_hop(hop, k);
            let level_ids: &[usize] = if l == 0 { nodes } else { &hops[l - 1].nodes };
            let base_l = base(g, level_ids);
            let nb_edge = {
                let e = nb.edge_feats_var(g, ctx);
                self.edge_proj.forward(g, e)
            };
            let nb_te = self.time_enc.forward_slice(g, &nb.dts);
            let keys = g.concat_cols_many(&[rep, nb_edge, nb_te]);
            let zero_te = self.time_enc.forward_slice(g, &vec![0.0; level_ids.len()]);
            let query = g.concat_cols(base_l, zero_te);
            let out = self.layers[depth - 1 - l].forward(g, query, keys, k, &nb.mask);
            rep = g.add(out, base_l); // residual
        }
        rep
    }
}

/// The TGAT model.
pub struct Tgat {
    weights: Weights,
    core: ModelCore,
    layers: usize,
    embed_dim: usize,
}

impl Tgat {
    pub fn new(cfg: ModelConfig, graph: &TemporalGraph) -> Self {
        let mut core = ModelCore::new(cfg.lr, cfg.seed);
        let d = cfg.embed_dim;
        let td = cfg.time_dim;
        let ed = 16.min(graph.edge_dim().max(4));
        let (store, rng) = (&mut core.store, &mut core.rng);
        let layers = (0..cfg.layers.max(1))
            .map(|l| {
                MultiHeadAttention::new(
                    store,
                    rng,
                    &format!("attn{l}"),
                    d + td,
                    d + ed + td,
                    d,
                    cfg.heads,
                    d,
                )
            })
            .collect();
        let weights = Weights {
            feat_proj: Linear::new(store, rng, "feat_proj", graph.node_dim(), d),
            edge_proj: Linear::new(store, rng, "edge_proj", graph.edge_dim(), ed),
            time_enc: TimeEncode::new(store, "time_enc", td),
            layers,
            decoder: MergeLayer::new(store, rng, "decoder", d, d, d, 1),
            neighbors: cfg.neighbors,
        };
        Tgat {
            weights,
            core,
            layers: cfg.layers.max(1),
            embed_dim: d,
        }
    }

    /// One forward (and optional backward) pass over a batch.
    ///
    /// The src/dst/neg embedding towers are tri-batched: one `embed` over
    /// the concatenated node list, so the L-hop frontier is sampled once
    /// and every projection matmul and attention node is 3× taller, then
    /// the result is split back with `slice_rows`. `want_embeddings` gates
    /// the src-embedding clone — only [`TgnnModel::embed_events`] consumes
    /// it, so train/eval batches skip that per-batch allocation.
    fn run_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
        train: bool,
        want_embeddings: bool,
    ) -> (f32, Vec<f32>, Vec<f32>, Matrix) {
        let view = BatchView::new(batch, neg_dsts);
        let Tgat {
            weights,
            core,
            layers,
            ..
        } = self;
        let depth = *layers;
        let ModelCore { store, adam, rng } = core;
        // Whole-batch dense span; nested sampling spans subtract themselves
        // from its exclusive time, so "dense" self-time = batch − sampling.
        let _dense = obs::span(stage::DENSE);

        let n = view.len();
        let mut all_nodes = Vec::with_capacity(3 * n);
        all_nodes.extend_from_slice(&view.srcs);
        all_nodes.extend_from_slice(&view.dsts);
        all_nodes.extend_from_slice(&view.negs);
        let mut all_times = Vec::with_capacity(3 * n);
        for _ in 0..3 {
            all_times.extend_from_slice(&view.times);
        }
        let mut g = Graph::new(store);
        let all = weights.embed(&mut g, ctx, &all_nodes, &all_times, depth, rng);
        let src = g.slice_rows(all, 0, n);
        let dst = g.slice_rows(all, n, 2 * n);
        let neg = g.slice_rows(all, 2 * n, 3 * n);
        let pos_logit = weights.decoder.forward(&mut g, src, dst);
        let neg_logit = weights.decoder.forward(&mut g, src, neg);
        let logits = g.concat_rows(pos_logit, neg_logit);
        let targets = pos_neg_targets(n);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).scalar();
        let lm = g.value(logits).clone();
        let pos: Vec<f32> = (0..n).map(|r| lm.get(r, 0)).collect();
        let negs: Vec<f32> = (0..n).map(|r| lm.get(n + r, 0)).collect();
        let src_mat = if want_embeddings {
            g.value(src).clone()
        } else {
            Matrix::zeros(0, 0)
        };
        let grads = if train { Some(g.backward(loss)) } else { None };
        drop(g);
        if let Some(grads) = grads {
            adam.step(store, &grads);
        }
        (loss_val, pos, negs, src_mat)
    }
}

impl TgnnModel for Tgat {
    fn name(&self) -> &'static str {
        "TGAT"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: false,
            attention: true,
            rnn: false,
            temp_walk: false,
            scalability: false,
            supervision: "self (semi)-supervised",
        }
    }

    fn reset_state(&mut self) {
        // TGAT is stateless: the temporal neighborhood *is* the state.
    }

    fn train_batch(&mut self, ctx: &StreamContext, batch: &[Interaction], neg: &[usize]) -> f32 {
        self.run_batch(ctx, batch, neg, true, false).0
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let (_, pos, negs, _) = self.run_batch(ctx, batch, neg, false, false);
        (pos, negs)
    }

    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        // TGAT is stateless, so ranking shares `run_batch`'s tri-batch idea
        // with a (2+k)-way concatenation: one frontier sample and one
        // attention stack over [srcs ++ dsts ++ k candidate blocks], sliced
        // back per role. The RNG is derived from the query content
        // (`ranking_rng`) so the model's own stream is untouched and AUC/AP
        // stay bit-identical whether or not ranking is enabled.
        let n = batch.len();
        let Tgat {
            weights,
            core,
            layers,
            ..
        } = self;
        let depth = *layers;
        let mut rng = ranking_rng(batch, cand_dsts);
        let times: Vec<f64> = batch.iter().map(|e| e.t).collect();
        let mut all_nodes = Vec::with_capacity((2 + k) * n);
        all_nodes.extend(batch.iter().map(|e| e.src));
        all_nodes.extend(batch.iter().map(|e| e.dst));
        all_nodes.extend_from_slice(cand_dsts);
        let mut all_times = Vec::with_capacity((2 + k) * n);
        for _ in 0..2 + k {
            all_times.extend_from_slice(&times);
        }
        let mut g = Graph::new(&core.store);
        let all = weights.embed(&mut g, ctx, &all_nodes, &all_times, depth, &mut rng);
        let src = g.slice_rows(all, 0, n);
        let dst = g.slice_rows(all, n, 2 * n);
        let pos_logit = weights.decoder.forward(&mut g, src, dst);
        let pos: Vec<f32> = {
            let m = g.value(pos_logit);
            (0..n).map(|r| m.get(r, 0)).collect()
        };
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            let cand = g.slice_rows(all, (2 + j) * n, (3 + j) * n);
            let logit = weights.decoder.forward(&mut g, src, cand);
            let m = g.value(logit);
            cands.extend((0..n).map(|r| m.get(r, 0)));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        self.run_batch(ctx, batch, &negs, false, true).3
    }

    fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.core.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.core.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.core.param_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;
    use benchtemp_graph::paged::NeighborBackend;
    use benchtemp_graph::NeighborFinder;

    #[test]
    fn stateless_eval_is_deterministic_given_same_rng_state() {
        let g = GeneratorConfig::small("tgat", 61).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let cfg = ModelConfig {
            embed_dim: 16,
            time_dim: 8,
            neighbors: 3,
            layers: 2,
            ..Default::default()
        };
        let negs: Vec<usize> = g.events[..20].iter().map(|_| g.num_users).collect();
        let mut m1 = Tgat::new(cfg.clone(), &g);
        let mut m2 = Tgat::new(cfg, &g);
        let (p1, n1) = m1.eval_batch(&ctx, &g.events[..20], &negs);
        let (p2, n2) = m2.eval_batch(&ctx, &g.events[..20], &negs);
        assert_eq!(p1, p2);
        assert_eq!(n1, n2);
    }

    #[test]
    fn respects_eq1_divisibility() {
        // heads must divide the attention model dim; the constructor of the
        // attention layer enforces Eq. 1.
        let g = GeneratorConfig::small("tgat2", 62).generate();
        let cfg = ModelConfig {
            embed_dim: 48,
            heads: 2,
            ..Default::default()
        };
        let _ = Tgat::new(cfg, &g); // must not panic
    }

    #[test]
    fn embed_events_has_model_dim() {
        let g = GeneratorConfig::small("tgat3", 63).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = Tgat::new(
            ModelConfig {
                embed_dim: 24,
                layers: 1,
                neighbors: 3,
                ..Default::default()
            },
            &g,
        );
        let emb = m.embed_events(&ctx, &g.events[..7]);
        assert_eq!(emb.shape(), (7, 24));
    }

    #[test]
    fn depth_zero_nodes_without_history_still_score() {
        // The very first batch has no temporal neighbors anywhere: masks are
        // all false, attention returns base reps, scores stay finite.
        let g = GeneratorConfig::small("tgat4", 64).generate();
        let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
        let ctx = StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        };
        let mut m = Tgat::new(
            ModelConfig {
                embed_dim: 16,
                layers: 2,
                neighbors: 3,
                ..Default::default()
            },
            &g,
        );
        let negs: Vec<usize> = g.events[..5].iter().map(|_| g.num_users + 1).collect();
        let (pos, neg) = m.eval_batch(&ctx, &g.events[..5], &negs);
        assert!(pos.iter().chain(neg.iter()).all(|s| s.is_finite()));
    }
}
