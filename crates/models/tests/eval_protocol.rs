//! Evaluation-protocol guarantees every model must honour:
//! * `eval_batch` never changes trainable parameters (no test-time leakage
//!   into weights);
//! * temporal state advances during evaluation (the stream really
//!   happened), and `reset_state` restores the initial scores;
//! * `embed_events` returns one row per event with the declared dimension.

use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_graph::NeighborFinder;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::zoo::{self, ALL_MODELS};

fn setup() -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("proto", 313);
    cfg.num_edges = 800;
    cfg.generate()
}

fn cfg() -> ModelConfig {
    ModelConfig {
        embed_dim: 16,
        time_dim: 8,
        neighbors: 3,
        walks: 2,
        walk_len: 2,
        ..Default::default()
    }
}

#[test]
fn eval_never_mutates_parameters() {
    let g = setup();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    for name in ALL_MODELS {
        let mut model = zoo::build(name, cfg(), &g);
        let before = model.snapshot();
        let negs: Vec<usize> = g.events[..300].iter().map(|_| g.num_users).collect();
        let _ = model.eval_batch(&ctx, &g.events[..300], &negs);
        let _ = model.embed_events(&ctx, &g.events[300..400]);
        let after = model.snapshot();
        assert_eq!(before.len(), after.len(), "{name}");
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b, a, "{name}: eval must not touch parameters");
        }
    }
}

#[test]
fn train_does_mutate_parameters() {
    let g = setup();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    for name in ALL_MODELS {
        if name == "EdgeBank" {
            continue; // non-learned by design
        }
        let mut model = zoo::build(name, cfg(), &g);
        let before = model.snapshot();
        let negs: Vec<usize> = g.events[..100].iter().map(|_| g.num_users).collect();
        let _ = model.train_batch(&ctx, &g.events[..100], &negs);
        let after = model.snapshot();
        assert!(
            before.iter().zip(&after).any(|(b, a)| b != a),
            "{name}: training must update some parameter"
        );
    }
}

#[test]
fn reset_state_restores_initial_scores_for_stateful_models() {
    let g = setup();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    for name in ["TGN", "JODIE", "NAT", "TeMP", "EdgeBank"] {
        let mut model = zoo::build(name, cfg(), &g);
        let batch = &g.events[..50];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users + 1).collect();
        let (first, _) = model.eval_batch(&ctx, batch, &negs);
        // Consume more stream → state diverges.
        let negs2: Vec<usize> = g.events[50..400].iter().map(|_| g.num_users).collect();
        let _ = model.eval_batch(&ctx, &g.events[50..400], &negs2);
        model.reset_state();
        let (again, _) = model.eval_batch(&ctx, batch, &negs);
        assert_eq!(
            first, again,
            "{name}: reset_state must restore initial scoring"
        );
    }
}

#[test]
fn embed_events_shape_contract() {
    let g = setup();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    for name in ALL_MODELS {
        let mut model = zoo::build(name, cfg(), &g);
        let emb = model.embed_events(&ctx, &g.events[..13]);
        assert_eq!(emb.rows(), 13, "{name}");
        assert_eq!(emb.cols(), model.embed_dim(), "{name}");
        assert!(emb.as_slice().iter().all(|x| x.is_finite()), "{name}");
    }
}

#[test]
fn scores_are_finite_under_extreme_time_gaps() {
    // A stream with enormous gaps (overflow territory for naive exp
    // weighting) must still produce finite scores everywhere.
    let mut cfg_g = GeneratorConfig::small("gaps", 777);
    cfg_g.time_span = 1.0e12;
    cfg_g.num_edges = 600;
    let g = cfg_g.generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    for name in ALL_MODELS {
        let mut model = zoo::build(name, cfg(), &g);
        let batch = &g.events[300..360];
        let negs: Vec<usize> = batch.iter().map(|_| g.num_users).collect();
        let warm: Vec<usize> = g.events[..300].iter().map(|e| e.dst).collect();
        let _ = model.eval_batch(&ctx, &g.events[..300], &warm);
        let (pos, neg) = model.eval_batch(&ctx, batch, &negs);
        assert!(
            pos.iter().chain(neg.iter()).all(|s| s.is_finite()),
            "{name}: non-finite score under extreme Δt"
        );
    }
}
