//! The src-embedding matrix clone in `run_batch` is lazy: only
//! `embed_events` consumes it, so train/eval batches must not pay the
//! per-batch `Matrix` clone.
//!
//! Verified with a counting global allocator that tracks allocations of
//! exactly the embedding-matrix byte size: two identically-seeded
//! stateless TGAT models run the same batch through `eval_batch` and
//! `embed_events` — identical work except the gated clone — and only the
//! embed path may allocate an embedding-sized buffer. The batch/dim
//! shapes are chosen so no other buffer in the forward pass shares that
//! size. This file holds exactly one test so no sibling test thread can
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use benchtemp_core::pipeline::{StreamContext, TgnnModel};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_graph::NeighborFinder;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::tgat::Tgat;

const EMBED_DIM: usize = 16;
const BATCH: usize = 20;
/// `(BATCH, EMBED_DIM)` f32 matrix — the buffer `g.value(src).clone()`
/// would allocate on every batch if the clone were unconditional.
const CLONE_BYTES: usize = BATCH * EMBED_DIM * 4;

struct CountingAlloc;

static CLONE_SIZED_ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`, which upholds every GlobalAlloc
// contract; the only addition is an atomic counter bump, which allocates
// nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's layout preconditions; delegated
    // verbatim to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() == CLONE_BYTES {
            CLONE_SIZED_ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a prior alloc on this same allocator
    // (we always delegate to `System`), so forwarding to `System.realloc`
    // preserves its contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size == CLONE_BYTES {
            CLONE_SIZED_ALLOCS.fetch_add(1, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: same delegation argument as `realloc` — every pointer we are
    // handed was produced by `System`, so `System.dealloc` may free it.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn eval_batch_skips_the_embedding_clone() {
    let g = GeneratorConfig::small("lazyclone", 37).generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let cfg = ModelConfig {
        embed_dim: EMBED_DIM,
        time_dim: 8,
        heads: 2,
        neighbors: 3,
        layers: 1,
        ..Default::default()
    };
    // Two fresh, identically-seeded models: TGAT is stateless, so both run
    // the exact same computation on the batch — same sampler draws, same
    // graph shapes — except the `want_embeddings`-gated clone.
    let mut eval_model = Tgat::new(cfg.clone(), &g);
    let mut embed_model = Tgat::new(cfg, &g);
    let batch = &g.events[..BATCH];
    let negs: Vec<usize> = batch.iter().map(|e| e.dst).collect();

    // Warm both models once so tape arenas and buffer pools stop growing
    // (a first pass may allocate embedding-shaped pool buffers).
    let _ = eval_model.eval_batch(&ctx, batch, &negs);
    let _ = embed_model.embed_events(&ctx, batch);

    let c0 = CLONE_SIZED_ALLOCS.load(Ordering::SeqCst);
    let (pos, neg) = eval_model.eval_batch(&ctx, batch, &negs);
    let c1 = CLONE_SIZED_ALLOCS.load(Ordering::SeqCst);
    let emb = embed_model.embed_events(&ctx, batch);
    let c2 = CLONE_SIZED_ALLOCS.load(Ordering::SeqCst);

    assert_eq!(emb.shape(), (BATCH, EMBED_DIM));
    assert!(pos.iter().chain(neg.iter()).all(|s| s.is_finite()));
    assert_eq!(
        c1 - c0,
        0,
        "eval_batch must not allocate any embedding-sized ({CLONE_BYTES}-byte) buffer"
    );
    assert_eq!(
        c2 - c1,
        1,
        "embed_events should allocate exactly one embedding-sized buffer (the clone)"
    );
}
