//! Node-classification pipeline (§3.2.2) end-to-end: self-supervised LP
//! pre-training, frozen-embedding decoder training, binary AUC and
//! Appendix-G multi-class metrics.

use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, train_node_classification, TrainConfig};
use benchtemp_graph::generators::{GeneratorConfig, LabelGenConfig};
use benchtemp_models::common::ModelConfig;
use benchtemp_models::TgnFamily;

fn labelled_dataset(classes: usize) -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("nc", 277);
    cfg.num_edges = 1500;
    cfg.label = Some(if classes == 2 {
        LabelGenConfig::binary(0.15)
    } else {
        LabelGenConfig {
            num_classes: classes,
            rare_rate: 0.12,
            decay: 0.05,
        }
    });
    cfg.generate()
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        batch_size: 100,
        max_epochs: 5,
        timeout: Duration::from_secs(600),
        seed: 3,
        ..Default::default()
    }
}

fn model_cfg() -> ModelConfig {
    ModelConfig {
        embed_dim: 32,
        time_dim: 8,
        neighbors: 4,
        lr: 3e-3,
        seed: 1,
        ..Default::default()
    }
}

#[test]
fn binary_node_classification_beats_chance() {
    let g = labelled_dataset(2);
    let split = LinkPredSplit::new(&g, 1);
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    // Self-supervised pre-training (the paper's NC protocol reuses the LP
    // trained encoder).
    train_link_prediction(&mut model, &g, &split, &train_cfg());
    let run = train_node_classification(&mut model, &g, &train_cfg());
    assert!(
        run.auc > 0.58,
        "NC AUC {:.4} too close to chance (labels are decayed-risk driven, \
         memory models should track them)",
        run.auc
    );
    assert!(run.multiclass.is_none());
    assert!(run.decoder_epochs >= 1);
}

#[test]
fn multiclass_node_classification_reports_appendix_g_metrics() {
    let g = labelled_dataset(4);
    let split = LinkPredSplit::new(&g, 1);
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    train_link_prediction(&mut model, &g, &split, &train_cfg());
    let run = train_node_classification(&mut model, &g, &train_cfg());
    let m = run
        .multiclass
        .expect("4-class dataset yields multiclass metrics");
    // Above 4-class chance; the paper's own Table 22 accuracies sit at
    // 0.41–0.57 on DGraphFin, so imbalanced multi-class NC is genuinely hard.
    assert!(m.accuracy > 0.28, "accuracy {:.3}", m.accuracy);
    assert!(m.f1_weighted > 0.0 && m.f1_weighted <= 1.0);
    assert!(m.precision_weighted <= 1.0 && m.recall_weighted <= 1.0);
}

#[test]
#[should_panic(expected = "labels")]
fn unlabelled_dataset_panics_cleanly() {
    let g = GeneratorConfig::small("nolabel", 1).generate();
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    let _ = train_node_classification(&mut model, &g, &train_cfg());
}
