//! Cross-process, cross-thread-count bit-identity of a TGAT training run
//! through the fused multi-head attention engine.
//!
//! The fused `MultiHeadGroupedAttention` node fans its row-slab kernel
//! across the worker pool, so the properties under test are (a) the slab
//! decomposition preserves element-wise FP operation order at any thread
//! count, and (b) a fresh process reproduces the exact trajectory. Each
//! child process trains the same model and prints an FNV-1a hash over the
//! per-batch loss bits and the final eval scores; 1-thread and 4-thread
//! children must agree, and `BENCHTEMP_SANITIZE=1` (which activates the
//! `grouped_attention_rows` slab-claim checking) must not perturb it.

use std::process::Command;

use benchtemp_core::pipeline::{StreamContext, TgnnModel};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_graph::NeighborFinder;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::tgat::Tgat;

/// FNV-1a over a byte stream — endian-stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Train a small TGAT for a few batches and digest the trajectory:
/// every train loss bit pattern plus the final eval scores.
fn tgat_trajectory_digest() -> u64 {
    let g = GeneratorConfig::small("attdet", 31).generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let cfg = ModelConfig {
        embed_dim: 16,
        time_dim: 8,
        heads: 2,
        neighbors: 3,
        layers: 2,
        ..Default::default()
    };
    let mut model = Tgat::new(cfg, &g);
    let mut bytes: Vec<u8> = Vec::new();
    let batch_size = 20;
    for (i, batch) in g.events.chunks(batch_size).take(6).enumerate() {
        let negs: Vec<usize> = batch
            .iter()
            .enumerate()
            .map(|(j, _)| g.num_users + (i * batch_size + j) % (g.num_nodes - g.num_users))
            .collect();
        let loss = model.train_batch(&ctx, batch, &negs);
        bytes.extend(loss.to_bits().to_le_bytes());
    }
    let eval = &g.events[g.num_events() - batch_size..];
    let negs: Vec<usize> = eval.iter().map(|_| g.num_users).collect();
    let (pos, neg) = model.eval_batch(&ctx, eval, &negs);
    for s in pos.iter().chain(neg.iter()) {
        bytes.extend(s.to_bits().to_le_bytes());
    }
    fnv1a(bytes.into_iter())
}

/// Child-process worker: prints the digest. Skipped unless spawned below.
#[test]
fn attention_child_worker() {
    if std::env::var("BENCHTEMP_ATTENTION_CHILD").is_err() {
        return;
    }
    println!("RESULT {:016x}", tgat_trajectory_digest());
}

fn run_child(threads: &str, sanitize: bool) -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["attention_child_worker", "--exact", "--nocapture"])
        .env("BENCHTEMP_ATTENTION_CHILD", "1")
        .env("BENCHTEMP_THREADS", threads);
    if sanitize {
        cmd.env("BENCHTEMP_SANITIZE", "1");
    }
    let out = cmd.output().expect("spawn child test process");
    assert!(
        out.status.success(),
        "attention child (threads={threads}, sanitize={sanitize}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("no RESULT line from child:\n{stdout}"))
}

/// 1-thread vs 4-thread children, with and without the sanitizer: one bit
/// pattern for the whole TGAT train/eval trajectory.
#[test]
fn tgat_trajectory_bit_identical_across_processes_and_threads() {
    if std::env::var("BENCHTEMP_ATTENTION_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let single = run_child("1", false);
    let quad = run_child("4", false);
    assert_eq!(
        single, quad,
        "fused attention trajectory must not depend on thread count"
    );
    let quad_sanitized = run_child("4", true);
    assert_eq!(
        single, quad_sanitized,
        "sanitize-mode slab-claim checking must not perturb the trajectory"
    );
}
