//! Byte-equivalence of the SoA frontier gather path against the scalar
//! baselines it replaced.
//!
//! The frontier engine now emits a pre-resolved `feat_idx` column and the
//! models gather features through `Tape::gather_rows_from` (pooled,
//! run-length coalesced). Both changes are pure layout/execution moves, so
//! this test pins them bitwise over a seeded grid of hop counts ×
//! sampling strategies — with the index lists exactly as the frontier
//! produces them, duplicates and masked (padded) slots included — against
//! the per-slot event resolution and the allocating per-row gathers.
//!
//! `fusion::set_forced` is process-global, so every test flipping it holds
//! [`FUSION_LOCK`] for its whole body.

use std::sync::Mutex;

use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::SamplingStrategy;
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_graph::NeighborFinder;
use benchtemp_models::common::{NeighborBatch, NodeMemory};
use benchtemp_tensor::{fusion, init, Graph, Matrix, ParamStore};

static FUSION_LOCK: Mutex<()> = Mutex::new(());

const STRATS: [SamplingStrategy; 4] = [
    SamplingStrategy::MostRecent,
    SamplingStrategy::Uniform,
    SamplingStrategy::TemporalExp { alpha: 0.05 },
    SamplingStrategy::TemporalSafe,
];

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn frontier_gathers_match_scalar_baselines_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    let g = GeneratorConfig::small("soa-gather", 4021).generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let store = ParamStore::new();

    // Roots: well-connected late endpoints plus the same nodes queried just
    // after the stream starts, where they have little or no history — the
    // early queries force padded slots into every hop level.
    let late = &g.events[g.events.len() - 8..];
    let early_t = g.events[1].t;
    let mut roots: Vec<usize> = late.iter().map(|e| e.src).collect();
    let mut times: Vec<f64> = late.iter().map(|e| e.t).collect();
    roots.extend(late.iter().map(|e| e.src));
    times.extend((0..late.len()).map(|_| early_t));

    let k = 5;
    let mut saw_masked = false;
    let mut saw_duplicate = false;
    for hops in [1usize, 2, 3] {
        for (si, strat) in STRATS.into_iter().enumerate() {
            let seed = 9000 + (hops * 10 + si) as u64;
            let f = nf.sample_frontier(&roots, &times, k, hops, strat, seed);
            assert_eq!(f.hops.len(), hops);
            for hop in f.hops {
                // The pre-resolved feature column must equal the per-slot
                // scalar resolution the models used to run: a real slot
                // points at its event's edge-feature row, a padded slot at
                // row 0.
                for s in 0..hop.len() {
                    let expect = if hop.mask[s] {
                        g.events[hop.event_idx[s]].feat_idx
                    } else {
                        0
                    };
                    assert_eq!(
                        hop.feat_idx[s], expect,
                        "feat_idx diverged at slot {s} (hops={hops}, strat {si})"
                    );
                }
                saw_masked |= hop.mask.iter().any(|&m| !m);
                let mut sorted = hop.nodes.clone();
                sorted.sort_unstable();
                saw_duplicate |= sorted.windows(2).any(|w| w[0] == w[1]);

                let nb = NeighborBatch::from_hop(hop, k);
                let node_base = bits(&nb.node_feats(&ctx));
                let edge_base = bits(&nb.edge_feats(&ctx));
                // The tape gathers must reproduce the scalar baselines
                // bitwise in both fusion modes (coalesced pooled path and
                // the allocating fallback).
                for fused in [true, false] {
                    fusion::set_forced(Some(fused));
                    let mut gr = Graph::new(&store);
                    let nv = nb.node_feats_var(&mut gr, &ctx);
                    let ev = nb.edge_feats_var(&mut gr, &ctx);
                    assert_eq!(
                        bits(gr.value(nv)),
                        node_base,
                        "node feature gather diverged (hops={hops}, strat {si}, fused={fused})"
                    );
                    assert_eq!(
                        bits(gr.value(ev)),
                        edge_base,
                        "edge feature gather diverged (hops={hops}, strat {si}, fused={fused})"
                    );
                    fusion::set_forced(None);
                }
            }
        }
    }
    assert!(saw_masked, "grid must exercise masked (padded) slots");
    assert!(saw_duplicate, "grid must exercise duplicate indices");
}

#[test]
fn memory_rows_var_matches_scalar_rows_bitwise() {
    let _serial = FUSION_LOCK.lock().unwrap();
    let n = 64;
    let d = 24;
    let mut mem = NodeMemory::new(n, d);
    let mut rng = init::rng(11);
    let values = init::randn(n, d, 1.0, &mut rng);
    let nodes: Vec<usize> = (0..n).collect();
    mem.write(&nodes, &values, &vec![1.0; n]);

    // Frontier-shaped access: repeats, back-jumps, and an ascending run.
    let mut idx: Vec<usize> = vec![3, 3, 3, 17, 5, 6, 7, 8, 0, 63, 63, 2];
    idx.extend(40..52);
    let store = ParamStore::new();
    let base = bits(&mem.rows(&idx));
    for fused in [true, false] {
        fusion::set_forced(Some(fused));
        let mut gr = Graph::new(&store);
        let mv = mem.rows_var(&mut gr, &idx);
        assert_eq!(
            bits(gr.value(mv)),
            base,
            "memory row gather diverged (fused={fused})"
        );
        fusion::set_forced(None);
    }
}
