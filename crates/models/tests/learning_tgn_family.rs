//! End-to-end learning checks for the TGN family: each variant, trained
//! through the full BenchTemp pipeline on a small structured stream, must
//! clearly beat chance on transductive link prediction.

use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::tgn_family::TgnFamily;

fn dataset() -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("smoke", 77);
    cfg.num_edges = 1200;
    cfg.recurrence = 0.6;
    cfg.generate()
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        batch_size: 100,
        max_epochs: 6,
        patience: 3,
        tolerance: 1e-3,
        timeout: Duration::from_secs(300),
        seed: 1,
        ..Default::default()
    }
}

fn model_cfg() -> ModelConfig {
    ModelConfig {
        embed_dim: 32,
        time_dim: 8,
        neighbors: 4,
        lr: 3e-3,
        seed: 1,
        ..Default::default()
    }
}

#[test]
fn tgn_beats_chance_transductively() {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 1);
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    let run = train_link_prediction(&mut model, &g, &split, &train_cfg());
    assert!(
        run.transductive.auc > 0.62,
        "TGN transductive AUC {:.4} too close to chance",
        run.transductive.auc
    );
    assert!(run.efficiency.runtime_per_epoch_secs > 0.0);
    assert!(run.efficiency.model_state_bytes > 0);
}

#[test]
fn jodie_beats_chance_transductively() {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 1);
    let mut model = TgnFamily::jodie(model_cfg(), &g);
    let run = train_link_prediction(&mut model, &g, &split, &train_cfg());
    assert!(
        run.transductive.auc > 0.60,
        "JODIE transductive AUC {:.4} too close to chance",
        run.transductive.auc
    );
}

#[test]
fn dyrep_beats_chance_transductively() {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 1);
    let mut model = TgnFamily::dyrep(model_cfg(), &g);
    let run = train_link_prediction(&mut model, &g, &split, &train_cfg());
    assert!(
        run.transductive.auc > 0.60,
        "DyRep transductive AUC {:.4} too close to chance",
        run.transductive.auc
    );
}

#[test]
fn loss_decreases_over_epochs() {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 2);
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    let run = train_link_prediction(&mut model, &g, &split, &train_cfg());
    let first = run.epoch_losses.first().copied().unwrap();
    let last = run.epoch_losses.last().copied().unwrap();
    assert!(last < first, "loss went {first} → {last}");
}

#[test]
fn inductive_sets_are_scored() {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 3);
    let mut model = TgnFamily::tgn(model_cfg(), &g);
    let run = train_link_prediction(&mut model, &g, &split, &train_cfg());
    assert!(run.inductive.n_edges > 0);
    assert_eq!(
        run.new_old.n_edges + run.new_new.n_edges,
        run.inductive.n_edges
    );
    assert!(run.inductive.auc > 0.0 && run.inductive.auc <= 1.0);
}
