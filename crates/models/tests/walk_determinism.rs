//! Cross-process bit-identity of the anonymized-walk features.
//!
//! `position_counts` used to return a `HashMap`, so anything draining it —
//! the CAWN/NeurTW feature assembly — saw a `RandomState`-dependent order
//! that differed *between processes* even with identical seeds. The
//! `no-hashmap-iteration-in-numeric-path` audit rule now bans that, and
//! `position_counts` emits sorted keys via `BTreeMap`. This regression test
//! proves the property the fix restores: two separate processes (fresh
//! `RandomState` each) hash the drained feature stream to the same bits.

use std::collections::BTreeMap;
use std::process::Command;

use benchtemp_core::pipeline::StreamContext;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::neighbors::{NeighborFinder, SamplingStrategy};
use benchtemp_graph::paged::NeighborBackend;
use benchtemp_models::walks::{anonymize, position_counts, sample_walks};
use benchtemp_tensor::init;

/// FNV-1a over the drained feature stream — endian-stable and
/// dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The walk-feature pipeline a CAWN-style model runs per candidate edge,
/// with the count maps drained in their iteration order — exactly the
/// surface the HashMap bug corrupted.
fn walk_feature_digest() -> u64 {
    let g = GeneratorConfig::small("walkdet", 29).generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let ctx = StreamContext {
        graph: &g,
        neighbors: NeighborBackend::Resident(&nf),
    };
    let mut rng = init::rng(5);
    let mut bytes: Vec<u8> = Vec::new();
    for ev in &g.events[g.num_events() - 50..] {
        let wu = sample_walks(
            &ctx,
            ev.src,
            ev.t,
            4,
            2,
            SamplingStrategy::Uniform,
            &mut rng,
        );
        let wv = sample_walks(
            &ctx,
            ev.dst,
            ev.t,
            4,
            2,
            SamplingStrategy::Uniform,
            &mut rng,
        );
        let cu: BTreeMap<usize, Vec<f32>> = position_counts(&wu);
        let cv = position_counts(&wv);
        // Drain in iteration order: sorted by construction after the fix.
        for (node, hits) in cu.iter().chain(cv.iter()) {
            bytes.extend(node.to_le_bytes());
            for h in hits {
                bytes.extend(h.to_bits().to_le_bytes());
            }
            for f in anonymize(*node, &cu, &cv, 2, 4) {
                bytes.extend(f.to_bits().to_le_bytes());
            }
        }
    }
    fnv1a(bytes.into_iter())
}

/// Child-process worker: prints the digest. Skipped unless spawned below.
#[test]
fn walk_child_worker() {
    if std::env::var("BENCHTEMP_WALK_CHILD").is_err() {
        return;
    }
    println!("RESULT {:016x}", walk_feature_digest());
}

fn run_child() -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let out = Command::new(exe)
        .args(["walk_child_worker", "--exact", "--nocapture"])
        .env("BENCHTEMP_WALK_CHILD", "1")
        .output()
        .expect("spawn child test process");
    assert!(
        out.status.success(),
        "walk child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("no RESULT line from child:\n{stdout}"))
}

/// Two fresh processes — two fresh `RandomState`s — one bit pattern.
#[test]
fn walk_features_bit_identical_across_processes() {
    if std::env::var("BENCHTEMP_WALK_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let a = run_child();
    let b = run_child();
    assert_eq!(
        a, b,
        "walk-feature emission order must not depend on RandomState"
    );
    // And the in-process digest agrees too: the order is a property of the
    // data, not of the process.
    assert_eq!(a, format!("RESULT {:016x}", walk_feature_digest()));
}
