//! Every model in the zoo must learn: full-pipeline link prediction on a
//! small structured stream, transductive AUC clearly above chance.
//! (The TGN family has its own dedicated test file.)

use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, TgnnModel, TrainConfig};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_models::common::ModelConfig;
use benchtemp_models::{EdgeBank, Nat, SnapshotGnn, Temp, Tgat, WalkModel};

fn dataset() -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("zoo", 177);
    cfg.num_edges = 1200;
    cfg.recurrence = 0.6;
    cfg.generate()
}

fn train_cfg() -> TrainConfig {
    TrainConfig {
        batch_size: 100,
        max_epochs: 6,
        patience: 3,
        timeout: Duration::from_secs(600),
        seed: 1,
        ..Default::default()
    }
}

fn model_cfg() -> ModelConfig {
    ModelConfig {
        embed_dim: 32,
        time_dim: 8,
        neighbors: 4,
        layers: 2,
        heads: 2,
        walks: 3,
        walk_len: 2,
        lr: 3e-3,
        seed: 1,
    }
}

fn check(model: &mut dyn TgnnModel, min_auc: f64) {
    let g = dataset();
    let split = LinkPredSplit::new(&g, 1);
    let run = train_link_prediction(model, &g, &split, &train_cfg());
    assert!(
        run.transductive.auc > min_auc,
        "{} transductive AUC {:.4} below {min_auc}",
        model.name(),
        run.transductive.auc
    );
    assert!(
        run.transductive.ap > 0.5,
        "{} AP {:.4}",
        model.name(),
        run.transductive.ap
    );
}

#[test]
fn tgat_learns() {
    check(&mut Tgat::new(model_cfg(), &dataset()), 0.60);
}

#[test]
fn cawn_learns() {
    check(&mut WalkModel::cawn(model_cfg(), &dataset()), 0.62);
}

#[test]
fn neurtw_learns() {
    check(&mut WalkModel::neurtw(model_cfg(), &dataset()), 0.62);
}

#[test]
fn nat_learns() {
    check(&mut Nat::new(model_cfg(), &dataset()), 0.62);
}

#[test]
fn temp_learns() {
    check(&mut Temp::new(model_cfg(), &dataset()), 0.60);
}

#[test]
fn edgebank_exploits_recurrence() {
    check(&mut EdgeBank::unlimited(), 0.55);
}

#[test]
fn snapshot_gnn_learns_but_lags_continuous_models() {
    // §5: snapshot methods are the paradigm continuous-time TGNNs improved
    // on; the baseline must beat chance but is not expected to win.
    check(&mut SnapshotGnn::new(model_cfg(), &dataset()), 0.55);
}
