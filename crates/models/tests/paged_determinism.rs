//! Cross-process, cross-thread-count bit-identity of the paged store
//! backend (DESIGN.md §16).
//!
//! Each child process bulk-loads the same generated graph into an on-disk
//! store with a 64 KiB page-cache budget — small enough that sampling and
//! training continually evict pages — and then asserts, in-process, that
//! (a) a multi-hop frontier expanded through the paged backend matches the
//! resident CSR engine bit for bit, and (b) a short TGAT training
//! trajectory driven through a paged `StreamContext` matches the same
//! model trained resident. The child prints an FNV-1a digest over both;
//! 1-thread and 4-thread children must print the same bits, which also
//! witnesses that eviction scheduling never leaks into results.

use std::process::Command;

use benchtemp_core::pipeline::{StreamContext, TgnnModel};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::paged::{NeighborBackend, PagedNeighborFinder, StoreOptions};
use benchtemp_graph::{NeighborFinder, SamplingStrategy};
use benchtemp_models::common::ModelConfig;
use benchtemp_models::tgat::Tgat;
use benchtemp_obs::counters::STORE_PAGE_EVICTIONS;

const CACHE_BUDGET: usize = 64 * 1024;

/// FNV-1a over a byte stream — endian-stable and dependency-free.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest every column of every hop of a frontier.
fn frontier_bytes(f: &benchtemp_graph::Frontier, bytes: &mut Vec<u8>) {
    for hop in &f.hops {
        for &n in &hop.nodes {
            bytes.extend((n as u64).to_le_bytes());
        }
        for &t in &hop.times {
            bytes.extend(t.to_bits().to_le_bytes());
        }
        for &e in &hop.event_idx {
            bytes.extend((e as u64).to_le_bytes());
        }
        for &d in &hop.dts {
            bytes.extend(d.to_bits().to_le_bytes());
        }
        for &m in &hop.mask {
            bytes.push(m as u8);
        }
    }
}

/// Train a small TGAT for a few batches through `ctx`, digesting every
/// loss bit and the final eval scores.
fn trajectory_bytes(g: &benchtemp_graph::TemporalGraph, ctx: &StreamContext) -> Vec<u8> {
    let cfg = ModelConfig {
        embed_dim: 16,
        time_dim: 8,
        heads: 2,
        neighbors: 3,
        layers: 2,
        ..Default::default()
    };
    let mut model = Tgat::new(cfg, g);
    let mut bytes: Vec<u8> = Vec::new();
    let batch_size = 20;
    for (i, batch) in g.events.chunks(batch_size).take(6).enumerate() {
        let negs: Vec<usize> = batch
            .iter()
            .enumerate()
            .map(|(j, _)| g.num_users + (i * batch_size + j) % (g.num_nodes - g.num_users))
            .collect();
        let loss = model.train_batch(ctx, batch, &negs);
        bytes.extend(loss.to_bits().to_le_bytes());
    }
    let eval = &g.events[g.num_events() - batch_size..];
    let negs: Vec<usize> = eval.iter().map(|_| g.num_users).collect();
    let (pos, neg) = model.eval_batch(ctx, eval, &negs);
    for s in pos.iter().chain(neg.iter()) {
        bytes.extend(s.to_bits().to_le_bytes());
    }
    bytes
}

/// Full paged-vs-resident witness for one process; returns the digest.
fn paged_digest() -> u64 {
    let mut cfg = GeneratorConfig::small("pageddet", 37);
    cfg.num_edges = 3_000; // ≫ 64 KiB of store columns → guaranteed evictions
    let g = cfg.generate();
    let nf = NeighborFinder::from_events(g.num_nodes, &g.events);
    let dir = std::env::temp_dir().join(format!("benchtemp-paged-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions {
        cache_budget_bytes: Some(CACHE_BUDGET),
        run_events: 512,
    };
    let paged = PagedNeighborFinder::bulk_load_graph(&dir, &g, &opts).expect("bulk load");

    let ev0 = STORE_PAGE_EVICTIONS.get();
    // (a) Frontier bit-identity under eviction pressure.
    let roots: Vec<usize> = g.events.iter().step_by(7).map(|e| e.src).collect();
    let times: Vec<f64> = g.events.iter().step_by(7).map(|e| e.t).collect();
    let resident_f = nf.sample_frontier(&roots, &times, 8, 2, SamplingStrategy::TemporalSafe, 55);
    let paged_f = paged.sample_frontier(&roots, &times, 8, 2, SamplingStrategy::TemporalSafe, 55);
    let (mut rb, mut pb) = (Vec::new(), Vec::new());
    frontier_bytes(&resident_f, &mut rb);
    frontier_bytes(&paged_f, &mut pb);
    assert_eq!(
        fnv1a(rb.into_iter()),
        fnv1a(pb.iter().copied()),
        "paged frontier must be bit-identical to resident"
    );

    // (b) Training-trajectory bit-identity through a paged StreamContext.
    let resident_traj = trajectory_bytes(
        &g,
        &StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Resident(&nf),
        },
    );
    let paged_traj = trajectory_bytes(
        &g,
        &StreamContext {
            graph: &g,
            neighbors: NeighborBackend::Paged(&paged),
        },
    );
    assert_eq!(
        fnv1a(resident_traj.into_iter()),
        fnv1a(paged_traj.iter().copied()),
        "TGAT trajectory through the paged backend must match resident"
    );
    assert!(
        STORE_PAGE_EVICTIONS.get() > ev0,
        "64 KiB budget must evict mid-run for this test to mean anything"
    );

    drop(paged);
    let _ = std::fs::remove_dir_all(&dir);
    fnv1a(pb.into_iter().chain(paged_traj))
}

/// Child-process worker: prints the digest. Skipped unless spawned below.
#[test]
fn paged_child_worker() {
    if std::env::var("BENCHTEMP_PAGED_CHILD").is_err() {
        return;
    }
    println!("RESULT {:016x}", paged_digest());
}

fn run_child(threads: &str) -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["paged_child_worker", "--exact", "--nocapture"])
        .env("BENCHTEMP_PAGED_CHILD", "1")
        .env("BENCHTEMP_THREADS", threads);
    let out = cmd.output().expect("spawn child test process");
    assert!(
        out.status.success(),
        "paged child (threads={threads}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    stdout
        .lines()
        .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("no RESULT line from child:\n{stdout}"))
}

/// 1-thread vs 4-thread children: the paged frontier and the paged
/// training trajectory are one bit pattern regardless of worker count or
/// eviction interleaving.
#[test]
fn paged_backend_bit_identical_across_processes_and_threads() {
    if std::env::var("BENCHTEMP_PAGED_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let single = run_child("1");
    let quad = run_child("4");
    assert_eq!(
        single, quad,
        "paged sampling/training must not depend on thread count"
    );
}
