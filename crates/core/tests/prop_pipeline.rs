//! Property-based tests on the pipeline modules: DataLoader split
//! invariants (including the paper's New-Old ∨ New-New ≡ Inductive
//! identity), EdgeSampler guarantees, Evaluator metric properties, and the
//! EarlyStopMonitor state machine.

use proptest::prelude::*;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::early_stop::EarlyStopMonitor;
use benchtemp_core::evaluator::{average_precision, multiclass_metrics, roc_auc};
use benchtemp_core::sampler::{EdgeSampler, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;

fn arb_graph() -> impl Strategy<Value = benchtemp_graph::TemporalGraph> {
    (0u64..200, 200usize..1200, prop::bool::ANY).prop_map(|(seed, edges, bipartite)| {
        let mut cfg = GeneratorConfig::small("prop-core", seed);
        cfg.num_edges = edges;
        cfg.bipartite = bipartite;
        if !bipartite {
            cfg.num_users = 60;
        }
        cfg.generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chronological split: disjoint, ordered, complete.
    #[test]
    fn split_partitions_chronologically(g in arb_graph(), seed in 0u64..50) {
        let s = LinkPredSplit::new(&g, seed);
        let train_window = g.events.iter().filter(|e| e.t < s.val_time).count();
        prop_assert_eq!(train_window + s.val.len() + s.test.len(), g.num_events());
        prop_assert!(s.train.len() <= train_window, "train has unseen-node edges removed");
        prop_assert!(s.train.windows(2).all(|w| w[0].t <= w[1].t));
        prop_assert!(s.val.iter().all(|e| e.t >= s.val_time && e.t < s.test_time));
        prop_assert!(s.test.iter().all(|e| e.t >= s.test_time));
    }

    /// No training edge touches an unseen node; the paper's partition
    /// identity New-Old ∨ New-New ≡ Inductive holds on val and test.
    #[test]
    fn inductive_partition_identity(g in arb_graph(), seed in 0u64..50) {
        let s = LinkPredSplit::new(&g, seed);
        prop_assert!(s.train.iter().all(|e| !s.unseen[e.src] && !s.unseen[e.dst]));
        prop_assert_eq!(s.new_old_test.len() + s.new_new_test.len(), s.inductive_test.len());
        prop_assert_eq!(s.new_old_val.len() + s.new_new_val.len(), s.inductive_val.len());
        for e in &s.new_new_test {
            prop_assert!(s.unseen[e.src] && s.unseen[e.dst]);
        }
        for e in &s.new_old_test {
            prop_assert!(s.unseen[e.src] != s.unseen[e.dst]);
        }
    }

    /// Negative samples are valid destinations and never the positive one.
    #[test]
    fn sampler_respects_constraints(g in arb_graph(), seed in 0u64..50) {
        for strategy in [NegativeStrategy::Random, NegativeStrategy::Historical, NegativeStrategy::Inductive] {
            let half = g.num_events() / 2;
            let mut s = EdgeSampler::new(&g, &g.events[..half], strategy, seed);
            let batch = &g.events[half..(half + 50).min(g.num_events())];
            let negs = s.sample_batch(batch);
            for (e, &d) in batch.iter().zip(&negs) {
                prop_assert_ne!(d, e.dst);
                prop_assert!(d < g.num_nodes);
                if g.bipartite {
                    prop_assert!(d >= g.num_users, "bipartite negatives must be items");
                }
            }
            // Fixed-seed reproducibility after reset.
            s.reset();
            prop_assert_eq!(s.sample_batch(batch), negs);
        }
    }

    /// AUC ∈ [0,1]; invariant under strictly monotone score transforms;
    /// complementary under label flip.
    #[test]
    fn auc_properties(
        scores in prop::collection::vec(-5.0f32..5.0, 10..100),
        labels_bits in prop::collection::vec(prop::bool::ANY, 10..100),
    ) {
        let n = scores.len().min(labels_bits.len());
        let scores = &scores[..n];
        let labels: Vec<f32> = labels_bits[..n].iter().map(|&b| b as u8 as f32).collect();
        let auc = roc_auc(&labels, scores);
        prop_assert!((0.0..=1.0).contains(&auc));
        let transformed: Vec<f32> = scores.iter().map(|&s| s.exp() * 2.0 + 1.0).collect();
        prop_assert!((roc_auc(&labels, &transformed) - auc).abs() < 1e-9);
        let flipped: Vec<f32> = labels.iter().map(|&l| 1.0 - l).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        if n_pos > 0 && n_pos < n {
            prop_assert!((roc_auc(&flipped, scores) - (1.0 - auc)).abs() < 1e-9);
        }
    }

    /// AP ∈ (0,1]; AP = 1 for perfectly ranked scores.
    #[test]
    fn ap_properties(n_pos in 1usize..20, n_neg in 1usize..20) {
        let mut labels = vec![1.0f32; n_pos];
        labels.extend(std::iter::repeat(0.0).take(n_neg));
        let scores: Vec<f32> = (0..n_pos + n_neg).map(|i| -(i as f32)).collect();
        let ap = average_precision(&labels, &scores);
        prop_assert!((ap - 1.0).abs() < 1e-9, "perfect ranking AP {}", ap);
    }

    /// Weighted recall equals accuracy (a known identity), and all metrics
    /// stay in [0,1].
    #[test]
    fn multiclass_identities(
        pred in prop::collection::vec(0usize..4, 5..60),
        truth in prop::collection::vec(0usize..4, 5..60),
    ) {
        let n = pred.len().min(truth.len());
        let m = multiclass_metrics(&pred[..n], &truth[..n], 4);
        prop_assert!((m.recall_weighted - m.accuracy).abs() < 1e-9);
        for v in [m.accuracy, m.precision_weighted, m.recall_weighted, m.f1_weighted] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// The monitor stops exactly after `patience` non-improving rounds and
    /// its best metric is the max of what it saw (up to tolerance).
    #[test]
    fn early_stop_state_machine(
        metrics in prop::collection::vec(0.0f64..1.0, 1..30),
        patience in 1usize..5,
    ) {
        let mut m = EarlyStopMonitor::new(patience, 1e-3);
        let mut running_best = f64::NEG_INFINITY;
        let mut dry = 0usize;
        for &v in &metrics {
            if m.should_stop() {
                break;
            }
            let improved = m.record(v);
            if improved {
                prop_assert!(v > running_best + 1e-3);
                running_best = v;
                dry = 0;
            } else {
                dry += 1;
            }
            prop_assert_eq!(m.should_stop(), dry >= patience);
        }
        if running_best.is_finite() {
            prop_assert!((m.best_metric() - running_best).abs() < 1e-12);
        }
    }
}
