//! Property-style tests on the pipeline modules: DataLoader split
//! invariants (including the paper's New-Old ∨ New-New ≡ Inductive
//! identity), EdgeSampler guarantees, Evaluator metric properties, and the
//! EarlyStopMonitor state machine.
//!
//! Cases are drawn from a seeded in-repo [`Pcg32`] stream rather than an
//! external property-testing framework, so the suite is fully deterministic
//! and builds offline.

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::early_stop::EarlyStopMonitor;
use benchtemp_core::evaluator::{auc_ap, average_precision, multiclass_metrics, roc_auc};
use benchtemp_core::sampler::{EdgeSampler, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_tensor::Pcg32;

const CASES: usize = 32;

fn random_graph(rng: &mut Pcg32) -> benchtemp_graph::TemporalGraph {
    let mut cfg = GeneratorConfig::small("prop-core", rng.gen_range(0u64..200));
    cfg.num_edges = rng.gen_range(200usize..1200);
    cfg.bipartite = rng.gen_bool(0.5);
    if !cfg.bipartite {
        cfg.num_users = 60;
    }
    cfg.generate()
}

/// Chronological split: disjoint, ordered, complete.
#[test]
fn split_partitions_chronologically() {
    let mut rng = Pcg32::seed_from_u64(0x5117);
    for case in 0..CASES {
        let g = random_graph(&mut rng);
        let s = LinkPredSplit::new(&g, rng.gen_range(0u64..50));
        let train_window = g.events.iter().filter(|e| e.t < s.val_time).count();
        assert_eq!(
            train_window + s.val.len() + s.test.len(),
            g.num_events(),
            "case {case}"
        );
        assert!(
            s.train.len() <= train_window,
            "case {case}: train has unseen-node edges removed"
        );
        assert!(s.train.windows(2).all(|w| w[0].t <= w[1].t), "case {case}");
        assert!(
            s.val.iter().all(|e| e.t >= s.val_time && e.t < s.test_time),
            "case {case}"
        );
        assert!(s.test.iter().all(|e| e.t >= s.test_time), "case {case}");
    }
}

/// No training edge touches an unseen node; the paper's partition
/// identity New-Old ∨ New-New ≡ Inductive holds on val and test.
#[test]
fn inductive_partition_identity() {
    let mut rng = Pcg32::seed_from_u64(0x1d5);
    for case in 0..CASES {
        let g = random_graph(&mut rng);
        let s = LinkPredSplit::new(&g, rng.gen_range(0u64..50));
        assert!(
            s.train.iter().all(|e| !s.unseen[e.src] && !s.unseen[e.dst]),
            "case {case}"
        );
        assert_eq!(
            s.new_old_test.len() + s.new_new_test.len(),
            s.inductive_test.len(),
            "case {case}"
        );
        assert_eq!(
            s.new_old_val.len() + s.new_new_val.len(),
            s.inductive_val.len(),
            "case {case}"
        );
        for e in &s.new_new_test {
            assert!(s.unseen[e.src] && s.unseen[e.dst], "case {case}");
        }
        for e in &s.new_old_test {
            assert!(s.unseen[e.src] != s.unseen[e.dst], "case {case}");
        }
    }
}

/// Negative samples are valid destinations and never the positive one.
#[test]
fn sampler_respects_constraints() {
    let mut rng = Pcg32::seed_from_u64(0x5a3);
    for case in 0..CASES {
        let g = random_graph(&mut rng);
        let seed = rng.gen_range(0u64..50);
        for strategy in [
            NegativeStrategy::Random,
            NegativeStrategy::Historical,
            NegativeStrategy::Inductive,
        ] {
            let half = g.num_events() / 2;
            let mut s = EdgeSampler::new(&g, &g.events[..half], strategy, seed);
            let batch = &g.events[half..(half + 50).min(g.num_events())];
            let negs = s.sample_batch(batch);
            for (e, &d) in batch.iter().zip(&negs) {
                assert_ne!(d, e.dst, "case {case}");
                assert!(d < g.num_nodes, "case {case}");
                if g.bipartite {
                    assert!(
                        d >= g.num_users,
                        "case {case}: bipartite negatives must be items"
                    );
                }
            }
            // Fixed-seed reproducibility after reset.
            s.reset();
            assert_eq!(s.sample_batch(batch), negs, "case {case}");
        }
    }
}

/// AUC ∈ [0,1]; invariant under strictly monotone score transforms;
/// complementary under label flip. Also: the fused `auc_ap` pass agrees
/// with the individual metric entry points.
#[test]
fn auc_properties() {
    let mut rng = Pcg32::seed_from_u64(0xa0c);
    for case in 0..CASES {
        let n = rng.gen_range(10usize..100);
        let scores: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let labels: Vec<f32> = (0..n).map(|_| rng.gen_bool(0.5) as u8 as f32).collect();
        let auc = roc_auc(&labels, &scores);
        assert!((0.0..=1.0).contains(&auc), "case {case}");
        let (fused_auc, fused_ap) = auc_ap(&labels, &scores);
        assert_eq!(fused_auc, auc, "case {case}: shared-sort AUC must match");
        assert_eq!(fused_ap, average_precision(&labels, &scores), "case {case}");
        let transformed: Vec<f32> = scores.iter().map(|&s| s.exp() * 2.0 + 1.0).collect();
        assert!(
            (roc_auc(&labels, &transformed) - auc).abs() < 1e-9,
            "case {case}"
        );
        let flipped: Vec<f32> = labels.iter().map(|&l| 1.0 - l).collect();
        let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
        if n_pos > 0 && n_pos < n {
            assert!(
                (roc_auc(&flipped, &scores) - (1.0 - auc)).abs() < 1e-9,
                "case {case}"
            );
        }
    }
}

/// AP ∈ (0,1]; AP = 1 for perfectly ranked scores.
#[test]
fn ap_properties() {
    let mut rng = Pcg32::seed_from_u64(0xa9);
    for case in 0..CASES {
        let n_pos = rng.gen_range(1usize..20);
        let n_neg = rng.gen_range(1usize..20);
        let mut labels = vec![1.0f32; n_pos];
        labels.extend(std::iter::repeat_n(0.0, n_neg));
        let scores: Vec<f32> = (0..n_pos + n_neg).map(|i| -(i as f32)).collect();
        let ap = average_precision(&labels, &scores);
        assert!(
            (ap - 1.0).abs() < 1e-9,
            "case {case}: perfect ranking AP {ap}"
        );
    }
}

/// Weighted recall equals accuracy (a known identity), and all metrics
/// stay in [0,1].
#[test]
fn multiclass_identities() {
    let mut rng = Pcg32::seed_from_u64(0x41c);
    for case in 0..CASES {
        let n = rng.gen_range(5usize..60);
        let pred: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..4)).collect();
        let truth: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..4)).collect();
        let m = multiclass_metrics(&pred, &truth, 4);
        assert!((m.recall_weighted - m.accuracy).abs() < 1e-9, "case {case}");
        for v in [
            m.accuracy,
            m.precision_weighted,
            m.recall_weighted,
            m.f1_weighted,
        ] {
            assert!((0.0..=1.0).contains(&v), "case {case}");
        }
    }
}

/// The monitor stops exactly after `patience` non-improving rounds and
/// its best metric is the max of what it saw (up to tolerance).
#[test]
fn early_stop_state_machine() {
    let mut rng = Pcg32::seed_from_u64(0xe5);
    for case in 0..CASES {
        let metrics: Vec<f64> = (0..rng.gen_range(1usize..30))
            .map(|_| rng.gen_range(0.0f64..1.0))
            .collect();
        let patience = rng.gen_range(1usize..5);
        let mut m = EarlyStopMonitor::new(patience, 1e-3);
        let mut running_best = f64::NEG_INFINITY;
        let mut dry = 0usize;
        for &v in &metrics {
            if m.should_stop() {
                break;
            }
            let improved = m.record(v);
            if improved {
                assert!(v > running_best + 1e-3, "case {case}");
                running_best = v;
                dry = 0;
            } else {
                dry += 1;
            }
            assert_eq!(m.should_stop(), dry >= patience, "case {case}");
        }
        if running_best.is_finite() {
            assert!(
                (m.best_metric() - running_best).abs() < 1e-12,
                "case {case}"
            );
        }
    }
}
