//! Regression tests for the obs-instrumented pipeline (DESIGN.md §9).
//!
//! The central one pins down the `EpochTimer` bug this subsystem replaced:
//! `runtime_per_epoch_secs` must cover *training only*. A stub model whose
//! training batches sleep much longer than its scoring batches makes any
//! contamination show up as a factor-of-two error.

use std::sync::Mutex;
use std::time::Duration;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::efficiency::stage;
use benchtemp_core::pipeline::{
    train_link_prediction, Anatomy, StreamContext, TgnnModel, TrainConfig,
};
use benchtemp_core::NegativeStrategy;
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::temporal_graph::Interaction;
use benchtemp_tensor::Matrix;

/// The trace sink is process-global; tests that toggle it (or that must not
/// observe another test's open spans in the file) serialize through here.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Stub model: training batches sleep `train_ms`, scoring batches sleep
/// `eval_ms`. Scores are deterministic functions of the edge so the metric
/// plumbing downstream stays exercised.
struct SleepyModel {
    train_ms: u64,
    eval_ms: u64,
}

impl TgnnModel for SleepyModel {
    fn name(&self) -> &'static str {
        "Sleepy"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: false,
            attention: false,
            rnn: false,
            temp_walk: false,
            scalability: true,
            supervision: "stub",
        }
    }

    fn reset_state(&mut self) {}

    fn train_batch(&mut self, _: &StreamContext, _: &[Interaction], _: &[usize]) -> f32 {
        std::thread::sleep(Duration::from_millis(self.train_ms));
        0.5
    }

    fn eval_batch(
        &mut self,
        _: &StreamContext,
        batch: &[Interaction],
        neg: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        std::thread::sleep(Duration::from_millis(self.eval_ms));
        let score = |a: usize, b: usize| ((a * 31 + b * 7) % 101) as f32 / 101.0;
        (
            batch.iter().map(|e| 1.0 + score(e.src, e.dst)).collect(),
            batch
                .iter()
                .zip(neg)
                .map(|(e, &n)| score(e.src, n))
                .collect(),
        )
    }

    fn score_candidates(
        &mut self,
        _: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let score = |a: usize, b: usize| ((a * 31 + b * 7) % 101) as f32 / 101.0;
        let pos = batch.iter().map(|e| 1.0 + score(e.src, e.dst)).collect();
        let n = batch.len();
        let cands = (0..n * k)
            .map(|i| score(batch[i % n].src, cand_dsts[i]))
            .collect();
        (pos, cands)
    }

    fn embed_events(&mut self, _: &StreamContext, batch: &[Interaction]) -> Matrix {
        Matrix::zeros(batch.len(), 4)
    }

    fn embed_dim(&self) -> usize {
        4
    }

    fn snapshot(&self) -> Vec<Matrix> {
        Vec::new()
    }

    fn restore(&mut self, _: &[Matrix]) {}

    fn state_bytes(&self) -> usize {
        0
    }
}

fn run_job(model: &mut SleepyModel, max_epochs: usize) -> benchtemp_core::LinkPredictionRun {
    let g = GeneratorConfig::small("obs-pipeline", 171).generate();
    let split = LinkPredSplit::new(&g, 7);
    let cfg = TrainConfig {
        batch_size: 100_000, // one batch per stream pass → sleeps are exact
        max_epochs,
        patience: 10,
        tolerance: 1e-9,
        timeout: Duration::from_secs(600),
        seed: 7,
        neg_strategy: NegativeStrategy::Random,
        rank_negatives: 0,
        paged_store: None,
    };
    train_link_prediction(model, &g, &split, &cfg)
}

#[test]
fn runtime_per_epoch_excludes_eval_scoring() {
    let _lock = TRACE_LOCK.lock().unwrap();
    // Train sleeps 80 ms/epoch; val+test scoring sleeps 2×40 ms/epoch. The
    // old EpochTimer (reset at epoch top, read after the next epoch's
    // training) charged the scoring to the following epoch, reporting
    // ~160 ms/epoch. The span-based clock must report ~80 ms.
    let mut model = SleepyModel {
        train_ms: 80,
        eval_ms: 40,
    };
    let run = run_job(&mut model, 3);
    let eff = &run.efficiency;

    let rt = eff.runtime_per_epoch_secs;
    assert!(rt >= 0.075, "runtime/epoch {rt} lost training time");
    assert!(
        rt < 0.130,
        "runtime/epoch {rt} absorbed eval scoring (contaminated ≈ 0.160)"
    );

    // Every epoch opened exactly one span per protocol stage.
    let p = &eff.profile;
    assert_eq!(p.count(stage::TRAIN_EPOCH), 3);
    assert_eq!(p.count(stage::VAL_SCORING), 3);
    assert_eq!(p.count(stage::TEST_SCORING), 3);
    assert_eq!(p.count(stage::FINAL_METRICS), 1);

    // Scoring time landed in its own stages, not in training.
    let s = &eff.stages;
    assert!(s.val_secs >= 0.110, "val_secs {}", s.val_secs);
    assert!(s.test_secs >= 0.110, "test_secs {}", s.test_secs);

    // The breakdown accounts for the whole job: the sleeps all happen under
    // stage spans, so the stage sum must be within 5% of job wall-clock.
    let sum = s.stage_sum_secs();
    assert!(
        (s.job_secs - sum).abs() <= 0.05 * s.job_secs,
        "stage sum {sum} vs job {}",
        s.job_secs
    );
}

#[test]
fn trace_stream_is_valid_jsonl_with_paired_spans() {
    let _lock = TRACE_LOCK.lock().unwrap();
    let path =
        std::env::temp_dir().join(format!("benchtemp-obs-test-{}.jsonl", std::process::id()));
    benchtemp_obs::trace::set_path(Some(&path));
    let mut model = SleepyModel {
        train_ms: 1,
        eval_ms: 1,
    };
    let run = run_job(&mut model, 2);
    benchtemp_obs::trace::set_path(None); // flush + close
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(run.transductive.n_edges > 0);

    let mut open: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    let mut spans_seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut counters_seen = false;
    for line in text.lines() {
        let ev = benchtemp_util::json::parse(line)
            .unwrap_or_else(|e| panic!("unparseable trace line {line:?}: {e:?}"));
        match ev.get("ev").and_then(|v| v.as_str()) {
            Some("open") => {
                let key = (
                    ev.get("tid").and_then(|v| v.as_u64()).unwrap(),
                    ev.get("sid").and_then(|v| v.as_u64()).unwrap(),
                );
                assert!(ev.get("t_us").and_then(|v| v.as_u64()).is_some());
                spans_seen.insert(ev.get("span").unwrap().as_str().unwrap().to_string());
                assert!(open.insert(key), "duplicate open {key:?}");
            }
            Some("close") => {
                let key = (
                    ev.get("tid").and_then(|v| v.as_u64()).unwrap(),
                    ev.get("sid").and_then(|v| v.as_u64()).unwrap(),
                );
                assert!(ev.get("dur_us").and_then(|v| v.as_u64()).is_some());
                assert!(ev.get("self_us").and_then(|v| v.as_u64()).is_some());
                assert!(open.remove(&key), "close without open {key:?}");
            }
            Some("counters") => counters_seen = true,
            other => panic!("unknown trace event {other:?} in {line:?}"),
        }
    }
    assert!(open.is_empty(), "unclosed spans in trace: {open:?}");
    assert!(counters_seen, "no counters snapshot in trace");
    for required in [
        stage::SETUP,
        stage::TRAIN_EPOCH,
        stage::VAL_SCORING,
        stage::TEST_SCORING,
        stage::FINAL_METRICS,
    ] {
        assert!(spans_seen.contains(required), "stage {required} not traced");
    }
}

#[test]
fn metrics_are_identical_with_tracing_on_and_off() {
    let _lock = TRACE_LOCK.lock().unwrap();
    let mut m1 = SleepyModel {
        train_ms: 0,
        eval_ms: 0,
    };
    benchtemp_obs::trace::set_path(None);
    let off = run_job(&mut m1, 2);

    let path = std::env::temp_dir().join(format!("benchtemp-obs-det-{}.jsonl", std::process::id()));
    benchtemp_obs::trace::set_path(Some(&path));
    let mut m2 = SleepyModel {
        train_ms: 0,
        eval_ms: 0,
    };
    let on = run_job(&mut m2, 2);
    benchtemp_obs::trace::set_path(None);
    let _ = std::fs::remove_file(&path);

    // Bit-identical metrics: tracing must be observation-only.
    assert_eq!(
        off.transductive.auc.to_bits(),
        on.transductive.auc.to_bits()
    );
    assert_eq!(off.transductive.ap.to_bits(), on.transductive.ap.to_bits());
    assert_eq!(off.new_new.auc.to_bits(), on.new_new.auc.to_bits());
    assert_eq!(off.val_aps, on.val_aps);
    assert_eq!(off.epoch_losses, on.epoch_losses);
}
