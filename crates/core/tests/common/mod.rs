//! Shared fixtures for the child-process determinism suites.
//!
//! The worker pool reads `BENCHTEMP_THREADS` once per process, so every
//! thread-count comparison spawns the test binary again as a child with the
//! env var set, and the driver compares the `RESULT …` marker lines the
//! workers print. `MlpEdgeModel` is the pipeline-conformant model the
//! workers train: stateless in time, but big enough (batch rows × concat
//! width × hidden crosses `PAR_FLOPS`) that the parallel matmul path is
//! genuinely exercised — a thread-count bug shows up as a bit flip.
#![allow(dead_code)]

use std::process::Command;

use benchtemp_core::pipeline::{Anatomy, StreamContext, TgnnModel};
use benchtemp_graph::temporal_graph::Interaction;
use benchtemp_tensor::nn::Mlp;
use benchtemp_tensor::{init, Adam, Graph, Matrix, ParamStore};

pub const NODE_DIM: usize = 16;
const HIDDEN: usize = 80;

/// Minimal pipeline-conformant model: scores an edge by running the
/// concatenated endpoint features through an MLP.
pub struct MlpEdgeModel {
    store: ParamStore,
    mlp: Mlp,
    adam: Adam,
}

impl MlpEdgeModel {
    pub fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = init::rng(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "edge", 2 * NODE_DIM, HIDDEN, 1);
        MlpEdgeModel {
            store,
            mlp,
            adam: Adam::new(1e-3),
        }
    }

    fn pair_features(&self, ctx: &StreamContext, srcs: &[usize], dsts: &[usize]) -> Matrix {
        let mut x = Matrix::zeros(srcs.len(), 2 * NODE_DIM);
        for (r, (&s, &d)) in srcs.iter().zip(dsts).enumerate() {
            x.row_mut(r)[..NODE_DIM].copy_from_slice(ctx.graph.node_features.row(s));
            x.row_mut(r)[NODE_DIM..].copy_from_slice(ctx.graph.node_features.row(d));
        }
        x
    }
}

impl TgnnModel for MlpEdgeModel {
    fn name(&self) -> &'static str {
        "MlpEdge"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: false,
            attention: false,
            rnn: false,
            temp_walk: false,
            scalability: true,
            supervision: "self-supervised",
        }
    }

    fn reset_state(&mut self) {}

    fn train_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> f32 {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let pos_dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let mut x = self.pair_features(ctx, &srcs, &pos_dsts);
        let xn = self.pair_features(ctx, &srcs, neg_dsts);
        x = x.concat_rows(&xn);
        let mut targets = vec![1.0f32; batch.len()];
        targets.extend(std::iter::repeat_n(0.0, batch.len()));

        let mut g = Graph::new(&self.store);
        let xv = g.input(x);
        let logits = self.mlp.forward(&mut g, xv);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).get(0, 0);
        let grads = g.backward(loss);
        drop(g);
        self.adam.step(&mut self.store, &grads);
        loss_val
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let pos_dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let score = |dsts: &[usize]| -> Vec<f32> {
            let mut g = Graph::new(&self.store);
            let xv = g.input(self.pair_features(ctx, &srcs, dsts));
            let logits = self.mlp.forward(&mut g, xv);
            let probs = g.sigmoid(logits);
            let m = g.value(probs);
            (0..m.rows()).map(|r| m.get(r, 0)).collect()
        };
        (score(&pos_dsts), score(neg_dsts))
    }

    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let pos_dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let score = |dsts: &[usize]| -> Vec<f32> {
            let mut g = Graph::new(&self.store);
            let xv = g.input(self.pair_features(ctx, &srcs, dsts));
            let logits = self.mlp.forward(&mut g, xv);
            let probs = g.sigmoid(logits);
            let m = g.value(probs);
            (0..m.rows()).map(|r| m.get(r, 0)).collect()
        };
        let pos = score(&pos_dsts);
        let n = batch.len();
        let mut cands = Vec::with_capacity(n * k);
        for j in 0..k {
            cands.extend(score(&cand_dsts[j * n..(j + 1) * n]));
        }
        (pos, cands)
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        ctx.graph.node_features.gather_rows(&srcs)
    }

    fn embed_dim(&self) -> usize {
        NODE_DIM
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.store.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.store.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.store.heap_bytes()
    }
}

/// Re-invoke this test binary running only `worker`, with
/// `BENCHTEMP_DETERMINISM_CHILD=1` plus `envs`, and return the worker's
/// `RESULT …` marker line.
pub fn run_child(worker: &str, envs: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args([worker, "--exact", "--nocapture"])
        .env("BENCHTEMP_DETERMINISM_CHILD", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child test process");
    assert!(
        out.status.success(),
        "child with {envs:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest's unbuffered "test … ok" progress text can share a line with
    // the worker's output, so match the marker anywhere in the line.
    stdout
        .lines()
        .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("no RESULT line from child:\n{stdout}"))
}
