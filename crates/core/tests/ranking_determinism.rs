//! Determinism suite for the filtered-negative ranking path (DESIGN.md §14).
//!
//! Two contracts, both witnessed by exact bit patterns printed from child
//! processes (the pool reads `BENCHTEMP_THREADS` once per process, so each
//! thread count gets its own process — which also makes every comparison a
//! *cross-process* comparison, the reproducibility bar for published
//! leaderboard numbers):
//!
//! 1. `FilteredNegativeSet` is a pure function of (graph, split, strategy,
//!    k, seed): identical digests at any thread count, in any process.
//! 2. MRR/Hits@K flow through the pipeline without absorbing thread-count
//!    noise: the full ranking metric set is bit-identical at 1 vs 4
//!    threads, and enabling ranking leaves AUC/AP bits untouched.

mod common;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_core::{FilteredNegativeSet, NegativeStrategy};
use benchtemp_graph::generators::GeneratorConfig;
use common::{run_child, MlpEdgeModel, NODE_DIM};

fn fixture() -> (
    benchtemp_graph::temporal_graph::TemporalGraph,
    LinkPredSplit,
) {
    let mut cfg = GeneratorConfig::small("rank-det", 29);
    cfg.num_edges = 1200;
    cfg.node_dim = NODE_DIM;
    let graph = cfg.generate();
    let split = LinkPredSplit::new(&graph, 7);
    (graph, split)
}

/// Child worker: candidate-set digests for all three pools, then the full
/// ranking metric bits from a trained pipeline run.
#[test]
fn ranking_child_worker() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let (graph, split) = fixture();

    let mut bits = Vec::new();
    for strategy in [
        NegativeStrategy::Random,
        NegativeStrategy::Historical,
        NegativeStrategy::Inductive,
    ] {
        let set = FilteredNegativeSet::build(&graph, &split.train, &split.test, strategy, 10, 99);
        bits.push(format!("{:016x}", set.digest()));
    }

    let cfg = TrainConfig {
        max_epochs: 3,
        rank_negatives: 10,
        ..TrainConfig::default()
    };
    let mut model = MlpEdgeModel::new(3);
    let run = train_link_prediction(&mut model, &graph, &split, &cfg);
    for m in [run.transductive, run.inductive, run.new_old, run.new_new] {
        bits.push(format!("{:016x}", m.auc.to_bits()));
        bits.push(format!("{:016x}", m.ap.to_bits()));
        let r = m.ranking.expect("rank_negatives > 0 must produce ranking");
        for v in [r.mrr, r.hits_at_1, r.hits_at_3, r.hits_at_10] {
            bits.push(format!("{:016x}", v.to_bits()));
        }
        bits.push(format!("{}", m.n_edges));
    }
    println!("RESULT {}", bits.join(" "));
}

/// Contract 1 + 2: digests and ranking metrics are bit-identical across
/// thread counts, compared across separate processes.
#[test]
fn ranking_bits_identical_across_threads_and_processes() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let single = run_child("ranking_child_worker", &[("BENCHTEMP_THREADS", "1")]);
    let quad = run_child("ranking_child_worker", &[("BENCHTEMP_THREADS", "4")]);
    assert_eq!(
        single, quad,
        "filtered-negative sets / MRR must not depend on the thread count"
    );
    // Same config in a third process: cross-process stability, not just
    // agreement between two equally-wrong runs.
    let again = run_child("ranking_child_worker", &[("BENCHTEMP_THREADS", "4")]);
    assert_eq!(
        quad, again,
        "ranking results must be stable across processes"
    );
}

/// Enabling the ranking pass must not perturb AUC/AP: candidate scoring
/// runs on an isolated RNG and mutates no model state, so the paired
/// AUC/AP bits with `rank_negatives = 10` match a run with ranking off.
#[test]
fn enabling_ranking_leaves_auc_ap_bits_untouched() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return;
    }
    let (graph, split) = fixture();
    let run_with = |rank_negatives: usize| {
        let cfg = TrainConfig {
            max_epochs: 3,
            rank_negatives,
            ..TrainConfig::default()
        };
        let mut model = MlpEdgeModel::new(3);
        train_link_prediction(&mut model, &graph, &split, &cfg)
    };
    let off = run_with(0);
    let on = run_with(10);
    for (a, b) in [
        (&off.transductive, &on.transductive),
        (&off.inductive, &on.inductive),
        (&off.new_old, &on.new_old),
        (&off.new_new, &on.new_new),
    ] {
        assert_eq!(a.auc.to_bits(), b.auc.to_bits(), "ranking perturbed AUC");
        assert_eq!(a.ap.to_bits(), b.ap.to_bits(), "ranking perturbed AP");
        assert!(a.ranking.is_none() && b.ranking.is_some());
    }
    assert_eq!(
        off.epoch_losses, on.epoch_losses,
        "ranking perturbed training"
    );
}
