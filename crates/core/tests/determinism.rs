//! Thread-count determinism suite: the runtime contract says the same seed
//! produces bit-identical metrics at any `BENCHTEMP_THREADS` setting.
//!
//! The pool reads `BENCHTEMP_THREADS` once per process, so each setting runs
//! in a child process: the driver test re-invokes this test binary with
//! `BENCHTEMP_DETERMINISM_CHILD=1`, the worker test trains a small model
//! through the full link-prediction pipeline (big enough to cross the
//! parallel matmul threshold) and prints the exact bit patterns of every
//! metric, and the driver compares the lines across thread counts.

use std::process::Command;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{
    train_link_prediction, Anatomy, StreamContext, TgnnModel, TrainConfig,
};
use benchtemp_graph::generators::GeneratorConfig;
use benchtemp_graph::temporal_graph::Interaction;
use benchtemp_tensor::nn::Mlp;
use benchtemp_tensor::{init, Adam, Graph, Matrix, ParamStore};

const NODE_DIM: usize = 16;
const HIDDEN: usize = 80;

/// Minimal pipeline-conformant model: scores an edge by running the
/// concatenated endpoint features through an MLP. Stateless in time, but it
/// exercises the full tensor stack — pooled tapes, parallel matmul (batch
/// rows × concat width × hidden crosses `PAR_FLOPS`), backward, Adam.
struct MlpEdgeModel {
    store: ParamStore,
    mlp: Mlp,
    adam: Adam,
}

impl MlpEdgeModel {
    fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = init::rng(seed);
        let mlp = Mlp::new(&mut store, &mut rng, "edge", 2 * NODE_DIM, HIDDEN, 1);
        MlpEdgeModel {
            store,
            mlp,
            adam: Adam::new(1e-3),
        }
    }

    fn pair_features(&self, ctx: &StreamContext, srcs: &[usize], dsts: &[usize]) -> Matrix {
        let mut x = Matrix::zeros(srcs.len(), 2 * NODE_DIM);
        for (r, (&s, &d)) in srcs.iter().zip(dsts).enumerate() {
            x.row_mut(r)[..NODE_DIM].copy_from_slice(ctx.graph.node_features.row(s));
            x.row_mut(r)[NODE_DIM..].copy_from_slice(ctx.graph.node_features.row(d));
        }
        x
    }
}

impl TgnnModel for MlpEdgeModel {
    fn name(&self) -> &'static str {
        "MlpEdge"
    }

    fn anatomy(&self) -> Anatomy {
        Anatomy {
            memory: false,
            attention: false,
            rnn: false,
            temp_walk: false,
            scalability: true,
            supervision: "self-supervised",
        }
    }

    fn reset_state(&mut self) {}

    fn train_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> f32 {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let pos_dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let mut x = self.pair_features(ctx, &srcs, &pos_dsts);
        let xn = self.pair_features(ctx, &srcs, neg_dsts);
        x = x.concat_rows(&xn);
        let mut targets = vec![1.0f32; batch.len()];
        targets.extend(std::iter::repeat_n(0.0, batch.len()));

        let mut g = Graph::new(&self.store);
        let xv = g.input(x);
        let logits = self.mlp.forward(&mut g, xv);
        let loss = g.bce_with_logits(logits, &targets);
        let loss_val = g.value(loss).get(0, 0);
        let grads = g.backward(loss);
        drop(g);
        self.adam.step(&mut self.store, &grads);
        loss_val
    }

    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> (Vec<f32>, Vec<f32>) {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        let pos_dsts: Vec<usize> = batch.iter().map(|e| e.dst).collect();
        let score = |dsts: &[usize]| -> Vec<f32> {
            let mut g = Graph::new(&self.store);
            let xv = g.input(self.pair_features(ctx, &srcs, dsts));
            let logits = self.mlp.forward(&mut g, xv);
            let probs = g.sigmoid(logits);
            let m = g.value(probs);
            (0..m.rows()).map(|r| m.get(r, 0)).collect()
        };
        (score(&pos_dsts), score(neg_dsts))
    }

    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix {
        let srcs: Vec<usize> = batch.iter().map(|e| e.src).collect();
        ctx.graph.node_features.gather_rows(&srcs)
    }

    fn embed_dim(&self) -> usize {
        NODE_DIM
    }

    fn snapshot(&self) -> Vec<Matrix> {
        self.store.snapshot()
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        self.store.restore(snapshot);
    }

    fn state_bytes(&self) -> usize {
        self.store.heap_bytes()
    }
}

/// Child-process worker: runs the pipeline and prints every metric's exact
/// bit pattern. Skipped unless spawned by the driver below.
#[test]
fn determinism_child_worker() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let mut cfg = GeneratorConfig::small("det", 11);
    cfg.num_edges = 1200;
    cfg.node_dim = NODE_DIM;
    let graph = cfg.generate();
    let split = LinkPredSplit::new(&graph, 7);
    let train_cfg = TrainConfig {
        max_epochs: 3,
        ..TrainConfig::default()
    };
    let mut model = MlpEdgeModel::new(3);
    let run = train_link_prediction(&mut model, &graph, &split, &train_cfg);

    let mut bits = Vec::new();
    for m in [run.transductive, run.inductive, run.new_old, run.new_new] {
        bits.push(format!("{:016x}", m.auc.to_bits()));
        bits.push(format!("{:016x}", m.ap.to_bits()));
        bits.push(format!("{}", m.n_edges));
    }
    bits.push(format!("{:016x}", run.best_val_ap.to_bits()));
    for l in &run.epoch_losses {
        bits.push(format!("{:08x}", l.to_bits()));
    }
    println!("RESULT {}", bits.join(" "));
}

fn run_child(envs: &[(&str, &str)]) -> String {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["determinism_child_worker", "--exact", "--nocapture"])
        .env("BENCHTEMP_DETERMINISM_CHILD", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child test process");
    assert!(
        out.status.success(),
        "child with {envs:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // libtest's unbuffered "test … ok" progress text can share a line with
    // the worker's output, so match the marker anywhere in the line.
    stdout
        .lines()
        .find_map(|l| l.find("RESULT ").map(|at| l[at..].to_string()))
        .unwrap_or_else(|| panic!("no RESULT line from child:\n{stdout}"))
}

/// The contract itself: one thread vs four threads, bit-identical metrics.
#[test]
fn metrics_bit_identical_across_thread_counts() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let single = run_child(&[("BENCHTEMP_THREADS", "1")]);
    let quad = run_child(&[("BENCHTEMP_THREADS", "4")]);
    assert_eq!(single, quad, "metrics must not depend on the thread count");
}

/// The sanitizer is observation-only: arming `BENCHTEMP_SANITIZE=1` must
/// not change a single metric bit (it only *checks* slot claims and tape
/// accounting; it never reorders or perturbs work).
#[test]
fn metrics_bit_identical_with_sanitizer_on() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let plain = run_child(&[("BENCHTEMP_THREADS", "4")]);
    let sanitized = run_child(&[("BENCHTEMP_THREADS", "4"), ("BENCHTEMP_SANITIZE", "1")]);
    assert_eq!(plain, sanitized, "sanitize mode must not reach results");
}
