//! Thread-count determinism suite: the runtime contract says the same seed
//! produces bit-identical metrics at any `BENCHTEMP_THREADS` setting.
//!
//! The pool reads `BENCHTEMP_THREADS` once per process, so each setting runs
//! in a child process: the driver test re-invokes this test binary with
//! `BENCHTEMP_DETERMINISM_CHILD=1`, the worker test trains a small model
//! through the full link-prediction pipeline (big enough to cross the
//! parallel matmul threshold) and prints the exact bit patterns of every
//! metric, and the driver compares the lines across thread counts.

mod common;

use benchtemp_core::dataloader::LinkPredSplit;
use benchtemp_core::pipeline::{train_link_prediction, TrainConfig};
use benchtemp_graph::generators::GeneratorConfig;
use common::{MlpEdgeModel, NODE_DIM};

/// Child-process worker: runs the pipeline and prints every metric's exact
/// bit pattern. Skipped unless spawned by the driver below.
#[test]
fn determinism_child_worker() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_err() {
        return;
    }
    let mut cfg = GeneratorConfig::small("det", 11);
    cfg.num_edges = 1200;
    cfg.node_dim = NODE_DIM;
    let graph = cfg.generate();
    let split = LinkPredSplit::new(&graph, 7);
    let train_cfg = TrainConfig {
        max_epochs: 3,
        ..TrainConfig::default()
    };
    let mut model = MlpEdgeModel::new(3);
    let run = train_link_prediction(&mut model, &graph, &split, &train_cfg);

    let mut bits = Vec::new();
    for m in [run.transductive, run.inductive, run.new_old, run.new_new] {
        bits.push(format!("{:016x}", m.auc.to_bits()));
        bits.push(format!("{:016x}", m.ap.to_bits()));
        bits.push(format!("{}", m.n_edges));
    }
    bits.push(format!("{:016x}", run.best_val_ap.to_bits()));
    for l in &run.epoch_losses {
        bits.push(format!("{:08x}", l.to_bits()));
    }
    println!("RESULT {}", bits.join(" "));
}

fn run_child(envs: &[(&str, &str)]) -> String {
    common::run_child("determinism_child_worker", envs)
}

/// The contract itself: one thread vs four threads, bit-identical metrics.
#[test]
fn metrics_bit_identical_across_thread_counts() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let single = run_child(&[("BENCHTEMP_THREADS", "1")]);
    let quad = run_child(&[("BENCHTEMP_THREADS", "4")]);
    assert_eq!(single, quad, "metrics must not depend on the thread count");
}

/// The sanitizer is observation-only: arming `BENCHTEMP_SANITIZE=1` must
/// not change a single metric bit (it only *checks* slot claims and tape
/// accounting; it never reorders or perturbs work).
#[test]
fn metrics_bit_identical_with_sanitizer_on() {
    if std::env::var("BENCHTEMP_DETERMINISM_CHILD").is_ok() {
        return; // don't recurse inside a child process
    }
    let plain = run_child(&[("BENCHTEMP_THREADS", "4")]);
    let sanitized = run_child(&[("BENCHTEMP_THREADS", "4"), ("BENCHTEMP_SANITIZE", "1")]);
    assert_eq!(plain, sanitized, "sanitize mode must not reach results");
}
