//! The EarlyStopMonitor module (§3.2.1): patience 3, tolerance 10⁻³,
//! higher-is-better validation metric, best-round tracking for parameter
//! restoration.

/// Early-stopping state machine over a validation metric.
#[derive(Clone, Debug)]
pub struct EarlyStopMonitor {
    pub patience: usize,
    pub tolerance: f64,
    best: f64,
    best_epoch: usize,
    epochs_seen: usize,
    rounds_without_improvement: usize,
}

impl EarlyStopMonitor {
    /// The paper's configuration: patience 3, tolerance 10⁻³ (§3.2.1, §4.1).
    pub fn paper_default() -> Self {
        EarlyStopMonitor::new(3, 1e-3)
    }

    pub fn new(patience: usize, tolerance: f64) -> Self {
        EarlyStopMonitor {
            patience,
            tolerance,
            best: f64::NEG_INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
            rounds_without_improvement: 0,
        }
    }

    /// Record a validation metric for the next epoch. Returns `true` if the
    /// metric improved on the best by more than the tolerance (callers
    /// snapshot parameters on `true`).
    ///
    /// A NaN metric is an explicit *non-improvement* (it burns one patience
    /// round like any bad epoch) rather than relying on NaN's
    /// compare-false-with-everything behavior: before this was made
    /// explicit, an all-NaN run silently exhausted patience while
    /// `best_epoch()`/`best_metric()` still reported epoch 0 / `-inf` as if
    /// a snapshot existed. Callers should consult [`improved_ever`] before
    /// trusting either value.
    pub fn record(&mut self, metric: f64) -> bool {
        let epoch = self.epochs_seen;
        self.epochs_seen += 1;
        if !metric.is_nan() && metric > self.best + self.tolerance {
            self.best = metric;
            self.best_epoch = epoch;
            self.rounds_without_improvement = 0;
            true
        } else {
            self.rounds_without_improvement += 1;
            false
        }
    }

    /// Whether training should stop now.
    pub fn should_stop(&self) -> bool {
        self.rounds_without_improvement >= self.patience
    }

    pub fn best_metric(&self) -> f64 {
        self.best
    }

    /// Epoch index (0-based) that achieved the best metric.
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }

    /// Whether any recorded epoch ever improved on the initial `-inf` best.
    /// When `false`, `best_metric()` is still `-inf` and `best_epoch()` is a
    /// meaningless 0 — no parameter snapshot was ever taken.
    pub fn improved_ever(&self) -> bool {
        self.best > f64::NEG_INFINITY
    }

    pub fn epochs_seen(&self) -> usize {
        self.epochs_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_after_patience_rounds() {
        let mut m = EarlyStopMonitor::paper_default();
        assert!(m.record(0.8));
        assert!(!m.should_stop());
        assert!(!m.record(0.8)); // no improvement 1
        assert!(!m.record(0.79)); // 2
        assert!(!m.should_stop());
        assert!(!m.record(0.80)); // 3 (within tolerance → not improvement)
        assert!(m.should_stop());
    }

    #[test]
    fn improvement_resets_patience() {
        let mut m = EarlyStopMonitor::new(2, 1e-3);
        m.record(0.5);
        m.record(0.5); // 1
        assert!(m.record(0.6)); // reset
        assert!(!m.should_stop());
        m.record(0.6);
        m.record(0.6);
        assert!(m.should_stop());
    }

    #[test]
    fn tolerance_gates_improvement() {
        let mut m = EarlyStopMonitor::new(3, 1e-2);
        assert!(m.record(0.500));
        // +0.005 is inside the tolerance → counts as no improvement.
        assert!(!m.record(0.505));
        assert_eq!(m.best_metric(), 0.500);
        // +0.02 clears it.
        assert!(m.record(0.52));
        assert_eq!(m.best_epoch(), 2);
    }

    /// Regression: a NaN validation metric must be an explicit
    /// non-improvement, and the monitor must admit that nothing was ever
    /// recorded. Pre-fix, `improved_ever()` did not exist and callers read
    /// `best_epoch() == 0` / `best_metric() == -inf` as a real epoch-0
    /// snapshot.
    #[test]
    fn nan_metric_never_improves_and_is_reported() {
        let mut m = EarlyStopMonitor::new(2, 1e-3);
        assert!(!m.record(f64::NAN));
        assert!(!m.improved_ever());
        assert!(!m.record(f64::NAN));
        assert!(m.should_stop());
        assert!(!m.improved_ever());
        assert_eq!(m.best_metric(), f64::NEG_INFINITY);
        assert_eq!(m.epochs_seen(), 2);
    }

    #[test]
    fn nan_after_real_improvement_keeps_best() {
        let mut m = EarlyStopMonitor::new(3, 1e-3);
        assert!(m.record(0.7));
        assert!(m.improved_ever());
        assert!(!m.record(f64::NAN));
        assert_eq!(m.best_metric(), 0.7);
        assert_eq!(m.best_epoch(), 0);
        // Recovery after a NaN epoch still registers.
        assert!(m.record(0.8));
        assert_eq!(m.best_epoch(), 2);
    }

    #[test]
    fn tracks_epochs_seen() {
        let mut m = EarlyStopMonitor::paper_default();
        for v in [0.1, 0.2, 0.3] {
            m.record(v);
        }
        assert_eq!(m.epochs_seen(), 3);
        assert_eq!(m.best_epoch(), 2);
    }
}
