//! Efficiency metrics (Table 4 / Table 12 / Fig. 7).
//!
//! The paper reports runtime/epoch, epochs-to-convergence, peak RAM, GPU
//! memory, GPU utilization, and inference time. On a CPU-only substrate we
//! measure the direct analogues (DESIGN.md §1): wall-clock runtime, peak RSS
//! via `/proc/self/status`, the model's exact state footprint in bytes
//! (parameters + memory modules + caches — what GPU memory held), and a
//! compute-utilization proxy (time in dense tensor work vs. time in
//! sampling/data movement — what drives GPU utilization).
//!
//! Stage times come from `benchtemp-obs` spans (DESIGN.md §9). The pipeline
//! installs a [`benchtemp_obs::Recorder`] per job and opens one span per
//! protocol stage (`train_epoch`, `val_scoring`, `test_scoring`, ...); the
//! [`StageBreakdown`] below is a pure projection of the resulting
//! [`benchtemp_obs::Profile`]. Because sibling spans never overlap, a stage
//! cannot absorb another stage's time — the misattribution the old
//! `EpochTimer` suffered from (its reset point let each recorded "epoch"
//! swallow the previous epoch's val+test scoring) is impossible by
//! construction.

use benchtemp_obs::Profile;
use benchtemp_util::{json, Json, ToJson};

/// Span names the pipeline uses for its protocol stages. Shared constants so
/// the trainers, the breakdown projection, and the trace validator agree.
pub mod stage {
    /// Neighbor-index and sampler construction before the first epoch.
    pub const SETUP: &str = "setup";
    /// One full pass over the training stream (learning only — no scoring).
    pub const TRAIN_EPOCH: &str = "train_epoch";
    /// Scoring the validation stream.
    pub const VAL_SCORING: &str = "val_scoring";
    /// Scoring the test stream.
    pub const TEST_SCORING: &str = "test_scoring";
    /// AUC/AP sort+scan over the collected scores at job end.
    pub const FINAL_METRICS: &str = "final_metrics";
    /// One pass collecting frozen embeddings (node classification).
    pub const EMBED_COLLECTION: &str = "embed_collection";
    /// Dense tensor work inside a model batch (forward/backward/step).
    pub const DENSE: &str = "dense";
    /// Neighbor/walk sampling inside a model batch (nested under `dense`).
    pub const SAMPLING: &str = "sampling";
}

/// Per-stage wall-clock decomposition of one job, projected from the job's
/// span [`Profile`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StageBreakdown {
    /// Seconds building neighbor indices and samplers.
    pub setup_secs: f64,
    /// Seconds in training epochs (all epochs, learning only).
    pub train_secs: f64,
    /// Seconds scoring validation streams (all epochs).
    pub val_secs: f64,
    /// Seconds scoring test streams (all epochs).
    pub test_secs: f64,
    /// Seconds computing final AUC/AP metrics.
    pub final_metrics_secs: f64,
    /// Seconds in dense tensor work (exclusive: sampling nested inside a
    /// dense section is *not* counted here).
    pub dense_secs: f64,
    /// Seconds in neighbor/walk sampling.
    pub sampling_secs: f64,
    /// Whole-job wall-clock seconds.
    pub job_secs: f64,
}

impl StageBreakdown {
    /// Project the pipeline's stage spans out of a job profile.
    ///
    /// `dense_secs` uses the span's *self* time: models open a `dense` span
    /// around a whole batch and a nested `sampling` span around its
    /// neighbor/walk sampling, so the exclusive time of `dense` is exactly
    /// "batch minus sampling" — attributed at the type level rather than by
    /// subtraction at the call site.
    pub fn from_profile(profile: &Profile, job_secs: f64) -> Self {
        StageBreakdown {
            setup_secs: profile.total_secs(stage::SETUP),
            train_secs: profile.total_secs(stage::TRAIN_EPOCH)
                + profile.total_secs(stage::EMBED_COLLECTION),
            val_secs: profile.total_secs(stage::VAL_SCORING),
            test_secs: profile.total_secs(stage::TEST_SCORING),
            final_metrics_secs: profile.total_secs(stage::FINAL_METRICS),
            dense_secs: profile.self_secs(stage::DENSE),
            sampling_secs: profile.total_secs(stage::SAMPLING),
            job_secs,
        }
    }

    /// Sum of the top-level protocol stages (dense/sampling are nested
    /// inside them and excluded). Should approach [`Self::job_secs`].
    pub fn stage_sum_secs(&self) -> f64 {
        self.setup_secs + self.train_secs + self.val_secs + self.test_secs + self.final_metrics_secs
    }

    /// Dense-compute fraction of measured model time — the paper's "GPU
    /// utilization" analogue. `None` if nothing was measured.
    pub fn utilization(&self) -> Option<f64> {
        let total = self.dense_secs + self.sampling_secs;
        if total <= 0.0 {
            None
        } else {
            Some(self.dense_secs / total)
        }
    }
}

impl ToJson for StageBreakdown {
    fn to_json(&self) -> Json {
        json!({
            "setup_secs": self.setup_secs,
            "train_secs": self.train_secs,
            "val_secs": self.val_secs,
            "test_secs": self.test_secs,
            "final_metrics_secs": self.final_metrics_secs,
            "dense_secs": self.dense_secs,
            "sampling_secs": self.sampling_secs,
            "job_secs": self.job_secs,
        })
    }
}

/// Serialize a span [`Profile`] (spans + counter deltas + gauges) for the
/// raw-runs JSON. Lives here because `benchtemp-obs` is dependency-free and
/// does not know about `benchtemp-util::json`.
pub fn profile_to_json(profile: &Profile) -> Json {
    let spans = Json::Obj(
        profile
            .spans
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    json!({
                        "count": s.count,
                        "total_secs": s.total_secs,
                        "self_secs": s.self_secs,
                    }),
                )
            })
            .collect(),
    );
    let counters = Json::Obj(
        profile
            .counters
            .iter()
            .map(|(name, v)| (name.to_string(), v.to_json()))
            .collect(),
    );
    let gauges = Json::Obj(
        profile
            .gauges
            .iter()
            .map(|(name, v)| (name.to_string(), v.to_json()))
            .collect(),
    );
    json!({ "spans": spans, "counters": counters, "gauges": gauges })
}

/// One row of the Table 4 efficiency block for a (model, dataset) job.
#[derive(Clone, Debug, Default)]
pub struct EfficiencyReport {
    /// Mean seconds per training epoch (Table 4 "Runtime"). Training only:
    /// validation/test scoring is *excluded* (it lives in
    /// `stages.val_secs` / `stages.test_secs`).
    pub runtime_per_epoch_secs: f64,
    /// Epochs until early stopping fired (Table 4 "Epoch").
    pub epochs_to_converge: usize,
    /// Peak resident set size in bytes (Table 4 "RAM"); `None` when the
    /// platform exposes no `VmHWM` line (anything but Linux), so absence
    /// of the measurement is distinguishable from a 0-byte reading.
    pub peak_rss_bytes: Option<u64>,
    /// Peak bytes held by the autograd tape's recycled matrix buffers
    /// (`tape.pool_resident_bytes` gauge, sampled at each epoch-boundary
    /// trim) — the pooled-allocator slice of the RAM number above.
    pub tape_pool_resident_bytes: u64,
    /// Exact model state footprint: parameters + optimizer state + memory
    /// modules + caches (Table 4 "GPU Memory" analogue).
    pub model_state_bytes: u64,
    /// Dense-compute fraction of model time (Table 11 "GPU Utilization"
    /// analogue); 0 when unmeasured.
    pub compute_utilization: f64,
    /// Seconds to score 100,000 edges at inference (Fig. 7).
    pub inference_secs_per_100k: f64,
    /// Whether the run hit the configured timeout before converging
    /// (the paper's "x"/"—" markers).
    pub timed_out: bool,
    /// Worker threads the runtime used for this job (`BENCHTEMP_THREADS`).
    pub thread_count: usize,
    /// Per-stage wall-clock decomposition of the job.
    pub stages: StageBreakdown,
    /// Full span/counter profile the breakdown was projected from.
    pub profile: Profile,
}

impl ToJson for EfficiencyReport {
    fn to_json(&self) -> Json {
        json!({
            "runtime_per_epoch_secs": self.runtime_per_epoch_secs,
            "epochs_to_converge": self.epochs_to_converge,
            "peak_rss_bytes": self.peak_rss_bytes.as_ref(),
            "tape_pool_resident_bytes": self.tape_pool_resident_bytes,
            "model_state_bytes": self.model_state_bytes,
            "compute_utilization": self.compute_utilization,
            "inference_secs_per_100k": self.inference_secs_per_100k,
            "timed_out": self.timed_out,
            "thread_count": self.thread_count,
            "stages": &self.stages,
            "profile": profile_to_json(&self.profile),
        })
    }
}

/// Peak RSS of this process in bytes (`VmHWM` from `/proc/self/status`),
/// or `None` where that interface does not exist (non-Linux platforms) —
/// callers degrade gracefully instead of reporting a bogus 0. Successful
/// reads also feed the `peak_rss_bytes` gauge for traces.
pub fn peak_rss_bytes() -> Option<u64> {
    let bytes = read_vm_hwm()?;
    benchtemp_obs::counters::PEAK_RSS_SAMPLES.incr();
    benchtemp_obs::counters::PEAK_RSS_BYTES.sample(bytes);
    Some(bytes)
}

fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Human-readable byte formatting for reports.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_obs::{timed, Recorder};
    use std::time::Duration;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // On Linux the reading must exist and be sane; elsewhere the
        // graceful degradation is exactly `None`.
        match peak_rss_bytes() {
            Some(rss) => assert!(rss > 1024 * 1024, "peak RSS {rss} suspiciously small"),
            None => {
                if cfg!(target_os = "linux") {
                    panic!("Linux must expose VmHWM");
                }
            }
        }
    }

    #[test]
    fn breakdown_projects_stage_spans() {
        let rec = Recorder::new();
        let _g = rec.install();
        timed(stage::SETUP, || {
            std::thread::sleep(Duration::from_millis(3))
        });
        for _ in 0..2 {
            timed(stage::TRAIN_EPOCH, || {
                std::thread::sleep(Duration::from_millis(6))
            });
            timed(stage::VAL_SCORING, || {
                std::thread::sleep(Duration::from_millis(2))
            });
        }
        let b = StageBreakdown::from_profile(&rec.profile(), 0.025);
        assert!(b.setup_secs >= 0.002, "setup {}", b.setup_secs);
        assert!(b.train_secs >= 0.010, "train {}", b.train_secs);
        assert!(b.val_secs >= 0.003, "val {}", b.val_secs);
        assert_eq!(b.test_secs, 0.0);
        assert!(b.stage_sum_secs() >= b.train_secs + b.val_secs);
    }

    #[test]
    fn dense_self_time_excludes_nested_sampling() {
        let rec = Recorder::new();
        let _g = rec.install();
        timed(stage::DENSE, || {
            std::thread::sleep(Duration::from_millis(8));
            timed(stage::SAMPLING, || {
                std::thread::sleep(Duration::from_millis(8))
            });
        });
        let b = StageBreakdown::from_profile(&rec.profile(), 0.016);
        assert!(b.sampling_secs >= 0.007, "sampling {}", b.sampling_secs);
        // Exclusive: dense must not double-count the nested sampling time.
        let dense_total = rec.profile().total_secs(stage::DENSE);
        assert!(
            b.dense_secs <= dense_total - b.sampling_secs + 0.003,
            "dense self {} vs total {} sampling {}",
            b.dense_secs,
            dense_total,
            b.sampling_secs
        );
        let u = b.utilization().unwrap();
        assert!(u > 0.2 && u < 0.8, "utilization {u}");
    }

    #[test]
    fn utilization_is_none_when_unmeasured() {
        assert!(StageBreakdown::default().utilization().is_none());
    }

    #[test]
    fn report_serializes_stages_and_profile() {
        let rec = Recorder::new();
        let _g = rec.install();
        timed(stage::TRAIN_EPOCH, || {});
        let report = EfficiencyReport {
            runtime_per_epoch_secs: 1.5,
            profile: rec.profile(),
            ..Default::default()
        };
        let s = report.to_json().to_string();
        assert!(s.contains("\"stages\""), "{s}");
        assert!(s.contains("\"train_epoch\""), "{s}");
        assert!(s.contains("\"counters\""), "{s}");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
