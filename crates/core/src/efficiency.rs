//! Efficiency metrics (Table 4 / Table 12 / Fig. 7).
//!
//! The paper reports runtime/epoch, epochs-to-convergence, peak RAM, GPU
//! memory, GPU utilization, and inference time. On a CPU-only substrate we
//! measure the direct analogues (DESIGN.md §1): wall-clock runtime, peak RSS
//! via `/proc/self/status`, the model's exact state footprint in bytes
//! (parameters + memory modules + caches — what GPU memory held), and a
//! compute-utilization proxy (time in dense tensor work vs. time in
//! sampling/data movement — what drives GPU utilization).

use std::time::{Duration, Instant};

use benchtemp_util::{json, Json, ToJson};

/// Split of a model's working time into dense compute vs. sampling, ticked
/// by the models themselves around their walk/neighbor sampling and their
/// forward/backward sections.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComputeClock {
    pub dense: Duration,
    pub sampling: Duration,
}

impl ComputeClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a dense-compute section.
    pub fn dense<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.dense += start.elapsed();
        out
    }

    /// Time a sampling/data-movement section.
    pub fn sampling<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.sampling += start.elapsed();
        out
    }

    /// Fraction of measured time spent in dense compute — the paper's "GPU
    /// utilization" analogue. `None` if nothing was measured.
    pub fn utilization(&self) -> Option<f64> {
        let total = self.dense + self.sampling;
        if total.is_zero() {
            None
        } else {
            Some(self.dense.as_secs_f64() / total.as_secs_f64())
        }
    }

    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// One row of the Table 4 efficiency block for a (model, dataset) job.
#[derive(Clone, Copy, Debug, Default)]
pub struct EfficiencyReport {
    /// Mean seconds per training epoch (Table 4 "Runtime").
    pub runtime_per_epoch_secs: f64,
    /// Epochs until early stopping fired (Table 4 "Epoch").
    pub epochs_to_converge: usize,
    /// Peak resident set size in bytes (Table 4 "RAM").
    pub peak_rss_bytes: u64,
    /// Exact model state footprint: parameters + optimizer state + memory
    /// modules + caches (Table 4 "GPU Memory" analogue).
    pub model_state_bytes: u64,
    /// Dense-compute fraction of model time (Table 11 "GPU Utilization"
    /// analogue); 0 when unmeasured.
    pub compute_utilization: f64,
    /// Seconds to score 100,000 edges at inference (Fig. 7).
    pub inference_secs_per_100k: f64,
    /// Whether the run hit the configured timeout before converging
    /// (the paper's "x"/"—" markers).
    pub timed_out: bool,
    /// Worker threads the runtime used for this job (`BENCHTEMP_THREADS`).
    pub thread_count: usize,
    /// Wall seconds in dense tensor work across the job.
    pub dense_secs: f64,
    /// Wall seconds in neighbor/walk sampling across the job.
    pub sampling_secs: f64,
    /// Wall seconds in the evaluation phases (validation + test scoring).
    pub eval_secs: f64,
}

impl ToJson for EfficiencyReport {
    fn to_json(&self) -> Json {
        json!({
            "runtime_per_epoch_secs": self.runtime_per_epoch_secs,
            "epochs_to_converge": self.epochs_to_converge,
            "peak_rss_bytes": self.peak_rss_bytes,
            "model_state_bytes": self.model_state_bytes,
            "compute_utilization": self.compute_utilization,
            "inference_secs_per_100k": self.inference_secs_per_100k,
            "timed_out": self.timed_out,
            "thread_count": self.thread_count,
            "dense_secs": self.dense_secs,
            "sampling_secs": self.sampling_secs,
            "eval_secs": self.eval_secs,
        })
    }
}

/// Peak RSS of this process in bytes (`VmHWM` from `/proc/self/status`).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Simple wall-clock timer for epoch accounting.
pub struct EpochTimer {
    start: Instant,
    epochs: Vec<Duration>,
}

impl EpochTimer {
    pub fn new() -> Self {
        EpochTimer {
            start: Instant::now(),
            epochs: Vec::new(),
        }
    }

    /// Mark the end of an epoch; returns its duration.
    pub fn lap(&mut self) -> Duration {
        let d = self.start.elapsed();
        self.epochs.push(d);
        self.start = Instant::now();
        d
    }

    pub fn mean_epoch_secs(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|d| d.as_secs_f64()).sum::<f64>() / self.epochs.len() as f64
    }

    pub fn total(&self) -> Duration {
        self.epochs.iter().sum()
    }
}

impl Default for EpochTimer {
    fn default() -> Self {
        Self::new()
    }
}

/// Human-readable byte formatting for reports.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1}{}", UNITS[unit])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates_and_reports_utilization() {
        let mut c = ComputeClock::new();
        c.dense(|| std::thread::sleep(Duration::from_millis(8)));
        c.sampling(|| std::thread::sleep(Duration::from_millis(2)));
        let u = c.utilization().unwrap();
        assert!(u > 0.5 && u < 1.0, "utilization {u}");
        c.reset();
        assert!(c.utilization().is_none());
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        assert!(rss > 1024 * 1024, "peak RSS {rss} suspiciously small");
    }

    #[test]
    fn epoch_timer_means() {
        let mut t = EpochTimer::new();
        std::thread::sleep(Duration::from_millis(5));
        t.lap();
        std::thread::sleep(Duration::from_millis(5));
        t.lap();
        assert!(t.mean_epoch_secs() >= 0.004);
        assert_eq!(t.total(), t.epochs.iter().sum());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512.0B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MB");
    }
}
