//! # benchtemp-core
//!
//! The BenchTemp pipeline — the paper's primary contribution (§3.2): the
//! seven pipeline modules (Dataset via `benchtemp-graph`, DataLoader,
//! EdgeSampler, Model contract, EarlyStopMonitor, Evaluator, Leaderboard)
//! plus the unified link-prediction / node-classification trainers and the
//! efficiency instrumentation behind Tables 4, 11, 12 and Fig. 7.

pub mod dataloader;
pub mod early_stop;
pub mod efficiency;
pub mod evaluator;
pub mod filtered_negatives;
pub mod leaderboard;
pub mod pipeline;
pub mod ranking;
pub mod sampler;

pub use dataloader::{LinkPredSplit, NodeClassSplit, Setting, SplitStats};
pub use early_stop::EarlyStopMonitor;
pub use efficiency::{EfficiencyReport, StageBreakdown};
pub use evaluator::{average_precision, multiclass_metrics, roc_auc, MultiClassMetrics};
pub use filtered_negatives::FilteredNegativeSet;
pub use leaderboard::{Entry, Leaderboard};
pub use pipeline::{
    train_link_prediction, train_node_classification, Anatomy, LinkPredictionRun,
    NodeClassificationRun, SettingMetrics, StreamContext, TgnnModel, TrainConfig,
};
pub use ranking::{ranking_metrics, ranking_metrics_flat, RankingMetrics};
pub use sampler::{EdgeSampler, NegativeStrategy};
