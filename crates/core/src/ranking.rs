//! Ranking metrics beyond AUC/AP: MRR and Hits@K against multiple
//! negatives per positive edge.
//!
//! The paper's Evaluator reports AUC and AP; the community benchmarks it
//! discusses in Related Work (TGB-style evaluation, and the EdgeBank paper,
//! reference \[8\]) rank each positive edge against a *set* of negatives. These
//! metrics make saturation visible (Appendix J's motivation) and are used
//! by the filtered-negative ranking harness (DESIGN.md §14).
//!
//! ## Tie policy
//!
//! Ranks are **pessimistic**: `rank = 1 + #better + #tied`, i.e. every
//! negative that exactly ties the positive counts *against* it. The older
//! midpoint convention (`1 + #better + #tied/2`) produced fractional ranks,
//! which made Hits@1 unreachable whenever a single negative tied the
//! positive (rank 1.5) and disagreed with TGB's integer-rank convention.
//! Pessimistic ranks are integers, conservative (a model that scores
//! everything identically — EdgeBank on all-seen candidates — ranks last,
//! not in the middle), and the same policy applies to MRR and every Hits@K.

/// Ranking metrics for one evaluation pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankingMetrics {
    /// Mean reciprocal rank of the positive among its negatives.
    pub mrr: f64,
    pub hits_at_1: f64,
    pub hits_at_3: f64,
    pub hits_at_10: f64,
    pub num_queries: usize,
}

/// Pessimistic rank of `p` against its negatives: `1 + #better + #tied`.
/// NaN scores never compare greater or equal, so a NaN negative can only
/// *improve* the positive's rank — callers are expected to keep scores
/// finite (the pipeline debug-asserts this upstream).
#[inline]
fn pessimistic_rank(p: f32, negs: &[f32]) -> f64 {
    let mut better = 0usize;
    let mut tied = 0usize;
    for &n in negs {
        if n > p {
            better += 1;
        } else if n == p {
            tied += 1;
        }
    }
    1.0 + better as f64 + tied as f64
}

struct Accum {
    mrr: f64,
    h1: usize,
    h3: usize,
    h10: usize,
    n: usize,
}

impl Accum {
    fn new() -> Self {
        Accum {
            mrr: 0.0,
            h1: 0,
            h3: 0,
            h10: 0,
            n: 0,
        }
    }

    fn push(&mut self, rank: f64) {
        self.mrr += 1.0 / rank;
        if rank <= 1.0 {
            self.h1 += 1;
        }
        if rank <= 3.0 {
            self.h3 += 1;
        }
        if rank <= 10.0 {
            self.h10 += 1;
        }
        self.n += 1;
    }

    fn finish(self) -> RankingMetrics {
        if self.n == 0 {
            return RankingMetrics::default();
        }
        let n = self.n as f64;
        RankingMetrics {
            mrr: self.mrr / n,
            hits_at_1: self.h1 as f64 / n,
            hits_at_3: self.h3 as f64 / n,
            hits_at_10: self.h10 as f64 / n,
            num_queries: self.n,
        }
    }
}

/// Compute MRR / Hits@K. `pos[i]` is the positive edge's score;
/// `negs[i]` are the scores of that query's negative candidates.
/// Ties are pessimistic — see the module docs.
pub fn ranking_metrics(pos: &[f32], negs: &[Vec<f32>]) -> RankingMetrics {
    assert_eq!(pos.len(), negs.len(), "one negative set per positive");
    let mut acc = Accum::new();
    for (&p, neg) in pos.iter().zip(negs) {
        acc.push(pessimistic_rank(p, neg));
    }
    acc.finish()
}

/// Flat-layout variant used by the scoring pipeline: `cands` holds `k`
/// candidate scores per query in query-major layout (`cands[i * k + j]` is
/// the j-th candidate of query i). `mask[i]` selects which queries
/// participate (pass `None` for all — the four evaluation settings are
/// membership masks over one scored stream). Same pessimistic tie policy
/// as [`ranking_metrics`].
pub fn ranking_metrics_flat(
    pos: &[f32],
    cands: &[f32],
    k: usize,
    mask: Option<&[bool]>,
) -> RankingMetrics {
    let n = pos.len();
    assert_eq!(cands.len(), n * k, "expected k candidate scores per query");
    if let Some(m) = mask {
        assert_eq!(m.len(), n, "mask length must match query count");
    }
    let mut acc = Accum::new();
    for (i, &p) in pos.iter().enumerate() {
        if let Some(m) = mask {
            if !m[i] {
                continue;
            }
        }
        acc.push(pessimistic_rank(p, &cands[i * k..(i + 1) * k]));
    }
    acc.finish()
}

impl benchtemp_util::ToJson for RankingMetrics {
    fn to_json(&self) -> benchtemp_util::Json {
        benchtemp_util::json!({
            "mrr": self.mrr,
            "hits_at_1": self.hits_at_1,
            "hits_at_3": self.hits_at_3,
            "hits_at_10": self.hits_at_10,
            "num_queries": self.num_queries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let pos = [0.9f32, 0.8];
        let negs = vec![vec![0.1, 0.2, 0.3], vec![0.0, 0.1]];
        let m = ranking_metrics(&pos, &negs);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits_at_1, 1.0);
        assert_eq!(m.num_queries, 2);
    }

    #[test]
    fn worst_ranking() {
        let pos = [0.0f32];
        let negs = vec![vec![1.0; 9]];
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 0.1).abs() < 1e-12); // rank 10
        assert_eq!(m.hits_at_1, 0.0);
        assert_eq!(m.hits_at_3, 0.0);
        assert_eq!(m.hits_at_10, 1.0);
    }

    #[test]
    fn hand_computed_mixed_ranks() {
        // q0: one better, none tied → rank 2 → rr 0.5, hits@3 yes.
        // q1: none better → rank 1 → rr 1.0.
        let pos = [0.5f32, 0.9];
        let negs = vec![vec![0.7, 0.1], vec![0.2, 0.3]];
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 0.75).abs() < 1e-12);
        assert_eq!(m.hits_at_1, 0.5);
        assert_eq!(m.hits_at_3, 1.0);
    }

    #[test]
    fn ties_are_pessimistic() {
        // Two exact ties → rank = 1 + 0 + 2 = 3 (the midpoint convention
        // would say 2; the pre-fix code returned mrr 0.5 here).
        let pos = [0.5f32];
        let negs = vec![vec![0.5, 0.5]];
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.hits_at_1, 0.0);
        assert_eq!(m.hits_at_3, 1.0);
    }

    /// The tie grid that pins the policy: every combination of
    /// (#better, #tied) over a small grid must produce the integer rank
    /// `1 + better + tied`, identically for MRR and Hits@K thresholds.
    #[test]
    fn tie_grid_pins_policy() {
        for better in 0..4usize {
            for tied in 0..4usize {
                let p = 0.5f32;
                let mut negs = vec![0.9f32; better];
                negs.extend(std::iter::repeat_n(0.5f32, tied));
                negs.extend(std::iter::repeat_n(0.1f32, 5)); // worse, irrelevant
                let m = ranking_metrics(&[p], &[negs]);
                let rank = (1 + better + tied) as f64;
                assert!(
                    (m.mrr - 1.0 / rank).abs() < 1e-12,
                    "better={better} tied={tied}: mrr {} != 1/{rank}",
                    m.mrr
                );
                assert_eq!(m.hits_at_1, if rank <= 1.0 { 1.0 } else { 0.0 });
                assert_eq!(m.hits_at_3, if rank <= 3.0 { 1.0 } else { 0.0 });
                assert_eq!(m.hits_at_10, if rank <= 10.0 { 1.0 } else { 0.0 });
            }
        }
    }

    /// A single exact tie must leave Hits@1 reachable-but-missed (rank 2),
    /// not a fractional 1.5 — the bug the pessimistic policy fixes.
    #[test]
    fn single_tie_yields_integer_rank_two() {
        let m = ranking_metrics(&[0.5f32], &[vec![0.5f32]]);
        assert!((m.mrr - 0.5).abs() < 1e-12);
        assert_eq!(m.hits_at_1, 0.0);
        assert_eq!(m.hits_at_3, 1.0);
    }

    #[test]
    fn flat_layout_matches_nested() {
        let pos = [0.5f32, 0.9, 0.2];
        let negs = vec![vec![0.7, 0.1], vec![0.2, 0.3], vec![0.2, 0.2]];
        let nested = ranking_metrics(&pos, &negs);
        // Query-major layout: cands[i * k + j].
        let flat: Vec<f32> = negs.iter().flatten().copied().collect();
        let f = ranking_metrics_flat(&pos, &flat, 2, None);
        assert_eq!(nested.mrr, f.mrr);
        assert_eq!(nested.hits_at_1, f.hits_at_1);
        assert_eq!(nested.hits_at_3, f.hits_at_3);
        assert_eq!(nested.num_queries, f.num_queries);
    }

    #[test]
    fn flat_mask_selects_queries() {
        let pos = [0.9f32, 0.1];
        // Query 0 ranks 1; query 1 ranks 3 (two better negatives).
        let flat = vec![0.2f32, 0.3, 0.5, 0.5];
        let all = ranking_metrics_flat(&pos, &flat, 2, None);
        assert_eq!(all.num_queries, 2);
        let only0 = ranking_metrics_flat(&pos, &flat, 2, Some(&[true, false]));
        assert_eq!(only0.num_queries, 1);
        assert_eq!(only0.mrr, 1.0);
        let only1 = ranking_metrics_flat(&pos, &flat, 2, Some(&[false, true]));
        assert_eq!(only1.num_queries, 1);
        assert!((only1.mrr - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_default() {
        let m = ranking_metrics(&[], &[]);
        assert_eq!(m.num_queries, 0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    #[should_panic(expected = "one negative set per positive")]
    fn mismatched_lengths_panic() {
        let _ = ranking_metrics(&[0.5], &[]);
    }
}
