//! Ranking metrics beyond AUC/AP: MRR and Hits@K against multiple
//! negatives per positive edge.
//!
//! The paper's Evaluator reports AUC and AP; the community benchmarks it
//! discusses in Related Work (TGB-style evaluation, and the EdgeBank paper,
//! reference \[8\]) rank each positive edge against a *set* of negatives. These
//! metrics make saturation visible (Appendix J's motivation) and are used
//! by the ablation harnesses.

/// Ranking metrics for one evaluation pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankingMetrics {
    /// Mean reciprocal rank of the positive among its negatives.
    pub mrr: f64,
    pub hits_at_1: f64,
    pub hits_at_3: f64,
    pub hits_at_10: f64,
    pub num_queries: usize,
}

/// Compute MRR / Hits@K. `pos[i]` is the positive edge's score;
/// `negs[i]` are the scores of that query's negative candidates.
/// Rank uses "optimistic-pessimistic" midpoint tie handling: rank =
/// 1 + #better + #tied/2.
pub fn ranking_metrics(pos: &[f32], negs: &[Vec<f32>]) -> RankingMetrics {
    assert_eq!(pos.len(), negs.len(), "one negative set per positive");
    if pos.is_empty() {
        return RankingMetrics::default();
    }
    let mut mrr = 0.0f64;
    let mut h1 = 0usize;
    let mut h3 = 0usize;
    let mut h10 = 0usize;
    for (&p, neg) in pos.iter().zip(negs) {
        let better = neg.iter().filter(|&&n| n > p).count();
        let tied = neg.iter().filter(|&&n| n == p).count();
        let rank = 1.0 + better as f64 + tied as f64 / 2.0;
        mrr += 1.0 / rank;
        if rank <= 1.0 {
            h1 += 1;
        }
        if rank <= 3.0 {
            h3 += 1;
        }
        if rank <= 10.0 {
            h10 += 1;
        }
    }
    let n = pos.len() as f64;
    RankingMetrics {
        mrr: mrr / n,
        hits_at_1: h1 as f64 / n,
        hits_at_3: h3 as f64 / n,
        hits_at_10: h10 as f64 / n,
        num_queries: pos.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking() {
        let pos = [0.9f32, 0.8];
        let negs = vec![vec![0.1, 0.2, 0.3], vec![0.0, 0.1]];
        let m = ranking_metrics(&pos, &negs);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.hits_at_1, 1.0);
        assert_eq!(m.num_queries, 2);
    }

    #[test]
    fn worst_ranking() {
        let pos = [0.0f32];
        let negs = vec![vec![1.0; 9]];
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 0.1).abs() < 1e-12); // rank 10
        assert_eq!(m.hits_at_1, 0.0);
        assert_eq!(m.hits_at_3, 0.0);
        assert_eq!(m.hits_at_10, 1.0);
    }

    #[test]
    fn hand_computed_mixed_ranks() {
        // q0: one better, none tied → rank 2 → rr 0.5, hits@3 yes.
        // q1: none better → rank 1 → rr 1.0.
        let pos = [0.5f32, 0.9];
        let negs = vec![vec![0.7, 0.1], vec![0.2, 0.3]];
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 0.75).abs() < 1e-12);
        assert_eq!(m.hits_at_1, 0.5);
        assert_eq!(m.hits_at_3, 1.0);
    }

    #[test]
    fn ties_use_midrank() {
        let pos = [0.5f32];
        let negs = vec![vec![0.5, 0.5]]; // rank = 1 + 0 + 1 = 2
        let m = ranking_metrics(&pos, &negs);
        assert!((m.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_default() {
        let m = ranking_metrics(&[], &[]);
        assert_eq!(m.num_queries, 0);
        assert_eq!(m.mrr, 0.0);
    }

    #[test]
    #[should_panic(expected = "one negative set per positive")]
    fn mismatched_lengths_panic() {
        let _ = ranking_metrics(&[0.5], &[]);
    }
}
