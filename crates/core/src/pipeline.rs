//! The unified BenchTemp pipeline (Fig. 4): Dataset → DataLoader →
//! EdgeSampler → Model → EarlyStopMonitor → Evaluator → Leaderboard.
//!
//! [`TgnnModel`] is the contract every model in the zoo implements; the
//! link-prediction and node-classification trainers below drive any
//! implementor through the paper's protocol (§4.1): BCE + Adam(1e-4),
//! chronological batches, patience-3 early stopping on validation AP,
//! fixed-seed evaluation negatives, timeout, and efficiency accounting.
//!
//! **Evaluation protocol.** Each epoch consumes the full stream in order —
//! train (learning), validation (scoring), test (scoring) — so stateful
//! models carry their memory across the boundary exactly as the reference
//! implementations do. Test metrics are taken from the epoch with the best
//! validation AP. The three inductive settings are *filters over the same
//! scored test stream* (membership masks), matching §3.2.1 where the
//! inductive test sets are generated from the transductive test set.

use std::time::{Duration, Instant};

use benchtemp_graph::neighbors::NeighborFinder;
use benchtemp_graph::paged::{
    default_store_dir, NeighborBackend, OwnedNeighborBackend, PagedNeighborFinder, StoreOptions,
};
use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_obs as obs;
use benchtemp_tensor::{pool, Matrix};
use benchtemp_util::{json, Json, ToJson};

use crate::dataloader::{LinkPredSplit, NodeClassSplit, Setting};
use crate::early_stop::EarlyStopMonitor;
use crate::efficiency::{peak_rss_bytes, stage, EfficiencyReport, StageBreakdown};
use crate::evaluator::{
    auc_ap_pos_neg, average_precision_pos_neg, multiclass_metrics, roc_auc, MultiClassMetrics,
};
use crate::filtered_negatives::FilteredNegativeSet;
use crate::ranking::{ranking_metrics_flat, RankingMetrics};
use crate::sampler::{EdgeSampler, NegativeStrategy};

/// Per-job seed salt for the test-stream filtered negative sets, distinct
/// from the val/test sampler salts so candidate draws never correlate with
/// the paired AUC/AP negatives.
const RANK_NEG_SEED_SALT: u64 = 0xf117_0003;

/// Minimum total score count (pos + neg across all four settings) before the
/// final metrics fan out over the worker pool; below this, pool dispatch
/// costs more than the sort+scan it parallelises.
const PAR_EVAL_MIN_SCORES: usize = 1 << 15;

/// Everything a model may read while processing a batch: the graph (features)
/// and a temporal adjacency view. During training the view covers training
/// events only; during evaluation it covers the full stream (queries are
/// always strictly-before-t, so no future leakage either way).
pub struct StreamContext<'a> {
    pub graph: &'a TemporalGraph,
    pub neighbors: NeighborBackend<'a>,
}

/// Table 1 anatomy row.
#[derive(Clone, Copy, Debug)]
pub struct Anatomy {
    pub memory: bool,
    pub attention: bool,
    pub rnn: bool,
    pub temp_walk: bool,
    pub scalability: bool,
    pub supervision: &'static str,
}

/// The contract every TGNN implements to run in the pipeline.
pub trait TgnnModel {
    fn name(&self) -> &'static str;

    /// Table 1 capability row.
    fn anatomy(&self) -> Anatomy;

    /// Reset all temporal state (memory, caches) to initial values.
    /// Parameters are untouched.
    fn reset_state(&mut self);

    /// One optimization step on a chronological batch with pre-sampled
    /// negative destinations. Returns the batch loss. Temporal state
    /// advances past the batch.
    fn train_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> f32;

    /// Score the batch's positive edges and the corresponding negative
    /// edges (higher = more likely). No parameter updates; temporal state
    /// advances past the batch (the events really happened).
    fn eval_batch(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        neg_dsts: &[usize],
    ) -> (Vec<f32>, Vec<f32>);

    /// Score each positive edge and `k` alternative candidate destinations
    /// under the *current* temporal state, WITHOUT advancing it — the
    /// filtered-negative ranking path (DESIGN.md §14). `cand_dsts` is in
    /// block layout: `cand_dsts[j * n + i]` is the j-th candidate
    /// destination for `batch[i]` (`n = batch.len()`), so source
    /// embeddings are shared across the K candidate blocks.
    ///
    /// Returns `(pos, cands)`: `pos[i]` is a *fresh* score of the true edge
    /// and `cands` mirrors the input layout. Both are computed under the
    /// same pre-batch state so each ranking query is self-consistent (for
    /// snapshot/memory models, `eval_batch`'s positives may reflect a
    /// state advance this path must not perform). Implementations must not
    /// draw from the model's training RNG stream — randomized sampling
    /// (neighbors, walks) derives a private RNG from the batch content so
    /// enabling ranking never perturbs AUC/AP.
    fn score_candidates(
        &mut self,
        ctx: &StreamContext,
        batch: &[Interaction],
        cand_dsts: &[usize],
        k: usize,
    ) -> (Vec<f32>, Vec<f32>);

    /// Dynamic embedding of each event's source node at event time, for the
    /// node-classification decoder. Temporal state advances past the batch.
    fn embed_events(&mut self, ctx: &StreamContext, batch: &[Interaction]) -> Matrix;

    fn embed_dim(&self) -> usize;

    /// Snapshot / restore trainable parameters (best-epoch restoration).
    fn snapshot(&self) -> Vec<Matrix>;
    fn restore(&mut self, snapshot: &[Matrix]);

    /// Exact state footprint in bytes: parameters, optimizer state, memory
    /// modules, caches (the paper's GPU-memory analogue).
    fn state_bytes(&self) -> usize;
}

/// Training-protocol configuration (§4.1 defaults, scaled).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub batch_size: usize,
    pub max_epochs: usize,
    pub patience: usize,
    pub tolerance: f64,
    /// Wall-clock budget for one job (the paper's 48 h, scaled down).
    pub timeout: Duration,
    pub seed: u64,
    pub neg_strategy: NegativeStrategy,
    /// Candidate negatives per test query for filtered MRR/Hits@K ranking
    /// (DESIGN.md §14). 0 disables ranking entirely — no candidate sets
    /// are built and no `score_candidates` calls happen, so AUC/AP-only
    /// runs cost exactly what they did before ranking existed.
    pub rank_negatives: usize,
    /// Opt-in out-of-core adjacency (DESIGN.md §16): when set, the
    /// trainers bulk-load the train/full event streams into paged stores
    /// and sample through the byte-budgeted page cache instead of
    /// resident CSR columns. Scores and losses are bit-identical to the
    /// resident path; only memory/IO behaviour changes.
    pub paged_store: Option<PagedStoreConfig>,
}

/// Where and how big the per-job paged stores are.
#[derive(Clone, Debug, Default)]
pub struct PagedStoreConfig {
    /// Store directory; `None` creates a unique per-job subdirectory
    /// under the `BENCHTEMP_STORE_DIR` default and removes it when the
    /// job ends.
    pub dir: Option<std::path::PathBuf>,
    /// Page-cache budget per store in bytes; `None` defers to
    /// `BENCHTEMP_PAGE_CACHE_MB`.
    pub cache_budget_bytes: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 200,
            max_epochs: 50,
            patience: 3,
            tolerance: 1e-3,
            timeout: Duration::from_secs(600),
            seed: 0,
            neg_strategy: NegativeStrategy::Random,
            rank_negatives: 0,
            paged_store: None,
        }
    }
}

/// Removes an auto-created store directory when the job ends.
struct StoreDirGuard(std::path::PathBuf);

impl Drop for StoreDirGuard {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Monotonic per-process salt so concurrent jobs in one process never
/// share an auto-created store directory.
static STORE_JOB_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Owned sampler backends for one job. Field order matters: the backends
/// (open page files) drop before the directory guard removes their dir.
struct JobBackends {
    train: OwnedNeighborBackend,
    full: OwnedNeighborBackend,
    _cleanup: Option<StoreDirGuard>,
}

/// Build the train/full sampler backends per `cfg.paged_store`: resident
/// CSR by default, paged stores (bulk-loaded under the `setup` span) when
/// the out-of-core path is opted in.
fn job_backends(
    graph: &TemporalGraph,
    train_events: &[Interaction],
    cfg: &TrainConfig,
) -> JobBackends {
    match &cfg.paged_store {
        None => JobBackends {
            train: OwnedNeighborBackend::Resident(NeighborFinder::from_events(
                graph.num_nodes,
                train_events,
            )),
            full: OwnedNeighborBackend::Resident(NeighborFinder::from_events(
                graph.num_nodes,
                &graph.events,
            )),
            _cleanup: None,
        },
        Some(ps) => {
            let (base, guard) = match &ps.dir {
                Some(d) => (d.clone(), None),
                None => {
                    let n = STORE_JOB_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let d = default_store_dir().join(format!("job-{}-{n}", std::process::id()));
                    (d.clone(), Some(StoreDirGuard(d)))
                }
            };
            let opts = StoreOptions {
                cache_budget_bytes: ps.cache_budget_bytes,
                ..Default::default()
            };
            let train = PagedNeighborFinder::bulk_load(
                &base.join("train"),
                graph.num_nodes,
                train_events,
                None,
                &opts,
            )
            .expect("paged store: train bulk load failed");
            let full = PagedNeighborFinder::bulk_load_graph(&base.join("full"), graph, &opts)
                .expect("paged store: full bulk load failed");
            JobBackends {
                train: OwnedNeighborBackend::Paged(train),
                full: OwnedNeighborBackend::Paged(full),
                _cleanup: guard,
            }
        }
    }
}

/// Metrics for one evaluation setting.
#[derive(Clone, Copy, Debug, Default)]
pub struct SettingMetrics {
    pub auc: f64,
    pub ap: f64,
    pub n_edges: usize,
    /// Filtered-negative MRR/Hits@K — present when the run had
    /// `rank_negatives > 0`.
    pub ranking: Option<RankingMetrics>,
}

impl ToJson for SettingMetrics {
    fn to_json(&self) -> Json {
        json!({
            "auc": self.auc,
            "ap": self.ap,
            "n_edges": self.n_edges,
            "ranking": self.ranking.as_ref(),
        })
    }
}

/// Outcome of one link-prediction job.
#[derive(Clone, Debug)]
pub struct LinkPredictionRun {
    pub model: String,
    pub dataset: String,
    pub transductive: SettingMetrics,
    pub inductive: SettingMetrics,
    pub new_old: SettingMetrics,
    pub new_new: SettingMetrics,
    pub best_val_ap: f64,
    pub epoch_losses: Vec<f32>,
    pub val_aps: Vec<f64>,
    pub efficiency: EfficiencyReport,
}

impl ToJson for LinkPredictionRun {
    fn to_json(&self) -> Json {
        json!({
            "model": self.model.as_str(),
            "dataset": self.dataset.as_str(),
            "transductive": &self.transductive,
            "inductive": &self.inductive,
            "new_old": &self.new_old,
            "new_new": &self.new_new,
            "best_val_ap": self.best_val_ap,
            "epoch_losses": self.epoch_losses.as_slice(),
            "val_aps": self.val_aps.as_slice(),
            "efficiency": &self.efficiency,
        })
    }
}

impl LinkPredictionRun {
    pub fn metrics_for(&self, setting: Setting) -> SettingMetrics {
        match setting {
            Setting::Transductive => self.transductive,
            Setting::Inductive => self.inductive,
            Setting::InductiveNewOld => self.new_old,
            Setting::InductiveNewNew => self.new_new,
        }
    }
}

/// Train and evaluate a model on the link-prediction task, all four
/// settings at once.
pub fn train_link_prediction(
    model: &mut dyn TgnnModel,
    graph: &TemporalGraph,
    split: &LinkPredSplit,
    cfg: &TrainConfig,
) -> LinkPredictionRun {
    // One recorder per job: every span closed below (including on pool
    // workers) aggregates here, and the final profile ships in the report.
    let recorder = obs::Recorder::new();
    let _obs_guard = recorder.install();
    // audit-allow(no-wallclock-outside-obs): anchors the timeout deadline; wall time never reaches scores
    let job_start = Instant::now();
    let deadline = job_start + cfg.timeout;

    let setup_span = obs::span(stage::SETUP);
    let backends = job_backends(graph, &split.train, cfg);
    let train_ctx = StreamContext {
        graph,
        neighbors: backends.train.as_backend(),
    };
    let full_ctx = StreamContext {
        graph,
        neighbors: backends.full.as_backend(),
    };

    let mut train_sampler = EdgeSampler::new(graph, &split.train, cfg.neg_strategy, cfg.seed);
    // Fixed, distinct seeds for validation and test (Appendix B).
    let mut val_sampler =
        EdgeSampler::new(graph, &split.train, cfg.neg_strategy, cfg.seed ^ 0x0a1_0001);
    let mut test_sampler = EdgeSampler::new(
        graph,
        &split.train,
        cfg.neg_strategy,
        cfg.seed ^ 0x7e57_0002,
    );

    // Membership masks over the transductive test stream for the inductive
    // filters (computed once; test events are scored in stream order).
    let inductive_mask: Vec<bool> = split
        .test
        .iter()
        .map(|e| split.unseen[e.src] || split.unseen[e.dst])
        .collect();
    let new_new_mask: Vec<bool> = split
        .test
        .iter()
        .map(|e| split.unseen[e.src] && split.unseen[e.dst])
        .collect();

    // Filtered negative candidate sets for ranking, precomputed once per
    // job so every epoch's test pass ranks against identical candidates.
    let filtered_negs = (cfg.rank_negatives > 0).then(|| {
        FilteredNegativeSet::build(
            graph,
            &split.train,
            &split.test,
            cfg.neg_strategy,
            cfg.rank_negatives,
            cfg.seed ^ RANK_NEG_SEED_SALT,
        )
    });
    drop(setup_span);

    let mut monitor = EarlyStopMonitor::new(cfg.patience, cfg.tolerance);
    let mut timed_out = false;

    let mut epoch_losses = Vec::new();
    let mut val_aps = Vec::new();
    let mut best_test_scores: Option<StreamScores> = None;
    let mut best_snapshot: Option<Vec<Matrix>> = None;
    let mut inference_secs_per_100k = 0.0;

    for _epoch in 0..cfg.max_epochs {
        // ---- train (its span covers learning only — never scoring) ----
        {
            let _train_span = obs::span(stage::TRAIN_EPOCH);
            model.reset_state();
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for batch in split.train.chunks(cfg.batch_size) {
                let negs = train_sampler.sample_batch(batch);
                loss_sum += model.train_batch(&train_ctx, batch, &negs) as f64;
                batches += 1;
                // audit-allow(no-wallclock-outside-obs): timeout guard; only flips `timed_out`, never a metric
                if Instant::now() > deadline {
                    timed_out = true;
                    break;
                }
            }
            epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
        }
        if timed_out {
            // The epoch is truncated: skip scoring entirely — partial-epoch
            // scores are not comparable to full-stream scores.
            break;
        }

        // ---- validation (stream continues; full adjacency view) ----
        val_sampler.reset();
        let val_scores = obs::timed(stage::VAL_SCORING, || {
            score_stream(
                model,
                &full_ctx,
                &split.val,
                &mut val_sampler,
                cfg.batch_size,
                Some(deadline),
                None,
            )
        });
        if !val_scores.completed {
            timed_out = true;
            break;
        }
        let val_ap = average_precision_pos_neg(&val_scores.pos, &val_scores.neg);
        val_aps.push(val_ap);

        // ---- test (stream continues) ----
        test_sampler.reset();
        let (test_scores, infer) = obs::timed_secs(stage::TEST_SCORING, || {
            score_stream(
                model,
                &full_ctx,
                &split.test,
                &mut test_sampler,
                cfg.batch_size,
                Some(deadline),
                filtered_negs.as_ref(),
            )
        });
        if !test_scores.completed {
            timed_out = true;
            break;
        }

        let improved = monitor.record(val_ap);
        if improved || best_test_scores.is_none() {
            best_snapshot = Some(model.snapshot());
            // Scored pairs per test event: 1 positive + 1 AUC/AP negative
            // + K ranking candidates (+1 fresh ranking positive).
            let pairs_per_event = if cfg.rank_negatives > 0 {
                3.0 + cfg.rank_negatives as f64
            } else {
                2.0
            };
            inference_secs_per_100k =
                infer / (split.test.len().max(1) as f64 * pairs_per_event) * 100_000.0;
            best_test_scores = Some(test_scores);
        }
        if monitor.should_stop() {
            break;
        }
        // Epoch boundary: shed tape buffers beyond one batch's observed
        // demand and record the `tape.pool_resident_bytes` gauge.
        benchtemp_tensor::params::trim_tape_caches();
    }

    if let Some(snap) = &best_snapshot {
        model.restore(snap);
    }
    let best = best_test_scores.unwrap_or(StreamScores {
        pos: Vec::new(),
        neg: Vec::new(),
        rank_pos: Vec::new(),
        rank_cands: Vec::new(),
        completed: false,
    });
    let (tpos, tneg) = (best.pos, best.neg);

    // Score subsets for the four settings: each inductive setting is a
    // membership filter over the same scored test stream. The AUC/AP
    // sort+scan per setting is independent work, so the four settings fan
    // out through the worker pool (metrics are computed per setting by the
    // same sequential kernel regardless of thread count, so results are
    // bit-identical at any `BENCHTEMP_THREADS`).
    let subset_scores = |mask: Option<&dyn Fn(usize) -> bool>| -> (Vec<f32>, Vec<f32>) {
        let idx: Vec<usize> = (0..tpos.len())
            .filter(|&i| mask.map(|m| m(i)).unwrap_or(true))
            .collect();
        (
            idx.iter().map(|&i| tpos[i]).collect(),
            idx.iter().map(|&i| tneg[i]).collect(),
        )
    };
    let ind = |i: usize| inductive_mask[i];
    let nn = |i: usize| new_new_mask[i];
    let no = |i: usize| inductive_mask[i] && !new_new_mask[i];
    let metrics = obs::timed(stage::FINAL_METRICS, || {
        let score_sets = [
            subset_scores(None),
            subset_scores(Some(&ind)),
            subset_scores(Some(&no)),
            subset_scores(Some(&nn)),
        ];
        let setting_metrics = |(pos, neg): &(Vec<f32>, Vec<f32>)| {
            let (auc, ap) = auc_ap_pos_neg(pos, neg);
            SettingMetrics {
                auc,
                ap,
                n_edges: pos.len(),
                ranking: None,
            }
        };
        // Dispatch through the pool only when it can actually help: with a
        // single effective worker (1-core host, or BENCHTEMP_THREADS=1) or a
        // test stream too small to amortize queue traffic, compute inline —
        // the per-setting kernel is identical either way, so the metrics are
        // bit-identical regardless of which path runs.
        let total_scores: usize = score_sets.iter().map(|(p, n)| p.len() + n.len()).sum();
        let mut metrics: Vec<SettingMetrics> =
            if pool().workers() == 1 || total_scores < PAR_EVAL_MIN_SCORES {
                score_sets.iter().map(setting_metrics).collect()
            } else {
                pool().par_map(&score_sets, setting_metrics)
            };
        // Ranking metrics: one pessimistic-rank scan per setting over the
        // same query-major candidate scores (sequential — O(n·k) per
        // setting, far below the AUC sort above).
        if let Some(fneg) = &filtered_negs {
            let (rp, rc) = (&best.rank_pos, &best.rank_cands);
            if rp.len() == split.test.len() {
                let new_old_mask: Vec<bool> = inductive_mask
                    .iter()
                    .zip(&new_new_mask)
                    .map(|(&i, &n)| i && !n)
                    .collect();
                metrics[0].ranking = Some(ranking_metrics_flat(rp, rc, fneg.k, None));
                metrics[1].ranking =
                    Some(ranking_metrics_flat(rp, rc, fneg.k, Some(&inductive_mask)));
                metrics[2].ranking =
                    Some(ranking_metrics_flat(rp, rc, fneg.k, Some(&new_old_mask)));
                metrics[3].ranking =
                    Some(ranking_metrics_flat(rp, rc, fneg.k, Some(&new_new_mask)));
            }
        }
        metrics
    });

    let rss = peak_rss_bytes();
    obs::trace::emit_counters();
    let profile = recorder.profile();
    let stages = StageBreakdown::from_profile(&profile, job_start.elapsed().as_secs_f64());

    LinkPredictionRun {
        model: model.name().to_string(),
        dataset: graph.name.clone(),
        transductive: metrics[0],
        inductive: metrics[1],
        new_old: metrics[2],
        new_new: metrics[3],
        best_val_ap: monitor.best_metric(),
        epoch_losses,
        val_aps,
        efficiency: EfficiencyReport {
            // Mean over training spans only: scoring has its own spans, so
            // it cannot leak in here (the old `EpochTimer` bug).
            runtime_per_epoch_secs: profile.mean_secs(stage::TRAIN_EPOCH),
            epochs_to_converge: monitor.best_epoch() + 1,
            peak_rss_bytes: rss,
            tape_pool_resident_bytes: benchtemp_obs::counters::TAPE_POOL_RESIDENT_BYTES.get(),
            model_state_bytes: model.state_bytes() as u64,
            compute_utilization: stages.utilization().unwrap_or(0.0),
            inference_secs_per_100k,
            timed_out,
            thread_count: pool().threads(),
            stages,
            profile,
        },
    }
}

/// Scores from one pass over an event window. `completed` is false when the
/// pass was cut short by the job deadline — truncated scores must never be
/// compared against (or recorded as) full-stream scores.
struct StreamScores {
    pos: Vec<f32>,
    neg: Vec<f32>,
    /// Fresh positive scores from the ranking path (one per event; empty
    /// when ranking is off). Scored under pre-batch state, so they pair
    /// with `rank_cands`, not with `pos`.
    rank_pos: Vec<f32>,
    /// Candidate scores in query-major layout: `rank_cands[q * k + j]`.
    rank_cands: Vec<f32>,
    completed: bool,
}

/// Advance the model through an event window, scoring every edge against a
/// sampled negative. Scores align with the window's events. Stops early
/// (with `completed: false`) once `deadline` passes, so a timed-out job
/// does not burn its overrun on full val+test scoring.
///
/// When `ranking` is set, each batch additionally scores its precomputed
/// K-candidate sets through [`TgnnModel::score_candidates`] *before*
/// `eval_batch` advances the temporal state, so ranking queries see exactly
/// the state a deployed model would have at that point in the stream.
fn score_stream(
    model: &mut dyn TgnnModel,
    ctx: &StreamContext,
    events: &[Interaction],
    sampler: &mut EdgeSampler,
    batch_size: usize,
    deadline: Option<Instant>,
    ranking: Option<&FilteredNegativeSet>,
) -> StreamScores {
    let mut pos = Vec::with_capacity(events.len());
    let mut neg = Vec::with_capacity(events.len());
    let k = ranking.map_or(0, |f| f.k);
    let mut rank_pos = Vec::with_capacity(events.len() * usize::from(k > 0));
    let mut rank_cands = Vec::with_capacity(events.len() * k);
    let mut offset = 0usize;
    for batch in events.chunks(batch_size) {
        // audit-allow(no-wallclock-outside-obs): timeout guard; aborts scoring, never shapes it
        if deadline.is_some_and(|d| Instant::now() > d) {
            return StreamScores {
                pos,
                neg,
                rank_pos,
                rank_cands,
                completed: false,
            };
        }
        if let Some(fneg) = ranking {
            let n = batch.len();
            let cand_ids = fneg.block(offset, n);
            let (rp, rc) = model.score_candidates(ctx, batch, &cand_ids, k);
            debug_assert_eq!(rp.len(), n);
            debug_assert_eq!(rc.len(), n * k);
            rank_pos.extend_from_slice(&rp);
            // Transpose candidate blocks to query-major for aggregation.
            for i in 0..n {
                for j in 0..k {
                    rank_cands.push(rc[j * n + i]);
                }
            }
        }
        let negs = sampler.sample_batch(batch);
        let (p, n) = model.eval_batch(ctx, batch, &negs);
        debug_assert_eq!(p.len(), batch.len());
        debug_assert_eq!(n.len(), batch.len());
        pos.extend(p);
        neg.extend(n);
        offset += batch.len();
    }
    StreamScores {
        pos,
        neg,
        rank_pos,
        rank_cands,
        completed: true,
    }
}

/// Outcome of one node-classification job.
#[derive(Clone, Debug)]
pub struct NodeClassificationRun {
    pub model: String,
    pub dataset: String,
    /// Binary test AUC (Table 5 / Table 19).
    pub auc: f64,
    /// Appendix-G metrics for multi-class datasets (DGraphFin).
    pub multiclass: Option<MultiClassMetrics>,
    pub best_val_metric: f64,
    pub decoder_epochs: usize,
    pub efficiency: EfficiencyReport,
}

impl ToJson for NodeClassificationRun {
    fn to_json(&self) -> Json {
        json!({
            "model": self.model.as_str(),
            "dataset": self.dataset.as_str(),
            "auc": self.auc,
            "multiclass": self.multiclass.as_ref(),
            "best_val_metric": self.best_val_metric,
            "decoder_epochs": self.decoder_epochs,
            "efficiency": &self.efficiency,
        })
    }
}

/// Node-classification protocol (§3.2.2): freeze the (self-supervised
/// pre-trained) TGNN, stream the full dataset once collecting dynamic
/// source-node embeddings per event, then train an MLP decoder on the
/// chronological 70/15/15 split of those embeddings — the standard protocol
/// of the TGN/JODIE codebases the paper builds on.
pub fn train_node_classification(
    model: &mut dyn TgnnModel,
    graph: &TemporalGraph,
    cfg: &TrainConfig,
) -> NodeClassificationRun {
    use benchtemp_tensor::{init, nn::Mlp, Adam, Graph, ParamStore};

    let recorder = obs::Recorder::new();
    let _obs_guard = recorder.install();
    // audit-allow(no-wallclock-outside-obs): job wall-time for the efficiency report; not part of model results
    let job_start = Instant::now();

    let labels = graph
        .labels
        .as_ref()
        .expect("node classification needs labels");
    let setup_span = obs::span(stage::SETUP);
    let split = NodeClassSplit::new(graph);
    // Node classification streams the full graph only; the train backend
    // of the pair is an empty shell (cheap in both modes).
    let backends = job_backends(graph, &[], cfg);
    let ctx = StreamContext {
        graph,
        neighbors: backends.full.as_backend(),
    };
    drop(setup_span);

    // ---- collect embeddings over the full stream (one pass) ----
    model.reset_state();
    let dim = model.embed_dim();
    let mut embeddings = Matrix::zeros(graph.num_events(), dim);
    let (_, embed_secs) = obs::timed_secs(stage::EMBED_COLLECTION, || {
        let mut row = 0usize;
        for batch in graph.events.chunks(cfg.batch_size) {
            let emb = model.embed_events(&ctx, batch);
            debug_assert_eq!(emb.rows(), batch.len());
            for r in 0..emb.rows() {
                embeddings.set_row(row, emb.row(r));
                row += 1;
            }
        }
    });

    // ---- train the decoder on frozen embeddings ----
    let num_classes = labels.num_classes;
    let binary = num_classes == 2;
    let out_dim = if binary { 1 } else { num_classes };
    let mut store = ParamStore::new();
    let mut rng = init::rng(cfg.seed ^ 0xdec0de);
    let decoder = Mlp::new(&mut store, &mut rng, "nc_decoder", dim, 80, out_dim);
    let mut adam = Adam::new(1e-3);
    let mut monitor = EarlyStopMonitor::new(cfg.patience, cfg.tolerance);
    let mut best_snapshot: Option<Vec<Matrix>> = None;

    let gather = |range: &std::ops::Range<usize>| -> (Vec<usize>, Vec<usize>) {
        let idx: Vec<usize> = range.clone().collect();
        let y: Vec<usize> = idx.iter().map(|&i| labels.labels[i] as usize).collect();
        (idx, y)
    };
    let (train_idx, train_y) = gather(&split.train_range);
    let (val_idx, val_y) = gather(&split.val_range);
    let (test_idx, test_y) = gather(&split.test_range);

    let score_set = |store: &ParamStore, idx: &[usize]| -> Matrix {
        let mut g = Graph::new(store);
        let x = g.gather_rows_from(&embeddings, idx);
        let logits = decoder.forward(&mut g, x);
        g.value(logits).clone()
    };
    let val_metric = |store: &ParamStore| -> f64 {
        let logits = score_set(store, &val_idx);
        if binary {
            let scores: Vec<f32> = (0..logits.rows()).map(|r| logits.get(r, 0)).collect();
            let ylab: Vec<f32> = val_y.iter().map(|&y| y as f32).collect();
            roc_auc(&ylab, &scores)
        } else {
            let pred: Vec<usize> = (0..logits.rows()).map(|r| argmax(logits.row(r))).collect();
            multiclass_metrics(&pred, &val_y, num_classes).f1_weighted
        }
    };

    let decoder_batch = 512usize;
    for _epoch in 0..cfg.max_epochs {
        obs::timed(stage::TRAIN_EPOCH, || {
            for chunk in train_idx.chunks(decoder_batch) {
                let mut g = Graph::new(&store);
                let x = g.gather_rows_from(&embeddings, chunk);
                let logits = decoder.forward(&mut g, x);
                let ys: Vec<usize> = chunk.iter().map(|&i| labels.labels[i] as usize).collect();
                let loss = if binary {
                    let yf: Vec<f32> = ys.iter().map(|&y| y as f32).collect();
                    g.bce_with_logits(logits, &yf)
                } else {
                    g.softmax_cross_entropy(logits, &ys)
                };
                let grads = g.backward(loss);
                adam.step(&mut store, &grads);
            }
        });
        let metric = obs::timed(stage::VAL_SCORING, || val_metric(&store));
        if monitor.record(metric) {
            best_snapshot = Some(store.snapshot());
        }
        if monitor.should_stop() {
            break;
        }
        benchtemp_tensor::params::trim_tape_caches();
    }
    if let Some(snap) = &best_snapshot {
        store.restore(snap);
    }

    // ---- test ----
    let (auc, multiclass) = obs::timed(stage::TEST_SCORING, || {
        let logits = score_set(&store, &test_idx);
        if binary {
            let scores: Vec<f32> = (0..logits.rows()).map(|r| logits.get(r, 0)).collect();
            let ylab: Vec<f32> = test_y.iter().map(|&y| y as f32).collect();
            (roc_auc(&ylab, &scores), None)
        } else {
            let pred: Vec<usize> = (0..logits.rows()).map(|r| argmax(logits.row(r))).collect();
            let m = multiclass_metrics(&pred, &test_y, num_classes);
            (m.accuracy, Some(m))
        }
    });
    let _ = train_y; // decoder batches re-derive labels; kept for clarity

    let rss = peak_rss_bytes();
    obs::trace::emit_counters();
    let profile = recorder.profile();
    let stages = StageBreakdown::from_profile(&profile, job_start.elapsed().as_secs_f64());
    NodeClassificationRun {
        model: model.name().to_string(),
        dataset: graph.name.clone(),
        auc,
        multiclass,
        best_val_metric: monitor.best_metric(),
        decoder_epochs: monitor.best_epoch() + 1,
        efficiency: EfficiencyReport {
            // Embedding collection dominates NC runtime; amortize over the
            // decoder epochs actually run, matching "seconds per epoch".
            runtime_per_epoch_secs: (embed_secs + profile.total_secs(stage::TRAIN_EPOCH))
                / monitor.epochs_seen().max(1) as f64,
            epochs_to_converge: monitor.best_epoch() + 1,
            peak_rss_bytes: rss,
            tape_pool_resident_bytes: benchtemp_obs::counters::TAPE_POOL_RESIDENT_BYTES.get(),
            model_state_bytes: (model.state_bytes() + store.heap_bytes()) as u64,
            compute_utilization: stages.utilization().unwrap_or(0.0),
            inference_secs_per_100k: embed_secs / graph.num_events().max(1) as f64 * 100_000.0,
            timed_out: false,
            thread_count: pool().threads(),
            stages,
            profile,
        },
    }
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}
