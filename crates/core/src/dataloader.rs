//! The DataLoader module (§3.2.1 / §3.2.2): chronological 70%–15%–15%
//! splitting, 10% unseen-node masking for the inductive setting, and the
//! three inductive test-set filters (Inductive, New-Old, New-New).
//!
//! Invariants (property-tested):
//! * splits are chronological and disjoint, and their union is the stream;
//! * no training edge touches an unseen node;
//! * New-Old ∪ New-New ≡ Inductive, and New-Old ∩ New-New ≡ ∅ (the paper's
//!   "Inductive New-Old ∨ New-New" identity).

use benchtemp_graph::temporal_graph::{Interaction, TemporalGraph};
use benchtemp_tensor::init;
use benchtemp_util::{json, Json, ToJson};

/// Fraction of nodes masked as unseen in the inductive setting (§3.2.1).
pub const UNSEEN_NODE_FRACTION: f64 = 0.10;

/// The evaluation settings of the link-prediction task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Setting {
    Transductive,
    Inductive,
    InductiveNewOld,
    InductiveNewNew,
}

impl Setting {
    pub fn all() -> [Setting; 4] {
        [
            Setting::Transductive,
            Setting::Inductive,
            Setting::InductiveNewOld,
            Setting::InductiveNewNew,
        ]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Setting::Transductive => "Transductive",
            Setting::Inductive => "Inductive",
            Setting::InductiveNewOld => "Inductive New-Old",
            Setting::InductiveNewNew => "Inductive New-New",
        }
    }
}

/// Link-prediction split: train/val/test plus the inductive variants.
#[derive(Clone, Debug)]
pub struct LinkPredSplit {
    /// Chronological training events, unseen-node edges removed.
    pub train: Vec<Interaction>,
    /// Transductive validation window (all events).
    pub val: Vec<Interaction>,
    /// Transductive test window (all events).
    pub test: Vec<Interaction>,
    pub inductive_val: Vec<Interaction>,
    pub inductive_test: Vec<Interaction>,
    pub new_old_val: Vec<Interaction>,
    pub new_old_test: Vec<Interaction>,
    pub new_new_val: Vec<Interaction>,
    pub new_new_test: Vec<Interaction>,
    /// Node-indexed mask of unseen nodes.
    pub unseen: Vec<bool>,
    /// Boundary timestamps: `t < val_time` is train, `< test_time` val.
    pub val_time: f64,
    pub test_time: f64,
}

impl LinkPredSplit {
    /// Build the split for a graph. `seed` drives the unseen-node mask only
    /// (the chronological split is deterministic).
    pub fn new(graph: &TemporalGraph, seed: u64) -> Self {
        let (val_time, test_time) = chronological_boundaries(graph, 0.70, 0.85);
        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut test = Vec::new();
        for &ev in &graph.events {
            if ev.t < val_time {
                train.push(ev);
            } else if ev.t < test_time {
                val.push(ev);
            } else {
                test.push(ev);
            }
        }

        // Mask 10% of nodes appearing in the evaluation windows as unseen
        // (so the mask always yields non-trivial inductive test sets).
        let mut candidates: Vec<usize> = graph
            .active_nodes(&graph.events[train.len()..])
            .into_iter()
            .collect();
        let mut rng = init::rng(seed ^ 0x1d_be9c);
        rng.shuffle(&mut candidates);
        let n_unseen = ((graph.num_nodes as f64 * UNSEEN_NODE_FRACTION).round() as usize)
            .min(candidates.len());
        let mut unseen = vec![false; graph.num_nodes];
        for &n in candidates.iter().take(n_unseen) {
            unseen[n] = true;
        }

        // Remove any training edge touching an unseen node (§3.2.1).
        train.retain(|e| !unseen[e.src] && !unseen[e.dst]);

        let filter = |events: &[Interaction], pred: &dyn Fn(&Interaction) -> bool| {
            events
                .iter()
                .copied()
                .filter(|e| pred(e))
                .collect::<Vec<_>>()
        };
        let one_unseen = |e: &Interaction| unseen[e.src] || unseen[e.dst];
        let exactly_one = |e: &Interaction| unseen[e.src] != unseen[e.dst];
        let both_unseen = |e: &Interaction| unseen[e.src] && unseen[e.dst];

        LinkPredSplit {
            inductive_val: filter(&val, &one_unseen),
            inductive_test: filter(&test, &one_unseen),
            new_old_val: filter(&val, &exactly_one),
            new_old_test: filter(&test, &exactly_one),
            new_new_val: filter(&val, &both_unseen),
            new_new_test: filter(&test, &both_unseen),
            train,
            val,
            test,
            unseen,
            val_time,
            test_time,
        }
    }

    /// The test events for a given setting.
    pub fn test_for(&self, setting: Setting) -> &[Interaction] {
        match setting {
            Setting::Transductive => &self.test,
            Setting::Inductive => &self.inductive_test,
            Setting::InductiveNewOld => &self.new_old_test,
            Setting::InductiveNewNew => &self.new_new_test,
        }
    }

    /// The validation events for a given setting.
    pub fn val_for(&self, setting: Setting) -> &[Interaction] {
        match setting {
            Setting::Transductive => &self.val,
            Setting::Inductive => &self.inductive_val,
            Setting::InductiveNewOld => &self.new_old_val,
            Setting::InductiveNewNew => &self.new_new_val,
        }
    }

    /// Table 6-style statistics.
    pub fn stats(&self, graph: &TemporalGraph) -> SplitStats {
        let count = |evs: &[Interaction]| SetStats {
            nodes: graph.active_nodes(evs).len(),
            edges: evs.len(),
        };
        SplitStats {
            dataset: graph.name.clone(),
            training: count(&self.train),
            validation: count(&self.val),
            transductive_test: count(&self.test),
            inductive_validation: count(&self.inductive_val),
            inductive_test: count(&self.inductive_test),
            new_old_validation: count(&self.new_old_val),
            new_old_test: count(&self.new_old_test),
            new_new_validation: count(&self.new_new_val),
            new_new_test: count(&self.new_new_test),
            unseen_nodes: self.unseen.iter().filter(|&&u| u).count(),
        }
    }
}

/// Node-classification split (§3.2.2): plain chronological 70/15/15 over
/// event indices into the label stream; no masking.
#[derive(Clone, Debug)]
pub struct NodeClassSplit {
    pub train: Vec<Interaction>,
    pub val: Vec<Interaction>,
    pub test: Vec<Interaction>,
    /// Event-index ranges into the original stream for label alignment.
    pub train_range: std::ops::Range<usize>,
    pub val_range: std::ops::Range<usize>,
    pub test_range: std::ops::Range<usize>,
}

impl NodeClassSplit {
    pub fn new(graph: &TemporalGraph) -> Self {
        assert!(
            graph.labels.is_some(),
            "node classification needs a labelled dataset (Reddit/Wikipedia/MOOC/…)"
        );
        let (val_time, test_time) = chronological_boundaries(graph, 0.70, 0.85);
        let n = graph.events.len();
        let val_start = graph.events.partition_point(|e| e.t < val_time);
        let test_start = graph.events.partition_point(|e| e.t < test_time);
        NodeClassSplit {
            train: graph.events[..val_start].to_vec(),
            val: graph.events[val_start..test_start].to_vec(),
            test: graph.events[test_start..].to_vec(),
            train_range: 0..val_start,
            val_range: val_start..test_start,
            test_range: test_start..n,
        }
    }
}

/// Timestamp boundaries at the given quantiles of event *timestamps*
/// (chronological, matching the paper's "according to edge timestamps").
///
/// Splitting buckets with strict `<` against these boundaries, so heavy
/// timestamp ties can silently swallow a window: if every event up to the
/// q1 quantile carries the same timestamp as the boundary event, the train
/// window is empty; if the two boundaries coincide, the val window is. Both
/// used to surface only much later as an opaque model/pipeline failure —
/// now they panic here with the offending timestamps.
fn chronological_boundaries(graph: &TemporalGraph, q1: f64, q2: f64) -> (f64, f64) {
    let n = graph.events.len();
    assert!(n >= 10, "dataset too small to split");
    let at = |q: f64| graph.events[((n as f64 * q) as usize).min(n - 1)].t;
    let (t1, t2) = (at(q1), at(q2));
    let (p1, p2) = (q1 * 100.0, q2 * 100.0);
    let first_t = graph.events[0].t;
    assert!(
        first_t < t1,
        "degenerate chronological split for '{}': the {p1:.0}%-quantile \
         timestamp ({t1}) is tied with the stream's first timestamp \
         ({first_t}), leaving an empty train window — the dataset's \
         timestamps are too coarse to split with strict '<' boundaries",
        graph.name
    );
    assert!(
        t1 < t2,
        "degenerate chronological split for '{}': the {p1:.0}%- and \
         {p2:.0}%-quantile timestamps coincide at {t1}, leaving an empty \
         val window — timestamp ties straddle the quantile boundary",
        graph.name
    );
    (t1, t2)
}

/// Statistics for one event set (Table 6 columns).
#[derive(Clone, Copy, Debug)]
pub struct SetStats {
    pub nodes: usize,
    pub edges: usize,
}

impl ToJson for SetStats {
    fn to_json(&self) -> Json {
        json!({ "nodes": self.nodes, "edges": self.edges })
    }
}

/// The full Table 6 row for one dataset.
#[derive(Clone, Debug)]
pub struct SplitStats {
    pub dataset: String,
    pub training: SetStats,
    pub validation: SetStats,
    pub transductive_test: SetStats,
    pub inductive_validation: SetStats,
    pub inductive_test: SetStats,
    pub new_old_validation: SetStats,
    pub new_old_test: SetStats,
    pub new_new_validation: SetStats,
    pub new_new_test: SetStats,
    pub unseen_nodes: usize,
}

impl ToJson for SplitStats {
    fn to_json(&self) -> Json {
        json!({
            "dataset": self.dataset.as_str(),
            "training": &self.training,
            "validation": &self.validation,
            "transductive_test": &self.transductive_test,
            "inductive_validation": &self.inductive_validation,
            "inductive_test": &self.inductive_test,
            "new_old_validation": &self.new_old_validation,
            "new_old_test": &self.new_old_test,
            "new_new_validation": &self.new_new_validation,
            "new_new_test": &self.new_new_test,
            "unseen_nodes": self.unseen_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use benchtemp_graph::generators::GeneratorConfig;

    fn graph() -> TemporalGraph {
        GeneratorConfig::small("split", 21).generate()
    }

    #[test]
    fn split_is_chronological_and_partitions() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 1);
        assert_eq!(
            s.val.len() + s.test.len() + g.events.iter().filter(|e| e.t < s.val_time).count(),
            g.num_events()
        );
        assert!(s.train.iter().all(|e| e.t < s.val_time));
        assert!(s.val.iter().all(|e| e.t >= s.val_time && e.t < s.test_time));
        assert!(s.test.iter().all(|e| e.t >= s.test_time));
        // ~70/15/15 by construction
        let frac = s.val.len() as f64 / g.num_events() as f64;
        assert!(frac > 0.05 && frac < 0.30, "val fraction {frac}");
    }

    #[test]
    fn no_train_edge_touches_unseen_node() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 2);
        assert!(s.unseen.iter().any(|&u| u), "mask should be non-empty");
        assert!(s.train.iter().all(|e| !s.unseen[e.src] && !s.unseen[e.dst]));
    }

    #[test]
    fn new_old_or_new_new_equals_inductive() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 3);
        assert_eq!(
            s.new_old_test.len() + s.new_new_test.len(),
            s.inductive_test.len(),
            "New-Old ∨ New-New must equal Inductive"
        );
        assert_eq!(
            s.new_old_val.len() + s.new_new_val.len(),
            s.inductive_val.len()
        );
        // Disjoint by definition of exactly-one vs both.
        for e in &s.new_old_test {
            assert!(s.unseen[e.src] != s.unseen[e.dst]);
        }
        for e in &s.new_new_test {
            assert!(s.unseen[e.src] && s.unseen[e.dst]);
        }
    }

    #[test]
    fn inductive_is_subset_of_transductive_test() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 4);
        let test_set: std::collections::HashSet<_> =
            s.test.iter().map(|e| (e.src, e.dst, e.feat_idx)).collect();
        assert!(
            !s.inductive_test.is_empty(),
            "mask should yield inductive edges"
        );
        for e in &s.inductive_test {
            assert!(test_set.contains(&(e.src, e.dst, e.feat_idx)));
        }
    }

    #[test]
    fn mask_is_seed_deterministic() {
        let g = graph();
        let a = LinkPredSplit::new(&g, 7);
        let b = LinkPredSplit::new(&g, 7);
        let c = LinkPredSplit::new(&g, 8);
        assert_eq!(a.unseen, b.unseen);
        assert_ne!(a.unseen, c.unseen);
        // Chronological pieces never depend on the seed.
        assert_eq!(a.val.len(), c.val.len());
        assert_eq!(a.test.len(), c.test.len());
    }

    #[test]
    fn roughly_ten_percent_masked() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 5);
        let masked = s.unseen.iter().filter(|&&u| u).count();
        let frac = masked as f64 / g.num_nodes as f64;
        assert!(frac > 0.05 && frac <= 0.11, "masked fraction {frac}");
    }

    #[test]
    fn table6_stats_are_consistent() {
        let g = graph();
        let s = LinkPredSplit::new(&g, 6);
        let st = s.stats(&g);
        assert_eq!(st.training.edges, s.train.len());
        assert_eq!(
            st.new_old_test.edges + st.new_new_test.edges,
            st.inductive_test.edges
        );
        assert_eq!(st.unseen_nodes, s.unseen.iter().filter(|&&u| u).count());
    }

    #[test]
    fn nc_split_covers_stream_in_order() {
        let mut cfg = GeneratorConfig::small("nc", 23);
        cfg.label = Some(benchtemp_graph::generators::LabelGenConfig::binary(0.1));
        let g = cfg.generate();
        let s = NodeClassSplit::new(&g);
        assert_eq!(s.train.len() + s.val.len() + s.test.len(), g.num_events());
        assert_eq!(s.train_range.end, s.val_range.start);
        assert_eq!(s.val_range.end, s.test_range.start);
        assert_eq!(s.test_range.end, g.num_events());
        // Range alignment: events in the range equal the split vectors.
        assert_eq!(&g.events[s.val_range.clone()], s.val.as_slice());
    }

    #[test]
    #[should_panic(expected = "labelled")]
    fn nc_split_requires_labels() {
        let g = graph();
        let _ = NodeClassSplit::new(&g);
    }

    /// Regression: a stream whose timestamps are all identical used to
    /// produce an empty train window silently (every event fails `t <
    /// val_time`); now the boundary computation itself fails with a
    /// diagnostic naming the tie.
    #[test]
    #[should_panic(expected = "empty train window")]
    fn all_tied_timestamps_fail_loudly() {
        let mut g = graph();
        for e in &mut g.events {
            e.t = 5.0;
        }
        let _ = LinkPredSplit::new(&g, 1);
    }

    /// Regression: ties straddling only the *upper* quantile boundary
    /// (train is fine, but the 70%- and 85%-quantile timestamps coincide)
    /// used to yield an empty val window; now it panics with the boundary
    /// timestamp in the message.
    #[test]
    #[should_panic(expected = "empty val window")]
    fn tied_upper_boundary_fails_loudly() {
        let mut g = graph();
        let n = g.events.len();
        let cut = (n as f64 * 0.5) as usize;
        for (i, e) in g.events.iter_mut().enumerate() {
            e.t = if i < cut { 1.0 } else { 2.0 };
        }
        let _ = LinkPredSplit::new(&g, 1);
    }
}
